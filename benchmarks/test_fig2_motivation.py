"""Fig. 2 + Table 1: RocksDB motivation analysis.

Paper shape: CrossPrefetch > OSonly > APPonly[fincore]-ish on
throughput; misses CrossP (63.7) < OSonly (84.3) < fincore (91.5) <
APPonly (98.2); fincore has the worst lock share (34%).
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig2_motivation


def test_fig2_motivation(benchmark):
    results = run_experiment(benchmark, run_fig2_motivation)
    cross = results["CrossP[+predict+opt]"]
    apponly = results["APPonly"]
    osonly = results["OSonly"]
    fincore = results["APPonly[fincore]"]

    # CrossPrefetch wins throughput.
    assert cross.kops > osonly.kops
    assert cross.kops > apponly.kops
    assert cross.kops > fincore.kops
    # Miss ordering: CrossP lowest, APPonly highest.
    assert cross.miss_pct < osonly.miss_pct
    assert cross.miss_pct < apponly.miss_pct
    assert apponly.miss_pct >= osonly.miss_pct
    # fincore pays for its visibility with lock time.
    assert fincore.lock_pct >= cross.lock_pct
    assert fincore.syscalls.get("fincore", 0) > 0
