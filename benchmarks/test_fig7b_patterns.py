"""Fig. 7b: db_bench access patterns, ext4 local NVMe.

Paper shape: OSonly > APPonly on readseq; CrossP best on readreverse
(~3.7x over the baselines); CrossP leads multireadrandom.
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig7b_patterns


def test_fig7b_patterns(benchmark):
    results = run_experiment(benchmark, run_fig7b_patterns)

    # The headline: reverse reads.
    rev = results["readreverse"]
    assert rev["CrossP[+predict+opt]"].kops > 2.0 * rev["APPonly"].kops
    assert rev["CrossP[+predict+opt]"].kops > 2.0 * rev["OSonly"].kops

    # Sequential reads: everyone near device speed, OSonly >= APPonly.
    seq = results["readseq"]
    assert seq["OSonly"].kops >= 0.95 * seq["APPonly"].kops

    # Batched random: CrossP[+predict+opt] leads the baselines.
    mrr = results["multireadrandom"]
    assert mrr["CrossP[+predict+opt]"].kops > 1.15 * mrr["APPonly"].kops
    assert mrr["CrossP[+predict+opt]"].kops > 1.15 * mrr["OSonly"].kops
