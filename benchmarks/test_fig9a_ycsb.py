"""Fig. 9a: YCSB A-F over the LSM store.

Paper shape: A (write-heavy) shows little difference; the read-heavy
workloads B/C/D gain from CrossPrefetch; E (scans) roughly doubles for
both CrossP variants; [+predict+opt] >= [+fetchall+opt] on B/C.
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig9a_ycsb


def test_fig9a_ycsb(benchmark):
    results = run_experiment(benchmark, run_fig9a_ycsb)

    # Read-heavy workloads: CrossPrefetch leads the baselines.
    for workload in ("B", "C"):
        row = results[workload]
        assert row["CrossP[+predict+opt]"].kops \
            > 1.1 * row["APPonly"].kops, workload

    # Scan-heavy E gains for both CrossP variants.
    e = results["E"]
    assert e["CrossP[+predict+opt]"].kops > 1.2 * e["APPonly"].kops
    assert e["CrossP[+fetchall+opt]"].kops > 1.1 * e["APPonly"].kops

    # Write-dominated A: spread between best and worst stays modest.
    a = results["A"]
    vals = [m.kops for m in a.values()]
    assert max(vals) < 2.5 * min(vals)
