"""Fig. 6: shared-file readers + 4 writers, reader-count sweep.

Paper shape: with the range tree, CrossP[+predict+opt] sustains write
throughput as reader concurrency grows; APPonly/OSonly suffer from the
shared cache-tree lock, and fetchall struggles as threads increase.
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig6_shared_rw


def test_fig6_shared_rw(benchmark):
    results = run_experiment(benchmark, run_fig6_shared_rw)

    most_readers = max(results, key=int)
    top = results[most_readers]
    # At the highest concurrency, CrossP[+predict+opt] write throughput
    # is at least on par with both non-cross baselines.
    cross = top["CrossP[+predict+opt]"].throughput_mbps
    assert cross >= 0.95 * top["APPonly"].throughput_mbps
    assert cross >= 0.95 * top["OSonly"].throughput_mbps
    # ...and beats the bitmap-locked fetchall configuration.
    assert cross >= top["CrossP[+fetchall+opt]"].throughput_mbps * 0.95

    # Sanity: every cell produced writes.
    for sweep in results.values():
        for metrics in sweep.values():
            assert metrics.bytes_written > 0
