"""Refresh BENCH_sim_core.json: run the perf suite, keep the baseline.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py [--repeat N] [--jobs N]
        [--doc BENCH_sim_core.json] [--gate]

The document at ``--doc`` keeps two sections: ``baseline`` (the numbers
captured at the pre-optimization seed — never overwritten by this
script) and ``current`` (replaced with this run).  ``--gate``
additionally fails (exit 1) if any bench's events/sec regressed more
than 30% against the document's previous ``current`` section, the same
check CI runs via ``repro bench --baseline``.

Wall-clock numbers are machine- and load-dependent; ``--repeat`` (best
of N) is the noise control.  Compare ratios, not absolute numbers,
across machines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.harness.bench import (  # noqa: E402
    compare_to_baseline,
    format_suite,
    run_suite,
)

DEFAULT_DOC = os.path.join(
    os.path.dirname(__file__), "..", "..", "BENCH_sim_core.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=5,
                        help="best-of-N per bench (default 5)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (only useful multi-core)")
    parser.add_argument("--doc", default=DEFAULT_DOC,
                        help="trajectory document to update")
    parser.add_argument("--gate", action="store_true",
                        help="fail on >30%% events/sec regression vs "
                             "the document's previous current section")
    args = parser.parse_args(argv)

    doc_path = os.path.abspath(args.doc)
    doc: dict = {}
    if os.path.exists(doc_path):
        with open(doc_path) as fh:
            doc = json.load(fh)

    suite = run_suite(repeat=args.repeat, jobs=args.jobs)
    print(format_suite(suite))

    if args.gate and doc.get("current"):
        failures = compare_to_baseline(suite, doc, max_regression=0.3)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression gate passed")

    doc.setdefault("schema", "bench_sim_core_doc/v1")
    doc.setdefault("baseline", suite)   # first ever run becomes baseline
    doc["current"] = suite
    with open(doc_path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"updated {doc_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
