"""Simulation-core performance suite (wall-clock + events/sec).

Unlike the paper-figure benchmarks one directory up, these measure the
*simulator*, not the simulated system.  See ``run.py`` and
``repro.harness.bench`` for the benchmark definitions, and the
committed ``BENCH_sim_core.json`` at the repo root for the trajectory.
"""
