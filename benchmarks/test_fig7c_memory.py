"""Fig. 7c: multireadrandom vs memory:DB-size ratio.

Paper shape: OSonly underperforms when memory is constrained; fetchall
(no eviction) degrades to the baselines at low memory; predict+opt stays
on top via aggressive prefetch + eviction; everyone improves as the
ratio approaches 1:1.
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig7c_memory


def test_fig7c_memory(benchmark):
    results = run_experiment(benchmark, run_fig7c_memory)

    # More memory never hurts CrossPrefetch.
    cross_lo = results["1:6"]["CrossP[+predict+opt]"].kops
    cross_hi = results["1:1"]["CrossP[+predict+opt]"].kops
    assert cross_hi >= cross_lo

    # At 1:1, the aggressive modes dominate the baselines.
    full = results["1:1"]
    assert full["CrossP[+predict+opt]"].kops > 1.2 * full["APPonly"].kops
    assert full["CrossP[+fetchall+opt]"].kops \
        > 1.2 * full["OSonly"].kops

    # At 1:6, fetchall loses its edge (pollution, no eviction):
    tight = results["1:6"]
    assert tight["CrossP[+fetchall+opt]"].kops \
        <= 1.25 * max(tight["APPonly"].kops, tight["OSonly"].kops)
