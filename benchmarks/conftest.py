"""Benchmark-suite plumbing.

Each bench runs one paper experiment exactly once under
pytest-benchmark (`pedantic`, one round — the experiments are
deterministic simulations, not microbenchmarks), prints the paper-style
table, and asserts the *shape* invariants recorded in EXPERIMENTS.md.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations


def run_experiment(benchmark, fn, **kwargs):
    """Execute ``fn`` once under the benchmark fixture; print report."""
    results, report = benchmark.pedantic(
        lambda: fn(**kwargs), rounds=1, iterations=1)
    print("\n" + report + "\n")
    return results
