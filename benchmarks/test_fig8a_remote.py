"""Fig. 8a: db_bench access patterns on remote NVMe-oF.

Paper shape: the higher per-request cost of remote storage amplifies
CrossPrefetch's batched prefetching; reverse read gains reach 5.68x.
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig8a_remote


def test_fig8a_remote(benchmark):
    results = run_experiment(benchmark, run_fig8a_remote)

    rev = results["readreverse"]
    # Remote gains exceed the local requirement (paper: up to 5.68x).
    assert rev["CrossP[+predict+opt]"].kops > 2.5 * rev["APPonly"].kops
    assert rev["CrossP[+predict+opt]"].kops > 2.5 * rev["OSonly"].kops

    mrr = results["multireadrandom"]
    assert mrr["CrossP[+predict+opt]"].kops > 1.15 * mrr["OSonly"].kops
