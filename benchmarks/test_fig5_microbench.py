"""Fig. 5 + Table 3: the private/shared x seq/rand microbenchmark.

Paper shape: for the *rand* cells CrossP[+predict+opt] gives ~1.8-2x
over APPonly; miss ordering (Table 3, shared-rand): predict < predict+opt
< OSonly < fetchall < APPonly.  For *seq* cells all approaches are close.
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig5_microbench


def test_fig5_microbench(benchmark):
    results = run_experiment(benchmark, run_fig5_microbench)

    shared = results["shared-rand"]
    assert shared["CrossP[+predict+opt]"].throughput_mbps \
        > 1.3 * shared["APPonly"].throughput_mbps
    # Private files already get device-level sequentiality in the
    # simulator (see EXPERIMENTS.md), so the margin is smaller there.
    private = results["private-rand"]
    assert private["CrossP[+predict+opt]"].throughput_mbps \
        > 1.05 * private["APPonly"].throughput_mbps
    for cell in ("shared-rand", "private-rand"):
        assert results[cell]["CrossP[+predict+opt]"].miss_pct \
            < results[cell]["APPonly"].miss_pct, cell

    # Table 3 miss ordering on shared-rand.
    assert shared["CrossP[+predict]"].miss_pct \
        < shared["OSonly"].miss_pct
    assert shared["CrossP[+fetchall+opt]"].miss_pct \
        < shared["APPonly"].miss_pct

    # Sequential: the practical approaches are close to each other
    # (fetchall is excluded — the paper itself calls it impractical
    # under memory oversubscription, and here its whole-file load
    # competes with eight live streams for a 2.15x-oversubscribed cache).
    for cell in ("shared-seq", "private-seq"):
        vals = [m.throughput_mbps for name, m in results[cell].items()
                if name != "CrossP[+fetchall+opt]"]
        assert min(vals) > 0.6 * max(vals), cell
