"""Fig. 9b: Snappy parallel compression vs memory:dataset ratio.

Paper shape: APPonly limited by syscalls, OSonly by incremental
readahead; fetchall ~ the baselines under low memory (no eviction);
[+predict+opt] leads via aggressive prefetch + eviction (paper: up to
31% at 1:2).
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig9b_snappy


def test_fig9b_snappy(benchmark):
    results = run_experiment(benchmark, run_fig9b_snappy)

    # Mid-pressure point: predict+opt at the top (the paper's +31% is
    # not reproduced — with 8 concurrent streams the simulated device
    # is already saturated by every approach; see EXPERIMENTS.md).
    mid = results["1:2"]
    cross = mid["CrossP[+predict+opt]"].throughput_mbps
    assert cross >= 0.95 * mid["APPonly"].throughput_mbps
    assert cross >= 0.95 * mid["OSonly"].throughput_mbps

    # Under the tightest memory no approach collapses or runs away:
    # big sequential reads keep the device saturated for everyone (the
    # eviction work costs predict+opt a little at 1:6 in this model).
    tight = results["1:6"]
    vals = [m.throughput_mbps for m in tight.values()]
    assert max(vals) < 1.6 * min(vals)

    # With memory == dataset the approaches converge.
    full = results["1:1"]
    vals = [m.throughput_mbps for m in full.values()]
    assert max(vals) < 1.8 * min(vals)
