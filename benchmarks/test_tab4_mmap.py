"""Table 4: mmap readseq / readrandom.

Paper: APPonly (madvise RANDOM) collapses (84 MB/s random vs 751 for
CrossP); CrossP[+predict+opt] beats OSonly on both patterns
(1270 vs 829 seq, 751 vs 484 random).
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_tab4_mmap


def test_tab4_mmap(benchmark):
    results = run_experiment(benchmark, run_tab4_mmap)

    seq = results["readseq"]
    rand = results["readrandom"]

    # APPonly's madvise(RANDOM) makes it the slowest everywhere.
    assert seq["APPonly"].throughput_mbps \
        < seq["OSonly"].throughput_mbps
    assert rand["APPonly"].throughput_mbps \
        <= rand["OSonly"].throughput_mbps

    # CrossPrefetch improves on OSonly for sequential mappings.
    assert seq["CrossP[+predict+opt]"].throughput_mbps \
        > 0.95 * seq["OSonly"].throughput_mbps
    # And is at least competitive on random.
    assert rand["CrossP[+predict+opt]"].throughput_mbps \
        > 0.8 * rand["OSonly"].throughput_mbps
