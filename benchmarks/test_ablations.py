"""Ablations of the reproduction's design knobs (beyond the paper's
tables): bitmap granularity, worker count, range-tree node size,
predictor kind, and the per-inode LRU extension.

These correspond to the artifact's tunables (CROSS_BITMAP_SHIFT,
NR_WORKERS_VAR, ...) and the future-work items §4.6 sketches.
"""

from benchmarks.conftest import run_experiment  # noqa: F401 (docs parity)
from repro.crosslib.config import CrossLibConfig
from repro.harness.report import format_matrix
from repro.os.config import KernelConfig
from repro.os.kernel import Kernel
from repro.runtimes.factory import build_runtime
from repro.workloads.microbench import MicrobenchConfig, run_microbench

MB = 1 << 20

APPROACH = "CrossP[+predict+opt]"


def _run(crosslib_config=None, kernel_config=None,
         memory_bytes=160 * MB, total_bytes=320 * MB):
    kernel = Kernel(memory_bytes=memory_bytes,
                    config=kernel_config or KernelConfig(),
                    cross_enabled=True)
    runtime = build_runtime(APPROACH, kernel, crosslib_config)
    cfg = MicrobenchConfig(nthreads=8, total_bytes=total_bytes,
                           pattern="rand", sharing="shared")
    metrics = run_microbench(kernel, runtime, cfg)
    runtime.teardown()
    kernel.shutdown()
    return metrics


def test_ablation_bitmap_shift(benchmark):
    """CROSS_BITMAP_SHIFT: coarser bitmaps cost accuracy, save memory."""
    def sweep():
        series = {"throughput": {}, "miss%": {}}
        for shift in (0, 2, 4):
            kcfg = KernelConfig(cross_bitmap_shift=shift)
            metrics = _run(kernel_config=kcfg)
            series["throughput"][f"shift={shift}"] = \
                metrics.throughput_mbps
            series["miss%"][f"shift={shift}"] = metrics.miss_pct
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_matrix(
        "Ablation — CROSS_BITMAP_SHIFT (shared-rand microbench)",
        series) + "\n")
    # Granularity 0 (exact) must not lose to coarse granularities.
    assert series["throughput"]["shift=0"] \
        >= 0.9 * max(series["throughput"].values())


def test_ablation_worker_count(benchmark):
    """NR_WORKERS_VAR: more prefetch workers help until they don't."""
    def sweep():
        series = {"throughput": {}}
        for workers in (1, 4, 8, 16):
            ccfg = CrossLibConfig(nr_workers=workers)
            metrics = _run(crosslib_config=ccfg)
            series["throughput"][f"w={workers}"] = \
                metrics.throughput_mbps
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_matrix(
        "Ablation — prefetch worker count", series) + "\n")
    row = series["throughput"]
    assert row["w=8"] > row["w=1"]  # one worker starves the pipeline


def test_ablation_rangetree_node_size(benchmark):
    """Range-tree node span: contention vs bookkeeping trade-off."""
    def sweep():
        series = {"throughput": {}}
        for node_blocks in (128, 1024, 8192):
            ccfg = CrossLibConfig(node_blocks=node_blocks)
            metrics = _run(crosslib_config=ccfg)
            series["throughput"][f"n={node_blocks}"] = \
                metrics.throughput_mbps
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_matrix(
        "Ablation — range-tree node size (blocks)", series) + "\n")
    assert all(v > 0 for v in series["throughput"].values())


def test_ablation_predictor_kind(benchmark):
    """counter vs markov vs hybrid predictors on the mixed workload."""
    def sweep():
        series = {"throughput": {}, "miss%": {}}
        for kind in ("counter", "markov", "hybrid"):
            ccfg = CrossLibConfig(predictor_kind=kind)
            metrics = _run(crosslib_config=ccfg)
            series["throughput"][kind] = metrics.throughput_mbps
            series["miss%"][kind] = metrics.miss_pct
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_matrix(
        "Ablation — predictor kind (shared-rand microbench)",
        series) + "\n")
    # The run-structured microbench favours the counter family; the
    # pure Markov predictor must not win here (it has no run model).
    assert series["throughput"]["counter"] \
        >= series["throughput"]["markov"] * 0.9
    assert series["throughput"]["hybrid"] \
        >= series["throughput"]["markov"] * 0.9


def test_ablation_per_inode_lru(benchmark):
    """The §4.6 future-work reclaim policy vs the global LRU."""
    def sweep():
        series = {"throughput": {}}
        for per_inode in (False, True):
            kcfg = KernelConfig(per_inode_lru=per_inode)
            metrics = _run(kernel_config=kcfg)
            name = "per-inode" if per_inode else "global"
            series["throughput"][name] = metrics.throughput_mbps
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_matrix(
        "Ablation — reclaim LRU policy", series) + "\n")
    row = series["throughput"]
    assert min(row.values()) > 0.5 * max(row.values())
