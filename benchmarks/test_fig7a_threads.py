"""Fig. 7a: multireadrandom throughput vs thread count.

Paper shape: throughput grows with threads for everyone (shared cache);
CrossP[+predict]/[+predict+opt] beat APPonly (~1.39x) and OSonly
(~1.22x); fetchall gives the maximum gains.
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig7a_threads


def test_fig7a_threads(benchmark):
    results = run_experiment(benchmark, run_fig7a_threads)

    top = results[max(results, key=int)]
    assert top["CrossP[+predict+opt]"].kops > 1.15 * top["APPonly"].kops
    assert top["CrossP[+fetchall+opt]"].kops \
        >= top["CrossP[+predict+opt]"].kops * 0.9  # fetchall near max

    # Throughput grows (or holds) with concurrency for CrossPrefetch.
    counts = sorted(results, key=int)
    lo = results[counts[0]]["CrossP[+predict+opt]"].kops
    hi = results[counts[-1]]["CrossP[+predict+opt]"].kops
    assert hi > lo
