"""Fig. 7d: db_bench access patterns on F2FS.

Paper shape: same qualitative picture as ext4 — CrossPrefetch is
file-system agnostic; reverse reads remain the biggest win.
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig7d_f2fs


def test_fig7d_f2fs(benchmark):
    results = run_experiment(benchmark, run_fig7d_f2fs)

    rev = results["readreverse"]
    assert rev["CrossP[+predict+opt]"].kops > 2.0 * rev["APPonly"].kops

    mrr = results["multireadrandom"]
    assert mrr["CrossP[+predict+opt]"].kops > 1.1 * mrr["OSonly"].kops
