"""Fig. 8b: Filebench multi-instance workloads.

Paper shape: [+predict+opt] leads overall; on videoserver it beats
[+fetchall+opt] by ~55% (cache pollution); OSonly suffers the 128 KB
limit on the streaming personalities.
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig8b_filebench


def test_fig8b_filebench(benchmark):
    results = run_experiment(benchmark, run_fig8b_filebench)

    # Streaming personalities: CrossPrefetch at least matches OSonly.
    for personality in ("seqread", "videoserver"):
        row = results[personality]
        assert row["CrossP[+predict+opt]"].throughput_mbps \
            >= 0.9 * row["OSonly"].throughput_mbps, personality

    # videoserver: the paper's headline here — prediction beats the
    # polluting whole-file loader (55% in the paper).
    video = results["videoserver"]
    assert video["CrossP[+predict+opt]"].throughput_mbps \
        >= video["CrossP[+fetchall+opt]"].throughput_mbps
    assert video["CrossP[+predict]"].throughput_mbps \
        >= video["CrossP[+fetchall+opt]"].throughput_mbps

    # Every personality ran for every approach.
    assert set(results) == {"seqread", "randread", "mongodb",
                            "videoserver"}
    for row in results.values():
        for metrics in row.values():
            assert metrics.throughput_mbps > 0
