"""Fig. 10: sweeping the kernel prefetch-limit size.

Paper shape: raising the limit barely helps APPonly/OSonly (no cache
awareness, no concurrency); CrossPrefetch ignores the limit entirely and
stays on top at every point.
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_fig10_prefetch_limit


def test_fig10_prefetch_limit(benchmark):
    results = run_experiment(benchmark, run_fig10_prefetch_limit)

    points = list(results)
    for point in points:
        row = results[point]
        assert row["CrossP[+predict+opt]"].kops \
            > 1.1 * row["APPonly"].kops, point

    # The baselines gain little across a 256x limit sweep...
    first, last = points[0], points[-1]
    for baseline in ("APPonly", "OSonly"):
        ratio = results[last][baseline].kops \
            / results[first][baseline].kops
        assert ratio < 1.6, baseline
    # ...while CrossPrefetch's absolute lead persists at the largest limit.
    big = results[last]
    assert big["CrossP[+predict+opt]"].kops > 1.1 * big["OSonly"].kops
