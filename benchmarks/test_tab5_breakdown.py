"""Table 5: incremental ablation of CrossPrefetch's mechanisms.

Paper: APPonly 1688 -> OSonly 1834 -> +visibility 2143 -> +range tree
2379 -> +aggressive prefetch 2642 kops/s: each step is monotone.
"""

from benchmarks.conftest import run_experiment
from repro.harness.experiments import run_tab5_breakdown

STEPS = ("APPonly", "OSonly", "CrossP[+visibility]",
         "CrossP[+visibility+rangetree]",
         "CrossP[+visibility+rangetree+aggr]")


def test_tab5_breakdown(benchmark):
    results = run_experiment(benchmark, run_tab5_breakdown)

    # The full configuration beats both baselines decisively.
    full = results["CrossP[+visibility+rangetree+aggr]"]
    assert full.kops > 1.2 * results["APPonly"].kops
    assert full.kops > 1.2 * results["OSonly"].kops

    # The aggressive step is the largest single contribution (it is
    # what removes compulsory misses), and no intermediate step is a
    # large regression versus the baselines.
    assert full.kops >= results["CrossP[+visibility+rangetree]"].kops
    for step in ("CrossP[+visibility]", "CrossP[+visibility+rangetree]"):
        assert results[step].kops > 0.85 * results["OSonly"].kops
