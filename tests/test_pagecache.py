"""Tests for the per-inode page cache."""

import pytest

from repro.os.kernel import Kernel

MB = 1 << 20


@pytest.fixture
def inode():
    kernel = Kernel(memory_bytes=64 * MB, cross_enabled=False)
    yield kernel.create_file("/f", 4 * MB)
    kernel.shutdown()


class TestInsertEvict:
    def test_insert_range_counts_new_pages(self, inode):
        cache = inode.cache
        assert cache.insert_range(0, 10) == 10
        assert cache.insert_range(5, 10) == 5  # overlap re-insert
        assert cache.cached_pages == 15

    def test_insert_zero_and_negative(self, inode):
        assert inode.cache.insert_range(0, 0) == 0
        assert inode.cache.insert_range(0, -3) == 0

    def test_evict_range(self, inode):
        cache = inode.cache
        cache.insert_range(0, 100)
        freed = cache.evict_range(10, 20)
        assert freed == 20
        assert cache.cached_pages == 80
        assert cache.evict_range(10, 20) == 0  # already gone

    def test_evict_chunk_frees_lru_entry(self, inode):
        cache = inode.cache
        cache.insert_range(0, 64)  # chunks 0 and 1 (32 blocks each)
        freed = cache.evict_chunk(0)
        assert freed == 32
        assert cache.cached_pages == 32
        assert not cache.present.any_set(0, 32)

    def test_evict_chunk_beyond_file(self, inode):
        assert inode.cache.evict_chunk(10_000) == 0

    def test_memory_accounting_tracks_inserts(self, inode):
        mem = inode.cache.mem
        before = mem.used_pages
        inode.cache.insert_range(0, 50)
        assert mem.used_pages == before + 50
        inode.cache.evict_range(0, 50)
        assert mem.used_pages == before


class TestDirty:
    def test_dirty_tracking(self, inode):
        cache = inode.cache
        cache.insert_range(0, 10, dirty=True)
        assert cache.dirty_pages == 10
        cache.clean_range(0, 5)
        assert cache.dirty_pages == 5

    def test_evict_clears_dirty(self, inode):
        cache = inode.cache
        cache.insert_range(0, 10, dirty=True)
        cache.evict_range(0, 10)
        assert cache.dirty_pages == 0


class TestQueries:
    def test_missing_runs(self, inode):
        cache = inode.cache
        cache.insert_range(5, 5)
        assert cache.missing_runs(0, 15) == [(0, 5), (10, 5)]

    def test_all_resident(self, inode):
        cache = inode.cache
        cache.insert_range(0, 10)
        assert cache.all_resident(0, 10)
        assert not cache.all_resident(0, 11)

    def test_resident_count(self, inode):
        cache = inode.cache
        cache.insert_range(0, 7)
        assert cache.resident_count(0, 20) == 7


class TestHooks:
    def test_insert_and_evict_hooks_fire(self, inode):
        cache = inode.cache
        inserts, evicts = [], []
        cache.insert_hooks.append(lambda s, c: inserts.append((s, c)))
        cache.evict_hooks.append(lambda s, c: evicts.append((s, c)))
        cache.insert_range(0, 8)
        cache.evict_range(0, 8)
        assert inserts == [(0, 8)]
        assert evicts == [(0, 8)]
