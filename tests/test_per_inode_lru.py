"""Tests for the per-inode LRU reclaim extension."""

from repro.os.config import KernelConfig
from repro.os.kernel import Kernel
from repro.os.lru import PerInodeLru
from tests.conftest import drive

MB = 1 << 20


class TestPerInodeLru:
    def test_basic_ops_match_interface(self):
        lru = PerInodeLru()
        lru.inserted((1, 0))
        lru.inserted((2, 0))
        assert (1, 0) in lru
        assert len(lru) == 2
        assert lru.inactive_count == 2
        lru.touched((1, 0))
        lru.touched((1, 0))
        assert lru.active_count == 1
        lru.removed((2, 0))
        assert (2, 0) not in lru

    def test_round_robin_across_inodes(self):
        lru = PerInodeLru()
        for inode in (1, 2):
            for chunk in range(3):
                lru.inserted((inode, chunk))
        victims = [lru.pop_victim() for _ in range(4)]
        inodes = [v[0] for v in victims]
        # Alternates between inodes rather than draining one first.
        assert inodes[0] != inodes[1]
        assert inodes[2] != inodes[3]

    def test_exclude_respected(self):
        lru = PerInodeLru()
        lru.inserted((1, 0))
        assert lru.pop_victim(exclude={(1, 0)}) is None
        assert (1, 0) in lru

    def test_empty_pop(self):
        assert PerInodeLru().pop_victim() is None

    def test_iter_inactive_oldest(self):
        lru = PerInodeLru()
        lru.inserted((1, 0))
        lru.inserted((2, 5))
        keys = list(lru.iter_inactive_oldest())
        assert set(keys) == {(1, 0), (2, 5)}


class TestKernelIntegration:
    def _stream(self, kernel, path, nbytes):
        def body():
            f = kernel.vfs.open_sync(path)
            pos = 0
            while pos < nbytes:
                yield from kernel.vfs.read(f, pos, 1 * MB)
                pos += 1 * MB

        drive(kernel, body())

    def test_per_inode_mode_bounds_memory(self):
        kernel = Kernel(memory_bytes=8 * MB,
                        config=KernelConfig(per_inode_lru=True))
        kernel.create_file("/a", 16 * MB)
        kernel.create_file("/b", 16 * MB)
        self._stream(kernel, "/a", 16 * MB)
        self._stream(kernel, "/b", 16 * MB)
        assert kernel.mem.used_pages <= kernel.mem.total_pages
        assert isinstance(kernel.mem.lru, PerInodeLru)
        kernel.shutdown()

    def test_reclaim_spreads_across_files(self):
        """With two concurrent streams, round-robin reclaim takes from
        both inodes instead of draining one first."""
        kernel = Kernel(memory_bytes=8 * MB,
                        config=KernelConfig(per_inode_lru=True))
        a = kernel.create_file("/a", 16 * MB)
        b = kernel.create_file("/b", 16 * MB)

        def reader(path):
            f = kernel.vfs.open_sync(path)
            pos = 0
            while pos < 16 * MB:
                yield from kernel.vfs.read(f, pos, 1 * MB)
                pos += 1 * MB

        kernel.sim.process(reader("/a"))
        kernel.sim.process(reader("/b"))
        kernel.run()
        # Both files lost pages (reclaim hit both), and both kept their
        # most recent tail pages (recency respected per inode).
        for inode in (a, b):
            assert inode.cache.cached_pages < inode.nblocks
            assert inode.cache.present.any_set(inode.nblocks - 256, 256)
        kernel.shutdown()
