"""Model-based integration tests: random operation sequences against a
reference model of cache contents, plus determinism checks."""

import random

from hypothesis import given, settings, strategies as st

from repro.os.kernel import Kernel
from repro.os.vfs import FADV_DONTNEED, FADV_RANDOM
from tests.conftest import drive

KB = 1 << 10
MB = 1 << 20


class TestCacheModel:
    """Drive the VFS with random reads/evictions and check the per-inode
    bitmap/cache agree with a reference set at every step.

    Memory is sized so reclaim never triggers (reclaim is modelled
    separately); readahead is off so residency is exactly what was read.
    """

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["read", "evict"]),
                  st.integers(0, 255), st.integers(1, 64)),
        min_size=1, max_size=25))
    def test_residency_matches_reference(self, ops):
        kernel = Kernel(memory_bytes=64 * MB, cross_enabled=True)
        inode = kernel.create_file("/m", 256 * 4096)
        reference: set[int] = set()

        def body():
            f = kernel.vfs.open_sync("/m")
            yield from kernel.vfs.fadvise(f, FADV_RANDOM)
            for op, start, count in ops:
                count = min(count, 256 - start)
                if count <= 0:
                    continue
                if op == "read":
                    yield from kernel.vfs.read(f, start * 4096,
                                               count * 4096)
                    reference.update(range(start, start + count))
                else:
                    yield from kernel.vfs.fadvise(
                        f, FADV_DONTNEED, start * 4096, count * 4096)
                    reference.difference_update(
                        range(start, start + count))
                # Invariants after every operation:
                assert inode.cache.cached_pages == len(reference)
                assert inode.cross.bitmap.count_set() == len(reference)
                for block in range(0, 256, 7):
                    assert inode.cache.present.test(block) \
                        == (block in reference)

        drive(kernel, body())
        assert kernel.mem.used_pages == len(reference)
        kernel.shutdown()


class TestDeterminism:
    def _run_once(self, approach="CrossP[+predict+opt]"):
        from repro.runtimes.factory import build_runtime, needs_cross
        from repro.workloads.microbench import (
            MicrobenchConfig,
            run_microbench,
        )
        kernel = Kernel(memory_bytes=48 * MB,
                        cross_enabled=needs_cross(approach))
        runtime = build_runtime(approach, kernel)
        cfg = MicrobenchConfig(nthreads=4, total_bytes=96 * MB,
                               pattern="rand", sharing="shared",
                               seed=77)
        metrics = run_microbench(kernel, runtime, cfg)
        runtime.teardown()
        snapshot = kernel.registry.snapshot()
        kernel.shutdown()
        return metrics, snapshot

    def test_identical_runs_identical_results(self):
        """The whole stack is deterministic given seeds."""
        m1, s1 = self._run_once()
        m2, s2 = self._run_once()
        assert m1.duration_us == m2.duration_us
        assert m1.miss_pages == m2.miss_pages
        assert s1 == s2

    def test_different_seeds_differ(self):
        from repro.runtimes.factory import build_runtime
        from repro.workloads.microbench import (
            MicrobenchConfig,
            run_microbench,
        )
        results = []
        for seed in (1, 2):
            kernel = Kernel(memory_bytes=48 * MB, cross_enabled=False)
            runtime = build_runtime("OSonly", kernel)
            cfg = MicrobenchConfig(nthreads=4, total_bytes=96 * MB,
                                   pattern="rand", sharing="shared",
                                   seed=seed)
            results.append(run_microbench(kernel, runtime, cfg))
            runtime.teardown()
            kernel.shutdown()
        assert results[0].duration_us != results[1].duration_us


class TestMemoryInvariants:
    def test_accounting_consistent_after_churn(self):
        """used_pages equals the sum of per-inode residency after heavy
        mixed traffic with reclaim."""
        kernel = Kernel(memory_bytes=12 * MB, cross_enabled=True)
        paths = [f"/churn{i}" for i in range(4)]
        inodes = [kernel.create_file(p, 8 * MB) for p in paths]
        rng = random.Random(3)

        def worker(path):
            f = kernel.vfs.open_sync(path)
            for _ in range(150):
                off = rng.randrange(0, 8 * MB - 64 * KB)
                off = off // 4096 * 4096
                yield from kernel.vfs.read(f, off, 64 * KB)

        for path in paths:
            kernel.sim.process(worker(path))
        kernel.run()
        total_cached = sum(i.cache.cached_pages for i in inodes)
        assert kernel.mem.used_pages == total_cached
        assert kernel.mem.used_pages <= kernel.mem.total_pages + 64
        # Cross-OS bitmaps agree with the caches they mirror.
        for inode in inodes:
            assert inode.cross.bitmap.count_set() \
                == inode.cache.cached_pages
        kernel.shutdown()

    def test_no_leak_after_unlink_all(self):
        kernel = Kernel(memory_bytes=32 * MB, cross_enabled=False)
        for i in range(3):
            kernel.create_file(f"/f{i}", 4 * MB)

        def body():
            for i in range(3):
                f = kernel.vfs.open_sync(f"/f{i}")
                yield from kernel.vfs.read(f, 0, 4 * MB)

        drive(kernel, body())
        for i in range(3):
            kernel.vfs.unlink(f"/f{i}")
        assert kernel.mem.used_pages == 0
        kernel.shutdown()
