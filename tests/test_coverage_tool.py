"""The CI coverage gate (tools/check_coverage.py) — stdlib-only, so it
is testable here without pytest-cov installed."""

from __future__ import annotations

import importlib.util
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(REPO, "tools", "check_coverage.py")

spec = importlib.util.spec_from_file_location("check_coverage", TOOL)
check_coverage = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_coverage", check_coverage)
spec.loader.exec_module(check_coverage)


def _report(tmp_path, percent, files=None):
    path = tmp_path / "coverage.json"
    path.write_text(json.dumps({
        "totals": {"percent_covered": percent},
        "files": files or {},
    }))
    return str(path)


def _baseline(tmp_path, minimum):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"min_percent": minimum}))
    return str(path)


def test_passes_at_or_above_floor(tmp_path, capsys):
    rc = check_coverage.main(["--report", _report(tmp_path, 72.5),
                              "--baseline", _baseline(tmp_path, 70.0)])
    assert rc == 0
    assert "ok" in capsys.readouterr().out


def test_fails_below_floor(tmp_path, capsys):
    rc = check_coverage.main(["--report", _report(tmp_path, 64.9),
                              "--baseline", _baseline(tmp_path, 70.0)])
    assert rc == 1
    assert "fell" in capsys.readouterr().err


def test_update_ratchets_floor_down_rounded(tmp_path):
    baseline = _baseline(tmp_path, 10.0)
    rc = check_coverage.main(["--report", _report(tmp_path, 71.99),
                              "--baseline", baseline, "--update"])
    assert rc == 0
    assert json.loads(open(baseline).read()) == {"min_percent": 71.9}


def test_rejects_malformed_report(tmp_path):
    path = tmp_path / "coverage.json"
    path.write_text(json.dumps({"not": "coverage"}))
    rc = check_coverage.main(["--report", str(path),
                              "--baseline", _baseline(tmp_path, 50.0)])
    assert rc == 2


def test_worst_files_ranked_and_trivial_skipped(tmp_path, capsys):
    files = {
        "src/a.py": {"summary": {"percent_covered": 20.0,
                                 "num_statements": 100}},
        "src/b.py": {"summary": {"percent_covered": 90.0,
                                 "num_statements": 100}},
        "src/tiny.py": {"summary": {"percent_covered": 0.0,
                                    "num_statements": 3}},
    }
    rc = check_coverage.main(["--report",
                              _report(tmp_path, 80.0, files),
                              "--baseline", _baseline(tmp_path, 50.0)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "src/a.py" in out
    assert "src/tiny.py" not in out


def test_committed_baseline_is_wellformed():
    with open(os.path.join(REPO, "COVERAGE_baseline.json")) as fh:
        doc = json.load(fh)
    assert 0.0 < float(doc["min_percent"]) <= 100.0
