"""Tests for the mmap fault path."""

from tests.conftest import drive

KB = 1 << 10
MB = 1 << 20


class TestMmapAccess:
    def test_cold_access_faults(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            region = kernel.mmap(f)
            hits, faults = yield from region.access(0, 64 * KB)
            return region, hits, faults

        region, hits, faults = drive(kernel, body())
        assert faults == 16
        assert hits == 0
        assert region.faults >= 1

    def test_warm_access_costs_nothing(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            region = kernel.mmap(f)
            yield from region.access(0, 64 * KB)
            t0 = kernel.now
            hits, faults = yield from region.access(0, 64 * KB)
            return hits, faults, kernel.now - t0

        hits, faults, elapsed = drive(kernel, body())
        assert faults == 0
        assert hits == 16
        assert elapsed == 0.0  # no syscall, no copy: pure load

    def test_fault_around_batches_faults(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            region = kernel.mmap(f)
            yield from region.access(0, 256 * KB)  # 64 blocks
            return region.faults

        faults = drive(kernel, body())
        assert faults == 4  # 64 blocks / 16-block fault-around

    def test_madvise_random_faults_per_page(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            region = kernel.mmap(f)
            region.madvise_random()
            yield from region.access(0, 256 * KB)
            return region.faults

        faults = drive(kernel, body())
        assert faults == 64  # one per page

    def test_madvise_random_slower(self, kernel):
        kernel.create_file("/a", 2 * MB)

        def run(random_advice):
            result = {}

            def body():
                f = kernel.vfs.open_sync("/a" if not random_advice
                                         else "/b")
                region = kernel.mmap(f)
                if random_advice:
                    region.madvise_random()
                t0 = kernel.now
                pos = 0
                while pos < 1 * MB:
                    yield from region.access(pos, 64 * KB)
                    pos += 64 * KB
                result["t"] = kernel.now - t0

            drive(kernel, body())
            return result["t"]

        kernel.create_file("/b", 2 * MB)
        t_normal = run(False)
        t_random = run(True)
        assert t_random > t_normal

    def test_access_clamped_to_eof(self, kernel):
        kernel.create_file("/a", 10 * KB)

        def body():
            f = kernel.vfs.open_sync("/a")
            region = kernel.mmap(f)
            hits, faults = yield from region.access(8 * KB, 64 * KB)
            return hits + faults

        pages = drive(kernel, body())
        assert pages == 1  # only the final partial block

    def test_mmap_ra_spawned_on_sequential(self, kernel):
        kernel.create_file("/a", 8 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            region = kernel.mmap(f)
            pos = 0
            while pos < 2 * MB:
                yield from region.access(pos, 64 * KB)
                pos += 64 * KB

        drive(kernel, body())
        assert kernel.registry.get("fill.mmap_ra") \
            + kernel.registry.get("fill.os_ra_sync") > 0
