"""Tests for the span-based observability layer (repro.sim.observe)."""

import json

from repro.os.crossos import CacheInfo
from repro.os.kernel import Kernel
from repro.runtimes.factory import build_runtime
from repro.sim.engine import Simulator
from repro.sim.observe import (
    ContentionProfile,
    Observer,
    export_chrome_trace,
    profile_from_spans,
    spans_from,
)
from repro.sim.trace import Tracer
from tests.conftest import drive

KB = 1 << 10
MB = 1 << 20


def _traced_kernel(**kwargs):
    tracer = Tracer(capacity=500_000)
    kernel = Kernel(memory_bytes=48 * MB, cross_enabled=True,
                    tracer=tracer, **kwargs)
    return kernel, tracer


class TestSpanApi:
    def test_begin_end_roundtrip(self):
        sim = Simulator()
        tracer = Tracer()
        obs = Observer(sim, tracer)
        span = obs.begin("vfs", "read", inode=7)

        def body():
            yield sim.timeout(12.5)
            span.end(pages=3)

        sim.process(body())
        sim.run()
        spans = list(spans_from(tracer))
        assert len(spans) == 1
        got = spans[0]
        assert got.category == "vfs" and got.name == "read"
        assert got.begin == 0.0 and got.end == 12.5
        assert got.duration == 12.5
        assert got.attrs == {"inode": 7, "pages": 3}
        assert got.parent is None

    def test_parent_linkage_and_context_manager(self):
        sim = Simulator()
        tracer = Tracer()
        obs = Observer(sim, tracer)
        with obs.begin("a", "outer") as outer:
            obs.begin("b", "inner", parent=outer).end()
        spans = {s.name: s for s in spans_from(tracer)}
        assert spans["inner"].parent == spans["outer"].id
        assert spans["outer"].parent is None

    def test_end_is_idempotent(self):
        sim = Simulator()
        tracer = Tracer()
        obs = Observer(sim, tracer)
        span = obs.begin("x", "once")
        span.end()
        span.end()
        assert len(list(spans_from(tracer))) == 1

    def test_instants_and_disabled_tracer(self):
        sim = Simulator()
        tracer = Tracer(enabled=False)
        obs = Observer(sim, tracer)
        obs.instant("memory", "reclaim", freed=4)
        obs.begin("x", "y").end()
        assert len(tracer) == 0
        # The profile still aggregates even with the tracer disabled.
        obs.lock_wait("cache_tree", since=0.0)
        assert obs.profile.total_wait == 0.0
        assert obs.profile.categories["cache_tree"].waits == 1


class TestContentionProfile:
    def test_wait_hold_aggregation(self):
        prof = ContentionProfile()
        prof.record_wait("cache_tree", 10.0)
        prof.record_wait("cache_tree", 30.0)
        prof.record_wait("inode", 5.0)
        prof.record_hold("cache_tree", 2.0)
        assert prof.total_wait == 45.0
        assert prof.total_hold == 2.0
        cat = prof.categories["cache_tree"]
        assert cat.waits == 2 and cat.max_wait == 30.0
        assert prof.top(1)[0].category == "cache_tree"

    def test_lock_wait_fraction_clamps(self):
        prof = ContentionProfile()
        prof.record_wait("x", 500.0)
        assert prof.lock_wait_fraction(1000.0) == 0.5
        assert prof.lock_wait_fraction(100.0) == 1.0
        assert prof.lock_wait_fraction(0.0) == 0.0

    def test_histogram_buckets_and_table(self):
        prof = ContentionProfile()
        for waited in (0.5, 3.0, 100.0, 1e6):
            prof.record_wait("x", waited)
        d = prof.to_dict()["x"]
        assert d["waits"] == 4
        assert d["wait_histogram"]["le_1us"] == 1
        assert d["wait_histogram"]["overflow"] == 1
        table = prof.format_table(busy_time=2e6)
        assert "x" in table and "total lock wait" in table


class TestKernelIntegration:
    def _run(self, kernel, nbytes=512 * KB):
        kernel.create_file("/data", 4 * MB)
        runtime = build_runtime("CrossP[+predict+opt]", kernel)

        def body():
            handle = yield from runtime.open("/data")
            for i in range(0, nbytes, 16 * KB):
                yield from runtime.pread(handle, i, 16 * KB)
            yield from runtime.close(handle)

        drive(kernel, body())
        runtime.teardown()
        return runtime

    def test_full_path_emits_spans(self):
        kernel, tracer = _traced_kernel()
        self._run(kernel)
        cats = {(s.category, s.name) for s in spans_from(tracer)}
        assert ("vfs", "read") in cats          # demand read lifecycle
        assert ("crosslib", "pread") in cats
        assert ("crossos", "readahead_info") in cats
        assert ("crossos", "prefetch") in cats  # prefetch lifecycle
        assert ("pagecache", "fill") in cats
        assert ("storage", "read") in cats
        kernel.shutdown()

    def test_parenting_links_read_to_fill(self):
        kernel, tracer = _traced_kernel()
        self._run(kernel)
        spans = list(spans_from(tracer))
        by_id = {s.id: s for s in spans}
        fills = [s for s in spans if s.name == "fill"]
        assert fills, "no pagecache fill spans recorded"
        parents = {by_id[s.parent].name for s in fills
                   if s.parent in by_id}
        assert parents & {"read", "prefetch_pipeline", "readahead_syscall"}

    def test_span_lock_wait_matches_registry(self):
        kernel, tracer = _traced_kernel()
        self._run(kernel, nbytes=2 * MB)
        observer = kernel.observer
        assert observer is not None
        span_wait = observer.profile.total_wait
        registry_wait = kernel.registry.total_lock_wait
        assert span_wait == registry_wait
        # And the stream-rebuilt profile agrees when nothing dropped.
        assert tracer.dropped == 0
        rebuilt = profile_from_spans(spans_from(tracer))
        assert rebuilt.total_wait == span_wait
        kernel.shutdown()

    def test_lock_hold_profile_always_on_emission_opt_in(self):
        kernel, tracer = _traced_kernel()
        self._run(kernel)
        assert kernel.observer.profile.total_hold > 0
        hold_spans = [s for s in spans_from(tracer)
                      if s.category == "lock" and s.name.endswith(".hold")]
        assert hold_spans == []  # not emitted unless emit_lock_holds
        kernel.shutdown()

        kernel2, tracer2 = _traced_kernel(emit_lock_holds=True)
        self._run(kernel2)
        hold_spans = [s for s in spans_from(tracer2)
                      if s.category == "lock" and s.name.endswith(".hold")]
        assert hold_spans
        kernel2.shutdown()

    def test_no_tracer_means_no_observer(self):
        kernel = Kernel(memory_bytes=32 * MB, cross_enabled=True)
        assert kernel.observer is None
        assert kernel.registry.observer is None
        kernel.shutdown()

    def test_readahead_info_span_carries_submission(self):
        kernel, tracer = _traced_kernel()
        kernel.create_file("/a", 2 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=1 * MB))
            return info

        info = drive(kernel, body())
        spans = [s for s in spans_from(tracer)
                 if s.name == "readahead_info"]
        assert len(spans) == 1
        assert spans[0].attrs["submitted"] == info.prefetch_submitted > 0
        kernel.shutdown()


class TestChromeExport:
    def test_export_is_valid_trace_event_json(self, tmp_path):
        kernel, tracer = _traced_kernel()
        TestKernelIntegration()._run(kernel)
        path = tmp_path / "run.trace.json"
        summary = export_chrome_trace(tracer, str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert doc["otherData"]["dropped_events"] == 0
        phases = {e["ph"] for e in events}
        assert phases >= {"X", "i", "M"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == summary["spans"]
        for e in complete:
            assert e["dur"] >= 0
            assert isinstance(e["ts"], float)
        # Category tracks are named via metadata events.
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"vfs", "storage"} <= names
        kernel.shutdown()

    def test_export_handles_unserializable_attrs(self, tmp_path):
        sim = Simulator()
        tracer = Tracer()
        obs = Observer(sim, tracer)
        obs.begin("x", "odd", payload=object()).end()
        path = tmp_path / "odd.trace.json"
        export_chrome_trace(tracer, str(path))
        json.loads(path.read_text())  # must not raise
