"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "OSonly" in out
        assert "fig7b" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_approach(self, capsys):
        code = main(["workload", "--approach", "MagicCache"])
        assert code == 2
        assert "unknown approach" in capsys.readouterr().err

    def test_every_experiment_registered(self):
        expected = {"fig2", "fig5", "fig6", "tab4", "fig7a", "fig7b",
                    "fig7c", "fig7d", "tab5", "fig10", "fig8a",
                    "fig8b", "fig9a", "fig9b"}
        assert set(EXPERIMENTS) == expected

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestWorkloadCommand:
    def test_microbench_runs(self, capsys):
        code = main(["workload", "--kind", "microbench",
                     "--pattern", "seq", "--threads", "2",
                     "--memory-mb", "32", "--data-mb", "16",
                     "--approach", "OSonly"])
        assert code == 0
        out = capsys.readouterr().out
        assert "OSonly" in out
        assert "MB/s" in out

    def test_snappy_runs(self, capsys):
        code = main(["workload", "--kind", "snappy", "--threads", "2",
                     "--memory-mb", "32", "--data-mb", "32",
                     "--approach", "OSonly"])
        assert code == 0
        assert "snappy" in capsys.readouterr().out

    def test_dbbench_runs(self, capsys):
        code = main(["workload", "--kind", "dbbench",
                     "--pattern", "readrandom", "--threads", "2",
                     "--memory-mb", "64", "--data-mb", "16",
                     "--approach", "OSonly"])
        assert code == 0
        assert "dbbench" in capsys.readouterr().out
