"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "OSonly" in out
        assert "fig7b" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_approach(self, capsys):
        code = main(["workload", "--approach", "MagicCache"])
        assert code == 2
        assert "unknown approach" in capsys.readouterr().err

    def test_every_experiment_registered(self):
        expected = {"fig2", "fig5", "fig6", "tab4", "fig7a", "fig7b",
                    "fig7c", "fig7d", "tab5", "fig10", "fig8a",
                    "fig8b", "fig9a", "fig9b", "resilience",
                    "fairness", "recovery", "scale", "adaptive"}
        assert set(EXPERIMENTS) == expected

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestWorkloadCommand:
    def test_microbench_runs(self, capsys):
        code = main(["workload", "--kind", "microbench",
                     "--pattern", "seq", "--threads", "2",
                     "--memory-mb", "32", "--data-mb", "16",
                     "--approach", "OSonly"])
        assert code == 0
        out = capsys.readouterr().out
        assert "OSonly" in out
        assert "MB/s" in out

    def test_snappy_runs(self, capsys):
        code = main(["workload", "--kind", "snappy", "--threads", "2",
                     "--memory-mb", "32", "--data-mb", "32",
                     "--approach", "OSonly"])
        assert code == 0
        assert "snappy" in capsys.readouterr().out

    def test_dbbench_runs(self, capsys):
        code = main(["workload", "--kind", "dbbench",
                     "--pattern", "readrandom", "--threads", "2",
                     "--memory-mb", "64", "--data-mb", "16",
                     "--approach", "OSonly"])
        assert code == 0
        assert "dbbench" in capsys.readouterr().out


class TestTraceCommand:
    def test_unknown_experiment(self, capsys):
        assert main(["trace", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_fig2_quick(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        code = main(["trace", "fig2", "--quick", "--out", str(out_dir)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Traces written to" in stdout

        traces = sorted(out_dir.glob("*.trace.json"))
        lockprofs = sorted(out_dir.glob("*.lockprof.json"))
        assert len(traces) == 4 and len(lockprofs) == 4  # one per approach

        cross = [p for p in traces if "CrossP" in p.name]
        assert len(cross) == 1
        doc = json.loads(cross[0].read_text())
        events = doc["traceEvents"]
        assert doc["otherData"]["dropped_events"] == 0
        names = {(e.get("cat"), e.get("name")) for e in events
                 if e.get("ph") == "X"}
        # Demand-read lifecycle, prefetch lifecycle, and lock spans.
        assert ("vfs", "read") in names
        assert ("crossos", "prefetch") in names
        assert any(cat == "lock" for cat, _n in names)

        # Span-derived lock-wait must match the registry within 1%.
        for prof_path in lockprofs:
            prof = json.loads(prof_path.read_text())
            span_us = prof["span_lock_wait_us"]
            reg_us = prof["registry_lock_wait_us"]
            assert abs(span_us - reg_us) <= 0.01 * max(reg_us, 1e-9)

    def test_workload_trace_out(self, tmp_path, capsys):
        out_dir = tmp_path / "wl"
        code = main(["workload", "--kind", "microbench",
                     "--pattern", "seq", "--threads", "2",
                     "--memory-mb", "32", "--data-mb", "16",
                     "--approach", "CrossP[+predict+opt]",
                     "--trace-out", str(out_dir)])
        assert code == 0
        assert "Traces written to" in capsys.readouterr().out
        assert list(out_dir.glob("*.trace.json"))
        assert list(out_dir.glob("*.lockprof.json"))


class TestCheckCommand:
    def test_check_one_experiment_with_stress(self, capsys):
        assert main(["check", "fig2", "--stress", "1"]) == 0
        out = capsys.readouterr().out
        assert "ok   fig2" in out
        assert "stress(seed=0)" in out
        assert "all invariant checks passed" in out

    def test_check_unknown_name(self, capsys):
        assert main(["check", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_check_quick_presets_cover_every_experiment(self):
        from repro.cli import QUICK_ARGS
        assert set(QUICK_ARGS) == set(EXPERIMENTS)

    def test_workload_audit_flag(self, capsys):
        code = main(["workload", "--kind", "microbench",
                     "--pattern", "seq", "--threads", "2",
                     "--memory-mb", "32", "--data-mb", "16", "--audit"])
        assert code == 0

    def test_check_with_fault_preset(self, capsys):
        code = main(["check", "fig5", "--faults", "flaky",
                     "--stress", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault preset: flaky (seed=0)" in out
        assert "ok   fig5" in out
        assert "all invariant checks passed" in out


class TestChaosCommand:
    def test_chaos_quick_audit(self, capsys):
        code = main(["chaos", "--quick", "--audit",
                     "--intensity", "1.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "seed: 0" in out
        assert "Resilience" in out
        assert "OSonly" in out and "CrossP[+predict+opt]" in out
        assert "invariant audit passed for every chaotic run" in out

    def test_chaos_unknown_approach(self, capsys):
        code = main(["chaos", "--quick", "--approach", "MagicCache"])
        assert code == 2
        assert "unknown approach" in capsys.readouterr().err

    def test_workload_with_faults_and_seed(self, capsys):
        code = main(["workload", "--kind", "microbench",
                     "--pattern", "seq", "--threads", "2",
                     "--memory-mb", "32", "--data-mb", "16",
                     "--approach", "OSonly",
                     "--faults", "flaky", "--seed", "3", "--audit"])
        assert code == 0
        out = capsys.readouterr().out
        assert "seed: 3" in out
        assert "MB/s" in out
