"""Tests for metrics, reports, machine configs, and the runner."""

import pytest

from repro.harness.configs import MachineConfig, Scale
from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.harness.report import format_matrix, format_table
from repro.harness.runner import make_kernel, run_approaches
from repro.os.kernel import Kernel
from repro.storage.nvme import NVMeDevice
from repro.storage.remote import RemoteNVMeDevice
from repro.workloads.microbench import MicrobenchConfig, run_microbench

GB = 1 << 30
MB = 1 << 20


class TestScale:
    def test_divides_sizes(self):
        scale = Scale(64)
        assert scale.bytes(128 * GB) == 2 * GB
        assert scale.count(6400) == 100
        assert str(scale) == "1/64"

    def test_floors(self):
        scale = Scale(1024)
        assert scale.bytes(1 * MB) == 1 * MB  # never below 1 MB
        assert scale.count(3) == 1


class TestMachineConfig:
    def test_presets(self):
        local = MachineConfig.local_ext4()
        assert local.fs.name == "ext4"
        assert not local.remote
        f2fs = MachineConfig.local_f2fs()
        assert f2fs.fs.name == "f2fs"
        remote = MachineConfig.remote_nvmeof()
        assert remote.remote
        motivation = MachineConfig.motivation()
        assert motivation.memory_bytes == 128 * GB

    def test_device_factory_builds_right_type(self):
        kernel = make_kernel(MachineConfig.local_ext4(), "OSonly")
        assert isinstance(kernel.device, NVMeDevice)
        kernel.shutdown()
        kernel = make_kernel(MachineConfig.remote_nvmeof(), "OSonly")
        assert isinstance(kernel.device, RemoteNVMeDevice)
        kernel.shutdown()

    def test_cross_enabled_follows_approach(self):
        machine = MachineConfig.local_ext4()
        plain = make_kernel(machine, "OSonly")
        cross = make_kernel(machine, "CrossP[+predict+opt]")
        assert plain.cross is None
        assert cross.cross is not None
        plain.shutdown()
        cross.shutdown()

    def test_scaled_memory(self):
        machine = MachineConfig.local_ext4(Scale(80))
        assert machine.scaled_memory_bytes == 1 * GB


class TestMetrics:
    def test_derived_quantities(self):
        m = ApproachMetrics(approach="x", duration_us=1e6,
                            bytes_read=100 * MB, ops=5000,
                            hit_pages=75, miss_pages=25,
                            lock_wait_us=2e5, thread_time_us=1e6)
        assert m.throughput_mbps == pytest.approx(100.0)
        assert m.kops == pytest.approx(5.0)
        assert m.miss_pct == pytest.approx(25.0)
        assert m.lock_pct == pytest.approx(20.0)

    def test_zero_duration_safe(self):
        m = ApproachMetrics(approach="x")
        assert m.throughput_mbps == 0.0
        assert m.kops == 0.0
        assert m.miss_pct == 0.0
        assert m.lock_pct == 0.0

    def test_speedup(self):
        fast = ApproachMetrics("f", duration_us=1e6, bytes_read=200 * MB)
        slow = ApproachMetrics("s", duration_us=1e6, bytes_read=100 * MB)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_collect_pulls_kernel_telemetry(self):
        kernel = Kernel(memory_bytes=16 * MB)
        kernel.registry.count("syscalls.read", 7)
        m = collect_metrics("t", kernel, duration_us=1000.0, ops=10)
        assert m.syscalls["read"] == 7
        kernel.shutdown()


class TestReport:
    def _metrics(self, name, mbps):
        return ApproachMetrics(approach=name, duration_us=1e6,
                               bytes_read=int(mbps * MB))

    def test_format_table_contains_rows(self):
        results = {"A": self._metrics("A", 100),
                   "B": self._metrics("B", 200)}
        text = format_table("My Table", results)
        assert "My Table" in text
        assert "A" in text and "B" in text
        assert "100.0" in text and "200.0" in text

    def test_format_table_custom_columns_and_note(self):
        results = {"A": self._metrics("A", 1)}
        text = format_table("T", results,
                            columns=[("ops", lambda m: f"{m.ops}")],
                            note="shape: A wins")
        assert "ops" in text
        assert "shape: A wins" in text

    def test_format_matrix(self):
        series = {"A": {"x1": 1.0, "x2": 2.0}, "B": {"x1": 3.0}}
        text = format_matrix("M", series, xlabel="sweep")
        assert "M" in text
        assert "x1" in text and "x2" in text
        assert "-" in text  # missing cell placeholder


class TestRunner:
    def test_run_approaches_isolated_kernels(self):
        machine = MachineConfig.local_ext4()

        def workload(kernel, runtime):
            cfg = MicrobenchConfig(nthreads=2, total_bytes=8 * MB,
                                   pattern="seq", sharing="private")
            return run_microbench(kernel, runtime, cfg)

        results = run_approaches(machine, ("OSonly", "APPonly"),
                                 workload, memory_bytes=32 * MB)
        assert set(results) == {"OSonly", "APPonly"}
        for name, metrics in results.items():
            assert metrics.approach == name
            assert metrics.throughput_mbps > 0
