"""Timeout-pool recycling edge cases.

The engine recycles :class:`Timeout` objects whose last reference dies
at dispatch (refcount probe via ``sys.getrefcount``).  These tests pin
the hazardous corners: an event a combinator still holds must never be
recycled out from under it, the pool must respect its cap, reissued
(pooled) timeouts must preserve deterministic wakeup order, and the
same-instant bucket path — where a pooled candidate carries one extra
bucket-slot reference — must recycle too.
"""

import pytest

from repro.sim import Simulator
from repro.sim.engine import _TIMEOUT_POOL_CAP, Timeout


def test_anyof_survivor_not_recycled():
    """A timeout the AnyOf (and test) still references when it fires
    must keep its identity: recycling it would rewrite its value and
    delay mid-flight."""
    sim = Simulator()
    seen = {}

    def proc():
        short = sim.timeout(1.0, value="short")
        long = sim.timeout(5.0, value="long")
        first = yield sim.any_of([short, long])
        seen["winner_is_short"] = first is short
        # Hammer the pool while `long` is still pending: if `long` had
        # been wrongly pooled, one of these reissues would corrupt it.
        for _ in range(50):
            yield sim.timeout(0.01)
        yield long
        seen["long_value"] = long._value
        seen["long_delay"] = long.delay

    sim.process(proc())
    sim.run()
    assert seen["winner_is_short"]
    assert seen["long_value"] == "long"
    assert seen["long_delay"] == 5.0


def test_anyof_loser_not_pooled_while_held():
    """The losing timeout of an AnyOf is still referenced by the test
    frame when it fires, so it must not enter the pool."""
    sim = Simulator()
    short = sim.timeout(1.0)
    long = sim.timeout(2.0)
    sim.any_of([short, long])
    sim.run()
    assert long._processed
    assert long not in sim._timeout_pool


def test_pool_respects_cap():
    """More simultaneously-live timeouts than the cap: the pool absorbs
    exactly ``_TIMEOUT_POOL_CAP`` of them and drops the rest."""
    sim = Simulator()
    n = _TIMEOUT_POOL_CAP + 100

    def proc(tid):
        yield sim.timeout(1.0 + tid)

    for tid in range(n):
        sim.process(proc(tid))
    sim.run()
    assert len(sim._timeout_pool) == _TIMEOUT_POOL_CAP


def test_pool_reuse_recycles_objects():
    """Sequential timeouts in one process cycle through the pool.

    The process resumes (and creates the next timeout) *before* the
    dispatched timeout's refcount probe pools it, so reuse alternates
    between exactly two live objects rather than reusing one — the
    steady-state allocation rate is still zero.
    """
    sim = Simulator()
    ids = []

    def proc():
        for _ in range(6):
            t = sim.timeout(1.0)
            ids.append(id(t))
            yield t
            del t  # drop the local so the dispatch-time refcount probe fires

    sim.process(proc())
    sim.run()
    assert len(set(ids)) == 2
    assert ids[0::2] == [ids[0]] * 3
    assert ids[1::2] == [ids[1]] * 3


def test_reissued_seq_ordering_deterministic():
    """Wakeup order among same-instant timeouts is creation order,
    whether the timeouts are fresh allocations or pool reissues."""

    def phase(sim, order):
        def proc(name):
            yield sim.timeout(3.0)
            order.append(name)

        for name in ("a", "b", "c", "d"):
            sim.process(proc(name))

    def warm(sim):
        def churn():
            for _ in range(20):
                yield sim.timeout(0.5)

        sim.process(churn())
        sim.run()

    fresh_sim, warm_sim = Simulator(), Simulator()
    warm(warm_sim)
    assert warm_sim._timeout_pool  # the reissue path is actually hit
    fresh_order, warm_order = [], []
    phase(fresh_sim, fresh_order)
    phase(warm_sim, warm_order)
    fresh_sim.run()
    warm_sim.run()
    assert fresh_order == ["a", "b", "c", "d"]
    assert warm_order == fresh_order


def test_zero_delay_bucket_timeout_recycled():
    """A zero-delay timeout issued during dispatch lands in the
    same-instant bucket; the bucket drain must still recycle it (its
    refcount carries the extra bucket-slot reference)."""
    sim = Simulator()
    zids = []

    def proc():
        yield sim.timeout(1.0)
        t = sim.timeout(0.0)
        zids.append(id(t))
        yield t
        del t
        # Move to a later instant so the bucket drain finishes (and
        # pools the zero-delay timeout) with the process still alive.
        yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    assert sim.now == 2.0
    # The zero-delay timeout went through the bucket and into the pool.
    assert zids[0] in {id(t) for t in sim._timeout_pool}


def test_bucket_fifo_order_same_instant():
    """Same-instant zero-delay wakeups dispatch in issue order, even
    interleaved across processes and with pooled reissues."""
    sim = Simulator()
    order = []

    def proc(name, hops):
        yield sim.timeout(1.0)
        for hop in range(hops):
            order.append((name, hop))
            yield sim.timeout(0.0)
        order.append((name, "end"))

    sim.process(proc("x", 2))
    sim.process(proc("y", 2))
    sim.run()
    assert order == [("x", 0), ("y", 0), ("x", 1), ("y", 1),
                     ("x", "end"), ("y", "end")]
    assert sim.now == 1.0


def test_pool_reissue_rejects_negative_delay():
    """The pooled fast path validates delay like the constructor."""
    sim = Simulator()

    def churn():
        yield sim.timeout(1.0)

    sim.process(churn())
    sim.run()
    assert sim._timeout_pool
    from repro.sim import SimulationError
    with pytest.raises(SimulationError):
        sim.timeout(-0.5)


def test_recycled_timeout_type_stays_exact():
    """Only exact Timeout instances recycle: a subclass must never
    enter the pool (the probe is ``type(event) is Timeout``)."""

    class Marked(Timeout):
        __slots__ = ()

    sim = Simulator()

    def proc():
        yield Marked(sim, 1.0)
        yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    assert all(type(t) is Timeout for t in sim._timeout_pool)
