"""Integration tests for the CROSS-LIB runtime."""

import pytest

from repro.crosslib.config import CrossLibConfig
from repro.crosslib.runtime import CrossLibRuntime
from repro.os.kernel import Kernel
from repro.runtimes.base import HINT_RANDOM, HINT_SEQUENTIAL
from tests.conftest import drive

KB = 1 << 10
MB = 1 << 20


def make(kernel, **flags):
    cfg = CrossLibConfig()
    for key, value in flags.items():
        setattr(cfg, key, value)
    return CrossLibRuntime(kernel, cfg)


class TestBasics:
    def test_requires_cross_kernel(self, plain_kernel):
        with pytest.raises(ValueError):
            CrossLibRuntime(plain_kernel)

    def test_open_disables_stock_readahead(self, kernel):
        kernel.create_file("/a", 1 * MB)
        runtime = make(kernel)

        def body():
            h = yield from runtime.open("/a", HINT_SEQUENTIAL)
            return h

        h = drive(kernel, body())
        assert h.file.ra.enabled is False
        runtime.teardown()

    def test_read_write_roundtrip(self, kernel):
        kernel.create_file("/a", 1 * MB)
        runtime = make(kernel, aggressive=False)

        def body():
            h = yield from runtime.open("/a", HINT_RANDOM)
            r = yield from runtime.pread(h, 0, 64 * KB)
            n = yield from runtime.pwrite(h, 0, 64 * KB)
            yield from runtime.close(h)
            return r, n

        r, n = drive(kernel, body())
        assert r.nbytes == 64 * KB
        assert n == 64 * KB
        runtime.teardown()

    def test_shared_state_per_inode(self, kernel):
        kernel.create_file("/a", 1 * MB)
        runtime = make(kernel)

        def body():
            h1 = yield from runtime.open("/a")
            h2 = yield from runtime.open("/a")
            return h1.ufd.state is h2.ufd.state

        assert drive(kernel, body()) is True
        runtime.teardown()


class TestSequentialPrefetch:
    def test_sequential_stream_prefetches_and_elides(self, kernel):
        kernel.create_file("/a", 16 * MB)
        runtime = make(kernel)

        def body():
            h = yield from runtime.open("/a", HINT_SEQUENTIAL)
            while h.pos < 16 * MB:
                yield from runtime.read_seq(h, 64 * KB)

        drive(kernel, body())
        registry = kernel.registry
        assert registry.get("syscalls.readahead_info") > 0
        # Far fewer syscalls than reads thanks to the frontier hysteresis.
        assert registry.get("syscalls.readahead_info") \
            < registry.get("syscalls.read") / 2
        misses = registry.get("cache.demand_misses")
        hits = registry.get("cache.demand_hits")
        assert misses / (hits + misses) < 0.10
        runtime.teardown()

    def test_backward_stream_prefetches(self, kernel):
        kernel.create_file("/a", 8 * MB)
        runtime = make(kernel)

        def body():
            h = yield from runtime.open("/a", HINT_SEQUENTIAL)
            nblocks = 8 * MB // 4096
            for i in range(nblocks - 1, -1, -1):
                yield from runtime.pread(h, i * 4096, 4096)

        drive(kernel, body())
        registry = kernel.registry
        misses = registry.get("cache.demand_misses")
        hits = registry.get("cache.demand_hits")
        assert misses / (hits + misses) < 0.10
        runtime.teardown()

    def test_user_bitmap_elides_redundant_prefetch(self, kernel):
        kernel.create_file("/a", 4 * MB)
        runtime = make(kernel, aggressive=False)

        def body():
            h = yield from runtime.open("/a", HINT_SEQUENTIAL)
            # First pass populates; second pass must elide.
            for _pass in range(2):
                h.pos = 0
                while h.pos < 4 * MB:
                    yield from runtime.read_seq(h, 64 * KB)
                h.ufd.frontier_fwd = 0  # reset hysteresis between passes

        drive(kernel, body())
        assert kernel.registry.get("cross.elided_prefetch") > 0
        runtime.teardown()


class TestFetchall:
    def test_fetchall_loads_whole_file_on_open(self, kernel):
        inode = kernel.create_file("/a", 8 * MB)
        runtime = make(kernel, fetchall=True, predict=False,
                       aggressive=False)

        def body():
            yield from runtime.open("/a", HINT_RANDOM)
            yield kernel.sim.timeout(1e6)

        drive(kernel, body())
        assert inode.cache.cached_pages == 8 * MB // 4096
        runtime.teardown()

    def test_fetchall_only_once_per_file(self, kernel):
        kernel.create_file("/a", 4 * MB)
        runtime = make(kernel, fetchall=True, predict=False,
                       aggressive=False)

        def body():
            yield from runtime.open("/a", HINT_RANDOM)
            yield from runtime.open("/a", HINT_RANDOM)
            yield kernel.sim.timeout(1e6)

        drive(kernel, body())
        assert kernel.device.stats.read_bytes == 4 * MB
        runtime.teardown()


class TestAggressive:
    def test_initial_prefetch_on_open(self, kernel):
        inode = kernel.create_file("/a", 8 * MB)
        runtime = make(kernel, aggressive=True)

        def body():
            yield from runtime.open("/a", HINT_RANDOM)
            yield kernel.sim.timeout(1e6)

        drive(kernel, body())
        initial = runtime.config.aggressive_initial_bytes // 4096
        assert inode.cache.cached_pages >= initial
        runtime.teardown()

    def test_bulk_load_fills_file_under_free_memory(self, kernel):
        inode = kernel.create_file("/a", 8 * MB)
        runtime = make(kernel, aggressive=True)

        def body():
            h = yield from runtime.open("/a", HINT_RANDOM)
            for i in range(64):
                yield from runtime.pread(h, (i * 97) % 2000 * 4096, 4096)
            yield kernel.sim.timeout(1e6)

        drive(kernel, body())
        # Bulk loading marches through the file beyond what was read.
        assert inode.cache.cached_pages > 512
        runtime.teardown()

    def test_prefetch_stops_below_low_watermark(self):
        kernel = Kernel(memory_bytes=4 * MB, cross_enabled=True)
        kernel.create_file("/a", 32 * MB)
        runtime = make(kernel, aggressive=True)

        def body():
            h = yield from runtime.open("/a", HINT_SEQUENTIAL)
            while h.pos < 16 * MB:
                yield from runtime.read_seq(h, 64 * KB)

        drive(kernel, body())
        # With 4 MB of RAM the budget must have dropped requests or the
        # evictor must have run; either way memory stayed bounded.
        assert kernel.mem.used_pages <= kernel.mem.total_pages + 512
        runtime.teardown()
        kernel.shutdown()

    def test_evictor_reclaims_inactive_files(self):
        kernel = Kernel(memory_bytes=16 * MB, cross_enabled=True)
        for i in range(4):
            kernel.create_file(f"/f{i}", 8 * MB)
        cfg_kw = dict(aggressive=True)
        runtime = make(kernel, **cfg_kw)
        runtime.config.inactive_file_us = 1000.0  # fast-ripen for test

        def body():
            for i in range(4):
                h = yield from runtime.open(f"/f{i}", HINT_SEQUENTIAL)
                while h.pos < 8 * MB:
                    yield from runtime.read_seq(h, 256 * KB)
                yield from runtime.close(h)
                yield kernel.sim.timeout(5000)

        drive(kernel, body())
        assert runtime.budget.evictions > 0
        runtime.teardown()
        kernel.shutdown()


class TestMmapWatcher:
    def test_mmap_sequential_prefetches(self, kernel):
        kernel.create_file("/a", 8 * MB)
        runtime = make(kernel)

        def body():
            mh = yield from runtime.mmap_open("/a", HINT_SEQUENTIAL)
            pos = 0
            while pos < 8 * MB:
                yield from runtime.mmap_access(mh, pos, 64 * KB)
                pos += 64 * KB

        drive(kernel, body())
        assert kernel.registry.get("syscalls.readahead_info") > 0
        runtime.teardown()

    def test_teardown_stops_workers_and_watchers(self, kernel):
        kernel.create_file("/a", 1 * MB)
        runtime = make(kernel)

        def body():
            yield from runtime.mmap_open("/a", HINT_SEQUENTIAL)

        drive(kernel, body())
        runtime.teardown()
        kernel.run()  # deliver the interrupts
        for worker in runtime.workers._workers:
            assert not worker.is_alive
