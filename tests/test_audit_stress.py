"""Randomized model checking: the audited kernel must hold every
invariant under arbitrary interleavings of reads, prefetches, writes,
and reclaim.  Any seed that fails here is a reproducer by itself
(``run_stress(seed)`` is deterministic in its seed)."""

import pytest

from repro.sim.audit import run_stress

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(deadline=None, max_examples=10)
def test_stress_invariants_hold(seed):
    stats = run_stress(seed, steps=25)
    assert stats["seed"] == seed
    assert stats["read_bytes"] >= 0
    assert stats["mirror_checks"] > 0


def test_stress_is_deterministic():
    a = run_stress(7, steps=20)
    b = run_stress(7, steps=20)
    assert a == b
