"""Unit + property tests for the word-array block bitmap."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.os.bitmap import BlockBitmap


class TestBasics:
    def test_empty(self):
        bm = BlockBitmap(100)
        assert bm.count_set() == 0
        assert not bm.test(0)
        assert not bm.any_set(0, 100)
        assert bm.all_set(0, 0)  # empty range vacuously true

    def test_set_and_test(self):
        bm = BlockBitmap(100)
        bm.set_range(10, 5)
        assert all(bm.test(b) for b in range(10, 15))
        assert not bm.test(9)
        assert not bm.test(15)
        assert bm.count_set() == 5

    def test_clear_range(self):
        bm = BlockBitmap(100)
        bm.set_range(0, 100)
        bm.clear_range(20, 30)
        assert bm.count_set() == 70
        assert bm.test(19)
        assert not bm.test(20)
        assert not bm.test(49)
        assert bm.test(50)

    def test_cross_word_boundaries(self):
        bm = BlockBitmap(300)
        bm.set_range(60, 10)  # spans the 64-bit boundary
        assert bm.count_set(60, 10) == 10
        assert bm.count_set() == 10
        bm.clear_range(63, 2)
        assert bm.count_set() == 8

    def test_clear_all(self):
        bm = BlockBitmap(100)
        bm.set_range(0, 100)
        bm.clear_all()
        assert bm.count_set() == 0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            BlockBitmap(-1)
        with pytest.raises(ValueError):
            BlockBitmap(10, shift=-1)
        bm = BlockBitmap(10)
        with pytest.raises(ValueError):
            bm.test(-1)
        with pytest.raises(ValueError):
            bm.set_range(-1, 5)

    def test_count_requires_count_with_start(self):
        bm = BlockBitmap(10)
        with pytest.raises(ValueError):
            bm.count_set(0)

    def test_resize_shrink_clears_truncated(self):
        bm = BlockBitmap(128)
        bm.set_range(0, 128)
        bm.resize(64)
        assert bm.count_set() == 64
        bm.resize(128)
        assert bm.count_set() == 64

    def test_repr(self):
        bm = BlockBitmap(10)
        bm.set_range(0, 3)
        assert "set=3" in repr(bm)


class TestRuns:
    def test_missing_runs_simple(self):
        bm = BlockBitmap(20)
        bm.set_range(5, 5)
        assert list(bm.missing_runs(0, 20)) == [(0, 5), (10, 10)]

    def test_set_runs_simple(self):
        bm = BlockBitmap(20)
        bm.set_range(2, 3)
        bm.set_range(10, 2)
        assert list(bm.set_runs(0, 20)) == [(2, 3), (10, 2)]

    def test_runs_clamped_to_query_range(self):
        bm = BlockBitmap(100)
        bm.set_range(0, 100)
        assert list(bm.set_runs(40, 10)) == [(40, 10)]
        assert list(bm.missing_runs(40, 10)) == []

    def test_runs_empty_range(self):
        bm = BlockBitmap(10)
        assert list(bm.set_runs(0, 0)) == []
        assert list(bm.missing_runs(5, 0)) == []

    def test_adjacent_set_ranges_merge(self):
        bm = BlockBitmap(64)
        bm.set_range(0, 10)
        bm.set_range(10, 10)
        assert list(bm.set_runs(0, 64)) == [(0, 20)]

    def test_long_run_across_many_words(self):
        bm = BlockBitmap(1000)
        bm.set_range(1, 998)
        assert list(bm.set_runs(0, 1000)) == [(1, 998)]
        assert list(bm.missing_runs(0, 1000)) == [(0, 1), (999, 1)]


class TestWindows:
    def test_window_roundtrip(self):
        bm = BlockBitmap(200)
        bm.set_range(3, 7)
        bm.set_range(64, 4)
        window = bm.window(0, 128)
        other = BlockBitmap(200)
        other.load_window(0, 128, window)
        assert other.window(0, 128) == window
        assert other.count_set() == bm.count_set(0, 128)

    def test_load_window_overwrites(self):
        bm = BlockBitmap(64)
        bm.set_range(0, 64)
        bm.load_window(0, 64, 0)
        assert bm.count_set() == 0

    def test_export_nbytes(self):
        bm = BlockBitmap(1024)
        assert bm.export_nbytes(0, 8) == 1
        assert bm.export_nbytes(0, 9) == 2
        assert bm.export_nbytes(0, 1024) == 128
        assert bm.export_nbytes(0, 0) == 0


class TestShift:
    def test_shift_coarsens_granularity(self):
        bm = BlockBitmap(64, shift=3)  # one bit per 8 blocks
        bm.set_range(0, 1)  # touches bit 0 -> covers blocks 0..7
        assert bm.test(7)
        assert not bm.test(8)
        assert bm.nbits == 8

    def test_shift_resident_blocks_exact(self):
        bm = BlockBitmap(64, shift=3)
        bm.set_range(4, 8)  # bits 0 and 1 -> blocks 0..15
        assert bm.resident_blocks(0, 64) == 16
        assert bm.count_set() == 2

    def test_shift_runs_clamped_to_blocks(self):
        bm = BlockBitmap(20, shift=2)
        bm.set_range(0, 20)
        assert list(bm.set_runs(0, 20)) == [(0, 20)]


# -- property-based tests -----------------------------------------------------

ops_strategy = st.lists(
    st.tuples(st.sampled_from(["set", "clear"]),
              st.integers(0, 499), st.integers(0, 200)),
    min_size=0, max_size=40)


def _reference_apply(nblocks, shift, ops):
    bits = set()
    for op, start, count in ops:
        count = min(count, nblocks - start)
        if count <= 0:
            continue
        first = start >> shift
        last = (start + count - 1) >> shift
        touched = set(range(first, last + 1))
        if op == "set":
            bits |= touched
        else:
            bits -= touched
    return bits


@settings(max_examples=150, deadline=None)
@given(nblocks=st.integers(1, 500), shift=st.integers(0, 3),
       ops=ops_strategy)
def test_property_matches_reference_set(nblocks, shift, ops):
    bm = BlockBitmap(nblocks, shift=shift)
    ops = [(op, min(s, nblocks - 1), c) for op, s, c in ops]
    for op, start, count in ops:
        count = min(count, nblocks - start)
        if count <= 0:
            continue
        if op == "set":
            bm.set_range(start, count)
        else:
            bm.clear_range(start, count)
    ref = _reference_apply(nblocks, shift, ops)
    assert bm.count_set() == len(ref)
    for bit in range(bm.nbits):
        block = bit << shift
        if block < nblocks:
            assert bm.test(block) == (bit in ref)


@settings(max_examples=100, deadline=None)
@given(nblocks=st.integers(1, 400), ops=ops_strategy)
def test_property_runs_partition_the_range(nblocks, ops):
    """set_runs and missing_runs together tile any query exactly."""
    bm = BlockBitmap(nblocks)
    for op, start, count in ops:
        start = min(start, nblocks - 1)
        count = min(count, nblocks - start)
        if count <= 0:
            continue
        if op == "set":
            bm.set_range(start, count)
        else:
            bm.clear_range(start, count)
    runs = ([(s, c, True) for s, c in bm.set_runs(0, nblocks)]
            + [(s, c, False) for s, c in bm.missing_runs(0, nblocks)])
    runs.sort()
    pos = 0
    for start, count, _is_set in runs:
        assert start == pos
        assert count > 0
        pos += count
    assert pos == nblocks


@settings(max_examples=100, deadline=None)
@given(nblocks=st.integers(1, 300),
       start=st.integers(0, 299), count=st.integers(1, 300),
       ops=ops_strategy)
def test_property_window_roundtrip(nblocks, start, count, ops):
    bm = BlockBitmap(nblocks)
    for op, s, c in ops:
        s = min(s, nblocks - 1)
        c = min(c, nblocks - s)
        if c <= 0:
            continue
        (bm.set_range if op == "set" else bm.clear_range)(s, c)
    start = min(start, nblocks - 1)
    count = min(count, nblocks - start)
    if count <= 0:
        return
    window = bm.window(start, count)
    dup = BlockBitmap(nblocks)
    dup.load_window(start, count, window)
    assert dup.window(start, count) == window
    assert dup.count_set(start, count) == bm.count_set(start, count)


@settings(max_examples=80, deadline=None)
@given(nblocks=st.integers(1, 300), ops=ops_strategy)
def test_property_copy_is_independent(nblocks, ops):
    bm = BlockBitmap(nblocks)
    for op, s, c in ops:
        s = min(s, nblocks - 1)
        c = min(c, nblocks - s)
        if c > 0:
            (bm.set_range if op == "set" else bm.clear_range)(s, c)
    dup = bm.copy()
    assert dup.count_set() == bm.count_set()
    dup.set_range(0, nblocks)
    dup.clear_range(0, nblocks)
    assert dup.count_set() == 0
    # original unchanged
    ref = _reference_apply(nblocks, 0, [
        (op, min(s, nblocks - 1), min(c, nblocks - min(s, nblocks - 1)))
        for op, s, c in ops])
    assert bm.count_set() == len(ref)
