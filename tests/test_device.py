"""Tests for the storage device models."""

import pytest

from repro.sim import Simulator
from repro.storage import (
    BLOCKING,
    EXT4,
    F2FS,
    NVMeDevice,
    NVMeParams,
    PREFETCH,
    RemoteNVMeDevice,
    StorageDevice,
)

KB = 1 << 10
MB = 1 << 20


def run_reads(device, sim, requests):
    """Submit (offset, nbytes, priority) reads; return completion times."""
    times = {}

    def submitter():
        events = []
        for i, (offset, nbytes, priority) in enumerate(requests):
            ev = device.read(offset, nbytes, priority=priority, stream=1)
            ev.add_callback(
                lambda _e, i=i: times.__setitem__(i, sim.now))
            events.append(ev)
        yield sim.all_of(events)

    sim.process(submitter())
    sim.run()
    return times


class TestServiceModel:
    def test_sequential_faster_than_random(self):
        sim = Simulator()
        dev = NVMeDevice(sim)
        # Two back-to-back sequential reads vs two random ones.
        t_seq = run_reads(dev, sim, [(0, 64 * KB, BLOCKING),
                                     (64 * KB, 64 * KB, BLOCKING)])
        sim2 = Simulator()
        dev2 = NVMeDevice(sim2)
        t_rand = run_reads(dev2, sim2, [(0, 64 * KB, BLOCKING),
                                        (10 * MB, 64 * KB, BLOCKING)])
        assert max(t_seq.values()) < max(t_rand.values())

    def test_large_reads_approach_bandwidth(self):
        sim = Simulator()
        dev = NVMeDevice(sim)
        nbytes = 64 * MB
        times = run_reads(dev, sim, [(0, nbytes, BLOCKING)])
        mbps = nbytes / MB / (times[0] / 1e6)
        assert 1200 < mbps < 1500  # ~1.4 GB/s device

    def test_small_random_reads_latency_bound(self):
        sim = Simulator()
        dev = NVMeDevice(sim)
        times = run_reads(dev, sim, [(i * 10 * MB, 4 * KB, BLOCKING)
                                     for i in range(4)])
        # Each ~latency-bound but overlapped via queue depth.
        assert max(times.values()) < 4 * dev.access_latency

    def test_write_uses_write_bandwidth(self):
        sim = Simulator()
        dev = NVMeDevice(sim)
        done = {}

        def submitter():
            ev = dev.write(0, 32 * MB, stream=1)
            ev.add_callback(lambda _e: done.setdefault("t", sim.now))
            yield ev

        sim.process(submitter())
        sim.run()
        mbps = 32 / (done["t"] / 1e6)
        assert 700 < mbps < 1000  # 0.9 GB/s device

    def test_bad_request_rejected(self):
        sim = Simulator()
        dev = NVMeDevice(sim)
        with pytest.raises(ValueError):
            dev.submit("read", 0, 0)
        with pytest.raises(ValueError):
            dev.submit("scribble", 0, 4096)

    def test_stream_tracking_and_forget(self):
        sim = Simulator()
        dev = NVMeDevice(sim)
        run_reads(dev, sim, [(0, 4 * KB, BLOCKING),
                             (4 * KB, 4 * KB, BLOCKING)])
        assert dev.stats.sequential_hits == 1
        dev.forget_stream(1)
        assert dev.stats.sequential_hits == 1


class TestPriorities:
    def test_blocking_dispatched_before_prefetch(self):
        sim = Simulator()
        # Single-slot device makes ordering observable.
        dev = StorageDevice(
            sim, name="tiny", queue_depth=1,
            read_bandwidth=100.0, write_bandwidth=100.0,
            access_latency=10.0, seq_latency=1.0)
        order = []

        def submitter():
            # Occupy the device, then queue prefetch before blocking.
            first = dev.read(0, 4 * KB, priority=BLOCKING, stream=1)
            pf = dev.read(10 * MB, 4 * KB, priority=PREFETCH, stream=2)
            bl = dev.read(20 * MB, 4 * KB, priority=BLOCKING, stream=3)
            pf.add_callback(lambda _e: order.append("prefetch"))
            bl.add_callback(lambda _e: order.append("blocking"))
            yield sim.all_of([first, pf, bl])

        sim.process(submitter())
        sim.run()
        assert order == ["blocking", "prefetch"]

    def test_prefetch_in_flight_cap(self):
        sim = Simulator()
        dev = NVMeDevice(sim)
        cap = dev.max_prefetch_in_flight
        for i in range(cap + 4):
            dev.read(i * 10 * MB, 4 * KB, priority=PREFETCH, stream=i)
        assert dev._in_flight_prefetch <= cap

    def test_stats_track_prefetch_separately(self):
        sim = Simulator()
        dev = NVMeDevice(sim)
        run_reads(dev, sim, [(0, 8 * KB, BLOCKING),
                             (5 * MB, 8 * KB, PREFETCH)])
        assert dev.stats.reads == 2
        assert dev.stats.prefetch_reads == 1
        assert dev.stats.prefetch_bytes == 8 * KB


class TestVariants:
    def test_remote_slower_than_local_for_small_reads(self):
        sim1, sim2 = Simulator(), Simulator()
        local = NVMeDevice(sim1)
        remote = RemoteNVMeDevice(sim2)
        t_local = run_reads(local, sim1, [(0, 4 * KB, BLOCKING)])
        t_remote = run_reads(remote, sim2, [(0, 4 * KB, BLOCKING)])
        assert t_remote[0] > t_local[0]

    def test_f2fs_profile_changes_write_cost(self):
        sim1, sim2 = Simulator(), Simulator()
        ext4_dev = NVMeDevice(sim1, fs=EXT4)
        f2fs_dev = NVMeDevice(sim2, fs=F2FS)
        assert f2fs_dev.write_bandwidth > ext4_dev.write_bandwidth
        assert f2fs_dev.access_latency < ext4_dev.access_latency

    def test_queue_depth_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            StorageDevice(sim, name="bad", queue_depth=0,
                          read_bandwidth=1, write_bandwidth=1,
                          access_latency=1, seq_latency=1)

    def test_params_defaults_match_paper_device(self):
        params = NVMeParams()
        assert params.read_bandwidth * 1e6 / MB == pytest.approx(1400)
        assert params.write_bandwidth * 1e6 / MB == pytest.approx(900)


class TestStatsAccounting:
    """busy_time is split into access / channel-wait / transfer so the
    overlappable parts can't masquerade as channel occupancy."""

    def test_busy_time_is_sum_of_components(self):
        sim = Simulator()
        dev = NVMeDevice(sim)
        run_reads(dev, sim, [(i * 10 * MB, 256 * KB, BLOCKING)
                             for i in range(6)])
        s = dev.stats
        assert s.busy_time == pytest.approx(
            s.access_time + s.channel_wait + s.transfer_time)
        assert s.transfer_time == pytest.approx(
            s.read_transfer_time + s.write_transfer_time)
        assert s.write_transfer_time == 0.0

    def test_utilization_bounded_under_overlap(self):
        """Queue-depth overlap means summed per-request service time
        exceeds the elapsed clock; per-direction transfer time must not."""
        sim = Simulator()
        dev = NVMeDevice(sim)
        run_reads(dev, sim, [(i * 10 * MB, 4 * KB, BLOCKING)
                             for i in range(16)])
        s = dev.stats
        # The old aggregate really does overlap (the double-count the
        # audit would have flagged as > 100% utilization)...
        assert s.busy_time > sim.now
        # ...while serialized channel occupancy stays within the clock.
        assert s.utilization(sim.now) <= 1.0

    def test_utilization_zero_elapsed(self):
        sim = Simulator()
        dev = NVMeDevice(sim)
        assert dev.stats.utilization(0.0) == 0.0
