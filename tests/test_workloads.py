"""Integration tests: every workload runs end-to-end under at least two
runtimes and reports sane metrics."""

import pytest

from repro.os.kernel import Kernel
from repro.runtimes import build_runtime
from repro.runtimes.factory import needs_cross
from repro.workloads.dbbench import DbBenchConfig, PATTERNS, run_dbbench
from repro.workloads.filebench import (
    FilebenchConfig,
    PERSONALITIES,
    run_filebench,
)
from repro.workloads.lsm import DbConfig
from repro.workloads.microbench import (
    MicrobenchConfig,
    SharedRwConfig,
    run_microbench,
    run_shared_rw,
)
from repro.workloads.mmapbench import MmapBenchConfig, run_mmapbench
from repro.workloads.snappy import SnappyConfig, run_snappy
from repro.workloads.ycsb import WORKLOADS, YcsbConfig, run_ycsb

KB = 1 << 10
MB = 1 << 20

SMALL_DB = DbConfig(num_keys=20_000, memtable_bytes=256 * KB,
                    sst_bytes=4 * MB)


def fresh(approach, memory=64 * MB):
    kernel = Kernel(memory_bytes=memory,
                    cross_enabled=needs_cross(approach))
    runtime = build_runtime(approach, kernel)
    return kernel, runtime


class TestMicrobench:
    @pytest.mark.parametrize("pattern", ["seq", "rand"])
    @pytest.mark.parametrize("sharing", ["private", "shared"])
    def test_all_cells_run(self, pattern, sharing):
        kernel, runtime = fresh("OSonly", memory=32 * MB)
        cfg = MicrobenchConfig(nthreads=2, total_bytes=16 * MB,
                               pattern=pattern, sharing=sharing)
        metrics = run_microbench(kernel, runtime, cfg)
        assert metrics.bytes_read == 16 * MB
        assert metrics.throughput_mbps > 0
        assert 0 <= metrics.miss_pct <= 100
        runtime.teardown()
        kernel.shutdown()

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            MicrobenchConfig(pattern="zigzag")
        with pytest.raises(ValueError):
            MicrobenchConfig(sharing="communal")

    def test_crossp_beats_apponly_on_rand(self):
        """The core Fig. 5 claim, at miniature scale."""
        results = {}
        for approach in ("APPonly", "CrossP[+predict+opt]"):
            kernel, runtime = fresh(approach, memory=24 * MB)
            cfg = MicrobenchConfig(nthreads=4, total_bytes=48 * MB,
                                   pattern="rand", sharing="shared")
            results[approach] = run_microbench(kernel, runtime, cfg)
            runtime.teardown()
            kernel.shutdown()
        assert results["CrossP[+predict+opt]"].throughput_mbps \
            > results["APPonly"].throughput_mbps

    def test_shared_rw_reports_write_throughput(self):
        kernel, runtime = fresh("OSonly", memory=32 * MB)
        cfg = SharedRwConfig(nreaders=2, nwriters=2,
                             file_bytes=16 * MB, ops_per_thread=128)
        metrics = run_shared_rw(kernel, runtime, cfg)
        assert metrics.bytes_written > 0
        assert metrics.extra["bytes_read"] > 0
        runtime.teardown()
        kernel.shutdown()


class TestDbBench:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_every_pattern_runs(self, pattern):
        kernel, runtime = fresh("OSonly")
        cfg = DbBenchConfig(pattern=pattern, nthreads=2,
                            ops_per_thread=20, scan_fraction=0.2,
                            db=SMALL_DB)
        metrics = run_dbbench(kernel, runtime, cfg)
        assert metrics.ops > 0
        assert metrics.kops > 0
        runtime.teardown()
        kernel.shutdown()

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            DbBenchConfig(pattern="readdiagonal")

    def test_crossp_wins_readreverse(self):
        """The headline 3.7x claim, at miniature scale."""
        results = {}
        for approach in ("OSonly", "CrossP[+predict+opt]"):
            kernel, runtime = fresh(approach, memory=128 * MB)
            cfg = DbBenchConfig(pattern="readreverse", nthreads=2,
                                scan_fraction=1.0, db=SMALL_DB)
            results[approach] = run_dbbench(kernel, runtime, cfg)
            runtime.teardown()
            kernel.shutdown()
        assert results["CrossP[+predict+opt]"].kops \
            > 1.5 * results["OSonly"].kops


class TestYcsb:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_every_workload_runs(self, workload):
        kernel, runtime = fresh("OSonly")
        cfg = YcsbConfig(workload=workload, nthreads=2,
                         ops_per_thread=30, db=SMALL_DB)
        metrics = run_ycsb(kernel, runtime, cfg)
        assert metrics.ops == 60
        runtime.teardown()
        kernel.shutdown()

    def test_workload_a_writes(self):
        kernel, runtime = fresh("OSonly")
        cfg = YcsbConfig(workload="A", nthreads=2, ops_per_thread=50,
                         db=SMALL_DB)
        metrics = run_ycsb(kernel, runtime, cfg)
        assert metrics.extra["puts"] > 0
        runtime.teardown()
        kernel.shutdown()

    def test_workload_e_scans(self):
        kernel, runtime = fresh("OSonly")
        cfg = YcsbConfig(workload="E", nthreads=2, ops_per_thread=30,
                         db=SMALL_DB)
        metrics = run_ycsb(kernel, runtime, cfg)
        assert metrics.extra["scans"] > 0
        runtime.teardown()
        kernel.shutdown()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            YcsbConfig(workload="Z")


class TestSnappy:
    def test_runs_and_reads_everything(self):
        kernel, runtime = fresh("OSonly", memory=32 * MB)
        cfg = SnappyConfig(nthreads=2, total_bytes=32 * MB,
                           file_bytes=4 * MB)
        metrics = run_snappy(kernel, runtime, cfg)
        assert metrics.bytes_read == 32 * MB
        assert metrics.ops == 8  # files
        runtime.teardown()
        kernel.shutdown()

    def test_compute_time_included(self):
        """Compression CPU must lengthen the run vs a pure-read bound."""
        kernel, runtime = fresh("OSonly", memory=64 * MB)
        cfg = SnappyConfig(nthreads=1, total_bytes=16 * MB,
                           file_bytes=4 * MB, compress_rate=50.0)
        metrics = run_snappy(kernel, runtime, cfg)
        # 16 MB at 50 MB/s of CPU alone is 0.32 s.
        assert metrics.duration_s >= 0.3
        runtime.teardown()
        kernel.shutdown()


class TestFilebench:
    @pytest.mark.parametrize("personality", PERSONALITIES)
    def test_every_personality_runs(self, personality):
        kernel = Kernel(memory_bytes=64 * MB, cross_enabled=False)
        cfg = FilebenchConfig(personality=personality, instances=2,
                              threads_per_instance=2,
                              bytes_per_instance=8 * MB)
        metrics = run_filebench(
            kernel, lambda: build_runtime("OSonly", kernel), cfg)
        assert metrics.bytes_read > 0
        kernel.shutdown()

    def test_instances_have_separate_runtimes(self):
        kernel = Kernel(memory_bytes=64 * MB, cross_enabled=True)
        built = []

        def factory():
            runtime = build_runtime("CrossP[+predict+opt]", kernel)
            built.append(runtime)
            return runtime

        cfg = FilebenchConfig(personality="seqread", instances=3,
                              threads_per_instance=1,
                              bytes_per_instance=4 * MB)
        run_filebench(kernel, factory, cfg)
        assert len(built) == 3
        kernel.shutdown()

    def test_bad_personality_rejected(self):
        with pytest.raises(ValueError):
            FilebenchConfig(personality="kafka")


class TestMmapBench:
    @pytest.mark.parametrize("pattern", ["readseq", "readrandom"])
    def test_patterns_run(self, pattern):
        kernel, runtime = fresh("OSonly", memory=64 * MB)
        cfg = MmapBenchConfig(pattern=pattern, nthreads=2,
                              bytes_per_thread=8 * MB)
        metrics = run_mmapbench(kernel, runtime, cfg)
        assert metrics.bytes_read == 16 * MB
        runtime.teardown()
        kernel.shutdown()

    def test_apponly_random_madvise_slow(self):
        """Table 4's APPonly collapse: madvise(RANDOM) faults per page."""
        results = {}
        for approach in ("APPonly", "OSonly"):
            kernel, runtime = fresh(approach, memory=64 * MB)
            cfg = MmapBenchConfig(pattern="readseq", nthreads=1,
                                  bytes_per_thread=8 * MB)
            results[approach] = run_mmapbench(kernel, runtime, cfg)
            runtime.teardown()
            kernel.shutdown()
        # APPonly used NORMAL hint here, so similar; the dedicated
        # experiment passes RANDOM; this just checks both paths work.
        assert results["APPonly"].throughput_mbps > 0

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            MmapBenchConfig(pattern="writeseq")
