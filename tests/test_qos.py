"""Tests for the per-tenant QoS subsystem.

Covers: token-bucket arithmetic (never overdrawn, deterministic lazy
refill), ``--tenants`` spec parsing, weighted-fair re-leasing on
degrade transitions, region-scoped fault isolation, secondary-path
re-routing with byte conservation, the global-clamp regression the
subsystem fixes, the fairness invariants the auditor enforces, and
bit-determinism per seed with tenants attached.
"""

import pytest

from repro.sim import Simulator
from repro.sim.audit import run_stress
from repro.sim.faults import (
    FabricSpec,
    FaultEngine,
    FaultSpec,
    TransientErrorSpec,
    make_preset,
)
from repro.sim.qos import (
    DEGRADED_RA_BLOCKS,
    QosManager,
    QosSpec,
    TenantSpec,
    TokenBucket,
)
from repro.storage import BLOCKING, PREFETCH, NVMeDevice

KB = 1 << 10
MB = 1 << 20


# -- token bucket -----------------------------------------------------------


class TestTokenBucket:
    def test_grant_never_overdraws(self):
        b = TokenBucket(rate=10.0, capacity=100.0, now=0.0)
        assert b.grant(60.0, 0.0) == 60.0
        assert b.grant(60.0, 0.0) == 40.0   # only what is left
        assert b.grant(60.0, 0.0) == 0.0    # empty, not negative
        assert b.tokens == 0.0

    def test_lazy_refill_is_pure_function_of_elapsed_time(self):
        a = TokenBucket(rate=2.0, capacity=1000.0, now=0.0)
        b = TokenBucket(rate=2.0, capacity=1000.0, now=0.0)
        a.grant(1000.0, 0.0)
        b.grant(1000.0, 0.0)
        # a refills in many small steps, b in one jump: same tokens.
        for t in range(1, 101):
            a.refill(float(t))
        b.refill(100.0)
        assert a.tokens == pytest.approx(b.tokens)
        assert a.tokens == pytest.approx(200.0)

    def test_refill_clamps_at_capacity(self):
        b = TokenBucket(rate=50.0, capacity=75.0, now=0.0)
        b.refill(1e9)
        assert b.tokens == 75.0

    def test_set_rate_refills_at_old_rate_first(self):
        b = TokenBucket(rate=4.0, capacity=1000.0, now=0.0)
        b.grant(1000.0, 0.0)
        b.set_rate(0.0, 10.0)       # 10 µs at the old rate = 40 tokens
        assert b.tokens == pytest.approx(40.0)
        b.refill(1000.0)            # rate is now zero: no growth
        assert b.tokens == pytest.approx(40.0)

    def test_bad_parameters_raise(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, capacity=10.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)


# -- spec parsing -----------------------------------------------------------


class TestQosSpecParse:
    def test_equal_weights(self):
        spec = QosSpec.parse("A,B")
        assert [t.name for t in spec.tenants] == ["A", "B"]
        assert all(t.weight == 1.0 for t in spec.tenants)
        assert spec.enabled

    def test_weights_and_slo(self):
        spec = QosSpec.parse("latency:1:2500,batch:3")
        lat, batch = spec.tenants
        assert (lat.name, lat.weight, lat.slo_us) == ("latency", 1.0,
                                                      2500.0)
        assert (batch.name, batch.weight, batch.slo_us) == ("batch",
                                                            3.0, None)

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            QosSpec.parse("A,A")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="no tenants"):
            QosSpec.parse(" , ")

    def test_too_many_fields_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            QosSpec.parse("A:1:2:3")

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            QosSpec.parse("A:0")

    def test_describe_round_trips_the_essentials(self):
        text = QosSpec.parse("A:2,B:1:5000").describe()
        assert "A:2" in text and "B:1:5000us" in text

    def test_empty_qosspec_is_disabled(self):
        assert not QosSpec().enabled


# -- fair-share re-leasing --------------------------------------------------


def _manager(spec_text="A,B", **kwargs):
    sim = Simulator()
    mgr = QosManager(sim, QosSpec.parse(spec_text, **kwargs))
    return sim, mgr


class TestRebalance:
    def test_static_split_matches_weights(self):
        _sim, mgr = _manager("A:3,B:1", prefetch_slots=8)
        total = mgr.spec.rate_bytes_per_us
        assert mgr.tenants["A"].bucket.rate == pytest.approx(total * 0.75)
        assert mgr.tenants["B"].bucket.rate == pytest.approx(total * 0.25)
        assert mgr.tenants["A"].slots == 6
        assert mgr.tenants["B"].slots == 2

    def test_paused_tenant_budget_re_leased(self):
        sim, mgr = _manager("A,B", prefetch_slots=8)
        mgr.register_stream(1, "A")
        mgr.register_stream(2, "B")
        # Hammer A's controller past the pause threshold: the
        # transition hook re-leases A's rate and slots to B.
        for _ in range(20):
            mgr.note_fault(1, sim.now)
        assert mgr.level_of(1, sim.now) == 2
        assert mgr.level_of(2, sim.now) == 0
        assert mgr.tenants["A"].bucket.rate == 0.0
        assert mgr.tenants["A"].slots == 0
        assert mgr.tenants["B"].bucket.rate == \
            pytest.approx(mgr.spec.rate_bytes_per_us)
        assert mgr.tenants["B"].slots == 8
        assert not mgr.can_dispatch(1, sim.now)
        assert mgr.can_dispatch(2, sim.now)

    def test_window_cap_only_for_degraded_tenant(self):
        sim, mgr = _manager()
        mgr.register_stream(1, "A")
        mgr.register_stream(2, "B")
        for _ in range(4):
            mgr.note_fault(1, sim.now)
        assert mgr.level_of(1, sim.now) >= 1
        assert mgr.window_cap(1, sim.now) == DEGRADED_RA_BLOCKS
        assert mgr.window_cap(2, sim.now) is None

    def test_unnamed_registration_round_robins(self):
        _sim, mgr = _manager("A,B")
        assert mgr.register_stream(10).name == "A"
        assert mgr.register_stream(11).name == "B"
        assert mgr.register_stream(12).name == "A"

    def test_unknown_tenant_rejected(self):
        _sim, mgr = _manager("A,B")
        with pytest.raises(KeyError, match="unknown tenant"):
            mgr.register_stream(1, "C")


class TestTrimRuns:
    def test_admission_conserves_blocks_and_tokens(self):
        sim, mgr = _manager("A", rate_mb_per_s=1.0, burst_us=1000.0)
        # Tiny bucket: capacity ~= 1048 bytes -> 2 full 512-byte blocks.
        state = mgr.register_stream(1, "A")
        runs = [(0, 1), (4, 3)]
        admitted = mgr.trim_runs(1, runs, 512, sim.now)
        taken = sum(n for _s, n in admitted)
        assert taken == 2
        assert admitted == [(0, 1), (4, 1)]   # boundary run cut
        assert state.admitted_blocks == 2
        assert state.trimmed_blocks == 2
        assert state.bucket.tokens >= 0.0
        # Nothing left: the next submission is fully trimmed.
        assert mgr.trim_runs(1, [(9, 4)], 512, sim.now) == []
        assert state.bucket.tokens >= 0.0


# -- region scoping ---------------------------------------------------------


class TestRegionScoping:
    def test_faults_only_hit_the_scoped_region(self):
        spec = FaultSpec(seed=3, region=0, errors=TransientErrorSpec(
            read_fail_prob=0.6, write_fail_prob=0.0))
        sim = Simulator()
        dev = NVMeDevice(sim)
        dev.set_fault_engine(FaultEngine(sim, spec))
        dev.place_stream(1, 0)
        dev.place_stream(2, 1)

        sim.process(_reads(dev, 1))
        sim.process(_reads(dev, 2))
        sim.run()
        assert dev.stats.read_failures > 0
        # Re-run with only the healthy-region stream: zero failures.
        sim2 = Simulator()
        dev2 = NVMeDevice(sim2)
        dev2.set_fault_engine(FaultEngine(sim2, spec))
        dev2.place_stream(2, 1)
        sim2.process(_reads(dev2, 2))
        sim2.run()
        assert dev2.stats.read_failures == 0

    def test_unplaced_streams_default_to_region_zero(self):
        sim = Simulator()
        dev = NVMeDevice(sim)
        assert dev.region_of(99) == 0

    def test_region_preset_plumbing(self):
        spec = make_preset("flaky", seed=1, region=2)
        assert spec.region == 2
        assert "region=2" in spec.describe()


def _reads(dev, stream, n=30):
    for i in range(n):
        yield dev.read(i * MB, 16 * KB, priority=BLOCKING,
                       stream=stream)


# -- secondary-path re-routing ----------------------------------------------


class TestReroute:
    def _fabric_device(self, *, qos=True):
        spec = FaultSpec(seed=5, fabric=FabricSpec(
            drop_prob=1.0, partition_gap_us=0.0,
            secondary_latency_mult=3.0))
        sim = Simulator()
        dev = NVMeDevice(sim)
        dev.set_fault_engine(FaultEngine(sim, spec))
        if qos:
            mgr = QosManager(sim, QosSpec.parse("A"))
            dev.set_qos(mgr)
            mgr.register_stream(1, "A")
        return sim, dev

    def test_fabric_fault_reroutes_to_secondary_path(self):
        sim, dev = self._fabric_device()
        done = []

        def submitter():
            yield dev.read(0, 64 * KB, priority=BLOCKING, stream=1)
            done.append(sim.now)

        sim.process(submitter())
        sim.run()
        assert done, "read never completed despite secondary path"
        assert dev.stats.reroutes == 1
        assert dev.qos.tenants["A"].reroutes == 1
        # The drop consumed one failed attempt; the secondary attempt
        # carried the payload.  Conservation: failed + ok == 2 attempts.
        assert dev.stats.read_bytes == 64 * KB
        assert dev.stats.failed_read_bytes == 64 * KB
        assert dev.stats.retried_read_bytes == 64 * KB

    def test_secondary_path_pays_the_latency_penalty(self):
        sim, dev = self._fabric_device()
        stamps = []

        def submitter():
            t0 = sim.now
            yield dev.read(0, 256 * KB, priority=BLOCKING, stream=1)
            stamps.append(sim.now - t0)

        sim.process(submitter())
        sim.run()
        healthy_sim = Simulator()
        healthy = NVMeDevice(healthy_sim)
        healthy_stamps = []

        def healthy_submitter():
            t0 = healthy_sim.now
            yield healthy.read(0, 256 * KB, priority=BLOCKING, stream=1)
            healthy_stamps.append(healthy_sim.now - t0)

        healthy_sim.process(healthy_submitter())
        healthy_sim.run()
        assert stamps[0] > healthy_stamps[0]

    def test_reroutes_not_in_fault_summary(self):
        # fault_summary()'s key set is a frozen API (test_faults pins
        # it); reroutes live in their own DeviceStats field.
        sim, dev = self._fabric_device()
        sim.process(_reads(dev, 1, n=1))
        sim.run()
        assert "reroutes" not in dev.stats.fault_summary()
        assert dev.stats.reroutes == 1

    def test_without_qos_fabric_faults_follow_the_retry_ladder(self):
        # No manager attached -> no secondary path; the retry ladder
        # still recovers from per-request drops on its own.
        spec = FaultSpec(seed=5, fabric=FabricSpec(
            drop_prob=0.5, partition_gap_us=1e12))
        sim = Simulator()
        dev = NVMeDevice(sim)
        dev.set_fault_engine(FaultEngine(sim, spec))
        sim.process(_reads(dev, 1, n=20))
        sim.run()
        assert dev.stats.reroutes == 0
        assert dev.stats.read_bytes == 20 * 16 * KB


# -- the global-clamp regression (the bug this subsystem fixes) -------------


class TestGlobalClampRegression:
    def test_faulted_tenant_does_not_clamp_its_neighbour(self):
        """One tenant's fault pressure must not degrade the other.

        Under the PR-4 global controller, stream 1's retry pressure
        withheld relaxed readahead from stream 2 too.  Per-tenant
        controllers keep stream 2 at level 0 (full windows, relaxed
        thresholds) no matter how hard tenant A is failing.
        """
        sim, mgr = _manager("A,B")
        mgr.register_stream(1, "A")
        mgr.register_stream(2, "B")
        for _ in range(50):
            mgr.note_fault(1, sim.now)
        assert mgr.level_of(1, sim.now) == 2          # A paused
        assert mgr.level_of(2, sim.now) == 0          # B untouched
        assert mgr.window_cap(2, sim.now) is None     # full window
        assert mgr.can_dispatch(2, sim.now)

    def test_fairness_experiment_isolates_the_co_tenant(self):
        """End to end: region fault + QoS keeps the co-tenant near its
        fault-free throughput; the global clamp visibly regresses it."""
        from repro.harness.experiments.fairness import run_fairness

        results, _report = run_fairness(
            seed=1, memory_bytes=24 * MB, oversubscription=1.5)
        ret = results["retention"]
        co = results["co_tenants"][0]
        assert ret["CrossP+QoS"][co] >= 90.0
        assert ret["CrossP global"][co] < ret["CrossP+QoS"][co]


# -- auditor invariants -----------------------------------------------------


class TestFairnessInvariants:
    def test_admission_conservation_under_stress(self):
        # run_stress raises AuditError if Σ admitted_blocks diverges
        # from cross.prefetch_blocks, a bucket goes negative, or any
        # tenant leaks in-flight slots.
        summary = run_stress(2, qos=QosSpec.parse("A,B"))
        qos = summary["qos"]
        assert set(qos) == {"A", "B"}
        assert all(t["inflight"] == 0 for t in qos.values())
        assert all(t["tokens"] >= 0.0 for t in qos.values())

    @pytest.mark.parametrize("seed", range(3))
    def test_chaos_with_tenants_stays_audit_green(self, seed):
        spec = make_preset("chaos", seed=seed, intensity=1.5)
        summary = run_stress(seed, faults=spec,
                             qos=QosSpec.parse("A:2,B:1"))
        assert summary["faults"]["faults_injected"] >= 0

    def test_region_scoped_chaos_audit_green(self):
        spec = make_preset("flaky", seed=4, intensity=2.0, region=0)
        run_stress(4, faults=spec, qos=QosSpec.parse("A,B"))


# -- determinism ------------------------------------------------------------


class TestDeterminismWithTenants:
    def test_same_seed_same_run_with_qos(self):
        r1 = run_stress(6, qos=QosSpec.parse("A:2,B:1"))
        r2 = run_stress(6, qos=QosSpec.parse("A:2,B:1"))
        assert r1 == r2

    def test_same_seed_same_run_with_qos_and_faults(self):
        kwargs = dict(faults=make_preset("flaky", seed=7,
                                         intensity=3.0, region=0),
                      qos=QosSpec.parse("A,B"))
        r1 = run_stress(7, **kwargs)
        r2 = run_stress(7, faults=make_preset("flaky", seed=7,
                                              intensity=3.0, region=0),
                        qos=QosSpec.parse("A,B"))
        assert r1 == r2

    def test_fairness_experiment_bit_deterministic(self):
        from repro.harness.experiments.fairness import run_fairness

        runs = [run_fairness(seed=3, memory_bytes=16 * MB,
                             oversubscription=1.5)
                for _ in range(2)]
        (res1, rep1), (res2, rep2) = runs
        assert rep1 == rep2
        assert res1["retention"] == res2["retention"]
        for label in res1["rows"]:
            m1, m2 = res1["rows"][label], res2["rows"][label]
            assert m1.latencies_us == m2.latencies_us
            assert m1.duration_us == m2.duration_us
