"""Property-based determinism: identical seeds give identical runs.

The whole repo's claim to faithfulness rests on the simulation being a
deterministic function of (config, seed): contention, prefetch timing,
and stats must not depend on wall clock, hash randomization, or dict
iteration order.  These tests run the same seeded microbenchmark twice
on fresh kernels and require byte-identical stats snapshots and span
streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.os.kernel import Kernel
from repro.runtimes.factory import build_runtime
from repro.sim.trace import Tracer
from repro.workloads.microbench import MicrobenchConfig, run_microbench

MB = 1 << 20


def _run_once(seed: int, pattern: str, approach: str):
    tracer = Tracer(capacity=200_000)
    kernel = Kernel(memory_bytes=24 * MB, cross_enabled=True,
                    tracer=tracer)
    runtime = build_runtime(approach, kernel)
    cfg = MicrobenchConfig(nthreads=2, total_bytes=2 * MB,
                           pattern=pattern, sharing="shared",
                           segment_bytes=128 * 1024, seed=seed)
    try:
        metrics = run_microbench(kernel, runtime, cfg)
    finally:
        runtime.teardown()
        kernel.shutdown()
    return (metrics.duration_us, kernel.registry.snapshot(),
            list(tracer.events()))


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       pattern=st.sampled_from(["seq", "rand"]))
def test_seeded_runs_are_identical(seed, pattern):
    first = _run_once(seed, pattern, "CrossP[+predict+opt]")
    second = _run_once(seed, pattern, "CrossP[+predict+opt]")
    assert first[0] == second[0], "durations diverged"
    assert first[1] == second[1], "stats snapshots diverged"
    # TraceEvent is a frozen dataclass with sorted attr tuples, so
    # equality here means the full span stream is bit-for-bit the same.
    assert first[2] == second[2], "span streams diverged"


def test_different_seeds_differ():
    # Sanity: the seed actually reaches the workload's RNG.
    a = _run_once(1, "rand", "CrossP[+predict+opt]")
    b = _run_once(2, "rand", "CrossP[+predict+opt]")
    assert a[2] != b[2]


def test_osonly_runs_are_identical():
    a = _run_once(7, "rand", "OSonly")
    b = _run_once(7, "rand", "OSonly")
    assert a[1] == b[1]
    assert a[2] == b[2]
