"""Durable-damage fault models: interval ledger, torn/wbdrop/crash
presets, crash snapshots, and audit-green stress for every preset."""

from __future__ import annotations

import pytest

from repro.os.kernel import Kernel
from repro.runtimes.factory import build_runtime
from repro.sim.audit import run_stress
from repro.sim.crash import FileRemnant, restore_into, take_snapshot
from repro.sim.faults import (
    PRESETS,
    CrashSpec,
    TornWriteSpec,
    crash_time_us,
    make_preset,
)
from repro.storage.durable import DurableState, IntervalSet

KB = 1 << 10
MB = 1 << 20


# -- IntervalSet --------------------------------------------------------------


def test_interval_add_and_merge():
    s = IntervalSet()
    s.add(0, 10)
    s.add(20, 30)
    assert s.runs() == [(0, 10), (20, 30)]
    s.add(10, 20)            # bridges the gap
    assert s.runs() == [(0, 30)]
    assert s.total() == 30


def test_interval_covers_and_prefix():
    s = IntervalSet()
    s.add(0, 100)
    s.add(200, 300)
    assert s.covers(0, 100)
    assert s.covers(250, 260)
    assert not s.covers(50, 150)
    assert s.covered_prefix(0, 150) == 100
    assert s.covered_prefix(150, 250) == 0
    assert s.covered_prefix(200, 400) == 100


def test_interval_gaps_and_intersect():
    s = IntervalSet()
    s.add(10, 20)
    s.add(40, 50)
    assert s.gaps(0, 60) == [(0, 10), (20, 40), (50, 60)]
    assert s.intersect(15, 45) == [(15, 20), (40, 45)]
    empty = IntervalSet()
    assert empty.gaps(0, 5) == [(0, 5)]
    assert empty.intersect(0, 5) == []


def test_file_remnant_invalid_blocks():
    persisted = IntervalSet()
    persisted.add(0, 4096)          # block 0 fine
    persisted.add(4096, 5000)       # block 1 torn
    remnant = FileRemnant(path="/f", size=4 * 4096, block_size=4096,
                          persisted=persisted)
    assert remnant.block_valid(0)
    assert not remnant.block_valid(1)
    assert remnant.invalid_blocks() == 3
    assert remnant.covered(0, 4096)
    assert not remnant.covered(0, 8192)
    assert remnant.covered_prefix(0, 8192) == 5000


# -- DurableState -------------------------------------------------------------


def test_flush_barrier_persists_and_acks():
    d = DurableState(seed=1)
    d.note_write(1, 0, 100)
    d.note_write(1, 100, 100)
    assert d.volatile_records == 2
    d.flush_stream(1)
    assert d.persisted[1].covers(0, 200)
    assert d.acked[1].covers(0, 200)
    assert d.verify_acked() == []


def test_unflushed_volatile_lost_without_torn_spec():
    d = DurableState(seed=1)
    d.seed_file(1, 1000)
    d.note_write(1, 1000, 500)     # never flushed
    resolved, res = d.resolve_crash()
    assert resolved[1].covers(0, 1000)       # seeded bytes survive
    assert not resolved[1].covers(1000, 1500)
    assert res["records_lost"] == 1
    assert d.verify_acked(resolved) == []    # nothing was acked


def test_resolve_crash_is_deterministic():
    def make():
        d = DurableState(seed=9, torn=TornWriteSpec())
        for i in range(50):
            d.note_write(1, i * 100, 100)
        return d

    a = make().resolve_crash()
    b = make().resolve_crash()
    assert a[1] == b[1]
    assert a[0][1].runs() == b[0][1].runs()


def test_verify_acked_reports_lost_acked_bytes():
    d = DurableState(seed=1)
    d.note_write(1, 0, 100)
    d.flush_stream(1)
    d.persisted[1] = IntervalSet()           # simulate ledger damage
    problems = d.verify_acked()
    assert problems and "stream 1" in problems[0]


# -- presets ------------------------------------------------------------------


def test_new_presets_registered():
    for name in ("torn", "wbdrop", "crash"):
        assert name in PRESETS
        spec = make_preset(name, seed=3)
        assert spec.enabled
        assert spec.durable


def test_existing_presets_have_no_durable_models():
    for name in ("storm", "flaky", "degraded", "stall", "fabric",
                 "chaos"):
        spec = make_preset(name, seed=3)
        assert not spec.durable


def test_crash_preset_composition():
    spec = make_preset("crash", seed=3)
    assert spec.torn is not None
    assert spec.wbdrop is not None
    assert spec.crash is not None
    assert "torn" in spec.describe()


def test_crash_time_deterministic_and_bounded():
    spec = make_preset("crash", seed=7)
    t1 = crash_time_us(spec)
    t2 = crash_time_us(spec)
    assert t1 == t2
    assert t1 >= CrashSpec().min_crash_us


# -- kernel wiring ------------------------------------------------------------


def test_kernel_attaches_ledger_only_for_durable_specs():
    k1 = Kernel(memory_bytes=32 * MB, faults=make_preset("crash", seed=2))
    assert k1.durable is not None
    assert k1.device.durable is k1.durable
    k2 = Kernel(memory_bytes=32 * MB, faults=make_preset("storm", seed=2))
    assert k2.durable is None
    k3 = Kernel(memory_bytes=32 * MB)
    assert k3.durable is None


def test_fsync_acks_written_bytes_across_crash():
    kernel = Kernel(memory_bytes=32 * MB,
                    faults=make_preset("crash", seed=5))
    runtime = build_runtime("OSonly", kernel)
    kernel.create_file("/x", 0)

    def writer():
        handle = yield from runtime.open("/x", "seq")
        yield from runtime.write_seq(handle, 64 * KB)
        yield from runtime.fsync(handle)
        yield from runtime.write_seq(handle, 64 * KB)  # left volatile

    kernel.sim.process(writer(), name="w")
    kernel.sim.run()
    snapshot = take_snapshot(kernel)          # must not raise
    remnant = snapshot.files["/x"]
    assert remnant.covered(0, 64 * KB)        # fsync'd prefix survived
    assert remnant.size == 128 * KB


def test_take_snapshot_requires_ledger():
    kernel = Kernel(memory_bytes=32 * MB)
    with pytest.raises(ValueError):
        take_snapshot(kernel)


def test_restore_rebuilds_namespace_cold():
    kernel = Kernel(memory_bytes=32 * MB,
                    faults=make_preset("crash", seed=5))
    kernel.create_file("/a", 8 * KB)
    kernel.create_file("/b", 16 * KB)
    snapshot = take_snapshot(kernel)
    fresh = Kernel(memory_bytes=32 * MB)
    restore_into(fresh, snapshot)
    assert fresh.vfs.lookup("/a").size == 8 * KB
    assert fresh.vfs.lookup("/b").size == 16 * KB


# -- stress: every fault class audit-green ------------------------------------


@pytest.mark.parametrize("preset", [p for p in PRESETS if p != "none"])
def test_stress_audit_green_per_preset(preset):
    spec = make_preset(preset, seed=5)
    summary = run_stress(5, faults=spec, steps=20)
    assert summary["seed"] == 5
    if preset in ("torn", "wbdrop", "crash"):
        if "crash" in summary:
            assert summary["crash"]["time_us"] > 0.0
            assert "durable" in summary
        else:
            assert "durable" in summary


@pytest.mark.parametrize("preset", ["torn", "wbdrop", "crash"])
def test_stress_durable_presets_deterministic(preset):
    spec = make_preset(preset, seed=6)
    a = run_stress(6, faults=make_preset(preset, seed=6), steps=20)
    b = run_stress(6, faults=spec, steps=20)
    assert a == b
