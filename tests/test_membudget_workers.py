"""Unit tests for the memory budget and the prefetch worker pool."""

import pytest

from repro.crosslib.config import CrossLibConfig
from repro.crosslib.membudget import (
    MODE_AGGRESSIVE,
    MODE_NORMAL,
    MODE_OFF,
)
from repro.crosslib.runtime import CrossLibRuntime
from repro.crosslib.workers import PrefetchRequest
from repro.runtimes.base import HINT_RANDOM
from tests.conftest import drive

KB = 1 << 10
MB = 1 << 20


@pytest.fixture
def runtime(kernel):
    rt = CrossLibRuntime(kernel)
    yield rt
    rt.teardown()


class TestModes:
    def test_mode_thresholds(self, runtime):
        budget = runtime.budget
        budget.update(free_pages=90, total_pages=100)
        assert budget.mode == MODE_AGGRESSIVE
        budget.update(free_pages=15, total_pages=100)
        assert budget.mode == MODE_NORMAL
        budget.update(free_pages=2, total_pages=100)
        assert budget.mode == MODE_OFF
        assert not budget.allow_prefetch

    def test_non_aggressive_config_is_always_normal(self, kernel):
        cfg = CrossLibConfig(aggressive=False)
        rt = CrossLibRuntime(kernel, cfg)
        rt.budget.update(free_pages=1, total_pages=100)
        assert rt.budget.mode == MODE_NORMAL
        assert rt.budget.allow_prefetch
        rt.teardown()

    def test_fetchall_is_memory_insensitive(self, kernel):
        cfg = CrossLibConfig(fetchall=True, aggressive=False,
                             predict=False)
        rt = CrossLibRuntime(kernel, cfg)
        rt.budget.update(free_pages=0, total_pages=100)
        assert rt.budget.allow_prefetch
        rt.teardown()

    def test_pressure_latches_bulk_off(self, runtime):
        budget = runtime.budget
        budget.update(free_pages=90, total_pages=100)
        assert budget.allow_bulk
        budget.saw_pressure = True
        assert not budget.allow_bulk
        assert budget.allow_aggressive  # open-time prefetch still OK


class TestEvictor:
    def test_no_eviction_above_watermark(self, runtime):
        budget = runtime.budget
        budget.update(free_pages=90, total_pages=100)

        def body():
            freed = yield from budget.maybe_evict()
            return freed

        assert drive(runtime.kernel, body()) == 0

    def test_evicts_oldest_inactive_file(self, kernel):
        rt = CrossLibRuntime(kernel)
        rt.config.inactive_file_us = 100.0
        kernel.create_file("/old", 4 * MB)
        kernel.create_file("/new", 4 * MB)

        def body():
            h_old = yield from rt.open("/old", HINT_RANDOM)
            yield from rt.pread(h_old, 0, 2 * MB)
            yield from rt.close(h_old)
            yield kernel.sim.timeout(10_000)
            h_new = yield from rt.open("/new", HINT_RANDOM)
            yield from rt.pread(h_new, 0, 2 * MB)
            rt.budget.update(free_pages=1, total_pages=100)
            freed = yield from rt.budget.maybe_evict()
            return freed

        freed = drive(kernel, body())
        assert freed > 0
        assert kernel.vfs.lookup("/old").cache.cached_pages == 0
        assert kernel.vfs.lookup("/new").cache.cached_pages > 0
        rt.teardown()


class TestWorkers:
    def test_request_served_and_marks_cleared(self, kernel):
        rt = CrossLibRuntime(kernel, CrossLibConfig(aggressive=False))
        kernel.create_file("/a", 4 * MB)

        def body():
            handle = yield from rt.open("/a", HINT_RANDOM)
            state = handle.ufd.state
            state.tree.mark_requested(0, 64)
            rt.workers.submit(PrefetchRequest(state, 0, 64))
            yield kernel.sim.timeout(1e6)
            return state

        state = drive(kernel, body())
        assert rt.workers.requests_served == 1
        assert state.tree.missing_runs(0, 64) == []  # now cached
        assert kernel.vfs.lookup("/a").cache.cached_pages >= 64
        rt.teardown()

    def test_requests_dropped_when_budget_off(self, kernel):
        rt = CrossLibRuntime(kernel)
        kernel.create_file("/a", 4 * MB)

        def body():
            handle = yield from rt.open("/a", HINT_RANDOM)
            state = handle.ufd.state
            rt.budget.update(free_pages=0, total_pages=100)
            state.tree.mark_requested(128, 64)
            rt.workers.submit(PrefetchRequest(state, 128, 64))
            yield kernel.sim.timeout(1e6)
            return state

        state = drive(kernel, body())
        assert kernel.registry.get("cross.dropped_requests") >= 1
        # Dedup marks were released so a later pass can retry.
        assert state.tree.missing_runs(128, 64) == [(128, 64)]
        rt.teardown()

    def test_backlog_visible(self, kernel):
        rt = CrossLibRuntime(kernel, CrossLibConfig(nr_workers=1,
                                                    aggressive=False))
        kernel.create_file("/a", 8 * MB)

        def body():
            handle = yield from rt.open("/a", HINT_RANDOM)
            state = handle.ufd.state
            for i in range(6):
                rt.workers.submit(PrefetchRequest(state, i * 256, 256))
            return rt.workers.backlog

        backlog = drive(kernel, body())
        assert backlog >= 0  # drained by the time the run finishes
        assert rt.workers.requests_served == 6
        rt.teardown()
