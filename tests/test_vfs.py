"""Tests for the VFS: reads, writes, prefetch syscalls, writeback."""

import pytest

from repro.os.vfs import (
    FADV_DONTNEED,
    FADV_RANDOM,
    FADV_SEQUENTIAL,
    FADV_WILLNEED,
)
from tests.conftest import drive

KB = 1 << 10
MB = 1 << 20


class TestNamespace:
    def test_create_lookup_unlink(self, kernel):
        kernel.create_file("/a", 1 * MB)
        assert kernel.vfs.exists("/a")
        assert kernel.vfs.lookup("/a").size == 1 * MB
        kernel.vfs.unlink("/a")
        assert not kernel.vfs.exists("/a")
        with pytest.raises(FileNotFoundError):
            kernel.vfs.lookup("/a")

    def test_duplicate_create_rejected(self, kernel):
        kernel.create_file("/a", 1 * MB)
        with pytest.raises(FileExistsError):
            kernel.create_file("/a", 1 * MB)

    def test_unlink_missing_rejected(self, kernel):
        with pytest.raises(FileNotFoundError):
            kernel.vfs.unlink("/nope")

    def test_unlink_releases_memory(self, kernel):
        kernel.create_file("/a", 4 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.read(f, 0, 4 * MB)

        drive(kernel, body())
        assert kernel.mem.used_pages > 0
        kernel.vfs.unlink("/a")
        assert kernel.mem.used_pages == 0

    def test_paths_sorted(self, kernel):
        kernel.create_file("/b", 1 * MB)
        kernel.create_file("/a", 1 * MB)
        assert kernel.vfs.paths() == ["/a", "/b"]

    def test_open_and_close(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = yield from kernel.vfs.open("/a")
            yield from kernel.vfs.close(f)
            return f

        f = drive(kernel, body())
        assert f.closed
        assert kernel.registry.get("syscalls.open") == 1
        assert kernel.registry.get("syscalls.close") == 1


class TestRead:
    def test_cold_read_misses_then_hits(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            first = yield from kernel.vfs.read(f, 0, 64 * KB)
            second = yield from kernel.vfs.read(f, 0, 64 * KB)
            return first, second

        first, second = drive(kernel, body())
        assert first.miss_pages == 16
        assert first.hit_pages == 0
        assert second.hit_pages == 16
        assert second.miss_pages == 0

    def test_read_clamped_to_eof(self, kernel):
        kernel.create_file("/a", 10 * KB)

        def body():
            f = kernel.vfs.open_sync("/a")
            r = yield from kernel.vfs.read(f, 8 * KB, 64 * KB)
            return r

        r = drive(kernel, body())
        assert r.nbytes == 2 * KB

    def test_read_past_eof_returns_zero(self, kernel):
        kernel.create_file("/a", 4 * KB)

        def body():
            f = kernel.vfs.open_sync("/a")
            r = yield from kernel.vfs.read(f, 1 * MB, 4 * KB)
            return r

        r = drive(kernel, body())
        assert r.nbytes == 0

    def test_sequential_stream_triggers_readahead(self, kernel):
        kernel.create_file("/a", 8 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            while f.pos < 8 * MB:
                yield from kernel.vfs.read_seq(f, 64 * KB)

        drive(kernel, body())
        assert kernel.registry.get("fill.os_ra_sync") >= 1
        assert kernel.registry.get("fill.os_ra_async") >= 1
        # Most of the stream was prefetched: miss rate tiny.
        hits = kernel.registry.get("cache.demand_hits")
        misses = kernel.registry.get("cache.demand_misses")
        assert misses / (hits + misses) < 0.05

    def test_concurrent_readers_deduplicate_device_io(self, kernel):
        kernel.create_file("/a", 2 * MB)

        def reader():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.fadvise(f, FADV_RANDOM)
            yield from kernel.vfs.read(f, 0, 2 * MB)

        kernel.sim.process(reader())
        kernel.sim.process(reader())
        kernel.run()
        assert kernel.device.stats.read_bytes == 2 * MB  # no duplicates


class TestWrite:
    def test_write_dirties_cache(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            n = yield from kernel.vfs.write(f, 0, 128 * KB)
            return n

        n = drive(kernel, body())
        inode = kernel.vfs.lookup("/a")
        assert n == 128 * KB
        assert inode.cache.dirty_pages == 32

    def test_write_extends_file(self, kernel):
        kernel.create_file("/a", 0)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.write(f, 0, 256 * KB)

        drive(kernel, body())
        assert kernel.vfs.lookup("/a").size == 256 * KB

    def test_fsync_flushes_dirty_pages(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.write(f, 0, 512 * KB)
            yield from kernel.vfs.fsync(f)

        drive(kernel, body())
        inode = kernel.vfs.lookup("/a")
        assert inode.cache.dirty_pages == 0
        assert kernel.device.stats.write_bytes >= 512 * KB

    def test_background_flusher_kicks_in(self, kernel):
        threshold = kernel.config.writeback_dirty_pages
        nbytes = (threshold + 64) * kernel.config.page_size
        kernel.create_file("/a", nbytes)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.write(f, 0, nbytes)
            # Give the flusher time to run.
            yield kernel.sim.timeout(10 * kernel.config.writeback_interval)

        drive(kernel, body())
        assert kernel.registry.get("writeback.pages") > 0


class TestPrefetchSyscalls:
    def test_readahead_clamped_to_cap(self, kernel):
        """The Fig. 1 pathology: ask 4 MB, get 128 KB."""
        kernel.create_file("/a", 8 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            submitted = yield from kernel.vfs.readahead(f, 0, 4 * MB)
            yield kernel.sim.timeout(50_000)
            return submitted

        submitted = drive(kernel, body())
        assert submitted == kernel.config.ra_syscall_cap_blocks
        inode = kernel.vfs.lookup("/a")
        assert inode.cache.cached_pages == submitted

    def test_fadvise_willneed_prefetches_async(self, kernel):
        kernel.create_file("/a", 8 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.fadvise(f, FADV_WILLNEED, 0, 1 * MB)
            yield kernel.sim.timeout(50_000)

        drive(kernel, body())
        inode = kernel.vfs.lookup("/a")
        assert inode.cache.cached_pages > 0

    def test_fadvise_dontneed_evicts(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.read(f, 0, 1 * MB)
            yield from kernel.vfs.fadvise(f, FADV_DONTNEED, 0, 1 * MB)

        drive(kernel, body())
        assert kernel.vfs.lookup("/a").cache.cached_pages == 0

    def test_fadvise_sequential_and_random_flip_ra(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.fadvise(f, FADV_SEQUENTIAL)
            hint = f.ra.sequential_hint
            yield from kernel.vfs.fadvise(f, FADV_RANDOM)
            return hint, f.ra.enabled

        hint, enabled = drive(kernel, body())
        assert hint is True
        assert enabled is False

    def test_fadvise_unknown_rejected(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            with pytest.raises(ValueError):
                yield from kernel.vfs.fadvise(f, "bogus")

        drive(kernel, body())


class TestFincore:
    def test_fincore_reports_residency(self, kernel):
        kernel.create_file("/a", 2 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.fadvise(f, FADV_RANDOM)  # no stock ra
            yield from kernel.vfs.read(f, 0, 512 * KB)
            snapshot = yield from kernel.vfs.fincore(f)
            return snapshot

        snapshot = drive(kernel, body())
        assert snapshot.count_set() == 128
        assert snapshot.test(0)
        assert not snapshot.test(200)

    def test_fincore_serializes_on_mm_lock(self, kernel):
        kernel.create_file("/a", 8 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.read(f, 0, 8 * MB)

        drive(kernel, body())

        def caller():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.fincore(f)

        kernel.sim.process(caller())
        kernel.sim.process(caller())
        kernel.run()
        assert kernel.registry.lock_stats("mm").contended >= 1
