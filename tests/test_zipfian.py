"""Tests for the Zipfian generators."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.zipfian import (
    ScrambledZipfian,
    ZipfianGenerator,
    fnv1a_64,
)


class TestZipfian:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)

    def test_values_in_range(self):
        gen = ZipfianGenerator(1000, rng=random.Random(1))
        for _ in range(2000):
            assert 0 <= gen() < 1000

    def test_skew_favours_low_ranks(self):
        gen = ZipfianGenerator(10_000, rng=random.Random(2))
        counts = Counter(gen() for _ in range(20_000))
        top = sum(counts[rank] for rank in range(10))
        # Zipf(0.99): the top-10 ranks get a large share.
        assert top / 20_000 > 0.15
        assert counts.most_common(1)[0][0] == 0

    def test_higher_theta_is_more_skewed(self):
        lo = ZipfianGenerator(1000, theta=0.5, rng=random.Random(3))
        hi = ZipfianGenerator(1000, theta=0.99, rng=random.Random(3))
        lo_top = sum(1 for _ in range(5000) if lo() == 0)
        hi_top = sum(1 for _ in range(5000) if hi() == 0)
        assert hi_top > lo_top

    def test_deterministic_with_seed(self):
        a = ZipfianGenerator(1000, rng=random.Random(7))
        b = ZipfianGenerator(1000, rng=random.Random(7))
        assert [a() for _ in range(100)] == [b() for _ in range(100)]

    def test_large_nitems_constructs_fast(self):
        gen = ZipfianGenerator(40_000_000, rng=random.Random(4))
        assert 0 <= gen() < 40_000_000


class TestScrambled:
    def test_spreads_hot_keys(self):
        gen = ScrambledZipfian(100_000, rng=random.Random(5))
        samples = [gen() for _ in range(5000)]
        hottest = Counter(samples).most_common(1)[0][0]
        # Scrambling moves rank 0 away from key 0 (with overwhelming
        # probability for this hash).
        assert hottest != 0
        assert all(0 <= s < 100_000 for s in samples)

    def test_fnv_is_stable(self):
        assert fnv1a_64(0) == fnv1a_64(0)
        assert fnv1a_64(1) != fnv1a_64(2)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 10_000), st.integers(0, 2**32 - 1))
def test_property_always_in_range(nitems, seed):
    gen = ScrambledZipfian(nitems, rng=random.Random(seed))
    for _ in range(50):
        assert 0 <= gen() < nitems
