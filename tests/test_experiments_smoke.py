"""Smoke tests: every experiment function runs at miniature scale and
produces a printable report with the expected rows/columns.

(The full-size shape assertions live in benchmarks/.)
"""

from repro.harness.experiments import (
    run_fig2_motivation,
    run_fig5_microbench,
    run_fig6_shared_rw,
    run_fig7a_threads,
    run_fig7b_patterns,
    run_fig7c_memory,
    run_fig8b_filebench,
    run_fig9a_ycsb,
    run_fig9b_snappy,
    run_fig10_prefetch_limit,
    run_tab4_mmap,
    run_tab5_breakdown,
)

MB = 1 << 20

TWO = ("APPonly", "CrossP[+predict+opt]")


def test_fig2_smoke():
    results, report = run_fig2_motivation(nthreads=2, ops_per_thread=20,
                                          num_keys=20_000)
    assert "Fig. 2" in report
    assert set(results) == {"APPonly", "APPonly[fincore]", "OSonly",
                            "CrossP[+predict+opt]"}


def test_fig5_smoke():
    results, report = run_fig5_microbench(
        nthreads=2, memory_bytes=16 * MB, cells=("shared-rand",),
        approaches=TWO)
    assert "Fig. 5" in report and "Table 3" in report
    assert set(results) == {"shared-rand"}


def test_fig6_smoke():
    results, report = run_fig6_shared_rw(
        reader_counts=(2,), file_bytes=16 * MB, memory_bytes=16 * MB,
        ops_per_thread=64, approaches=TWO)
    assert "Fig. 6" in report
    assert "2" in results


def test_tab4_smoke():
    results, report = run_tab4_mmap(nthreads=2,
                                    bytes_per_thread=4 * MB,
                                    memory_bytes=32 * MB)
    assert "Table 4" in report
    assert set(results) == {"readseq", "readrandom"}


def test_fig7a_smoke():
    results, report = run_fig7a_threads(thread_counts=(2,),
                                        ops_per_thread=20,
                                        num_keys=20_000,
                                        memory_bytes=48 * MB,
                                        approaches=TWO)
    assert "Fig. 7a" in report


def test_fig7b_smoke():
    results, report = run_fig7b_patterns(nthreads=2, num_keys=10_000,
                                         memory_bytes=48 * MB,
                                         approaches=TWO)
    assert "Fig. 7b" in report
    assert set(results) == {"readseq", "readreverse", "readrandom",
                            "multireadrandom", "readwhilescanning"}


def test_fig7c_smoke():
    results, report = run_fig7c_memory(ratios=("1:2",), nthreads=2,
                                       ops_per_thread=20,
                                       num_keys=20_000,
                                       approaches=TWO)
    assert "Fig. 7c" in report


def test_tab5_smoke():
    results, report = run_tab5_breakdown(nthreads=2, ops_per_thread=20,
                                         num_keys=20_000,
                                         memory_bytes=48 * MB)
    assert "Table 5" in report
    assert len(results) == 5


def test_fig10_smoke():
    results, report = run_fig10_prefetch_limit(
        limits_kb=(128,), nthreads=2, ops_per_thread=20,
        num_keys=20_000, memory_bytes=48 * MB)
    assert "Fig. 10" in report


def test_fig8b_smoke():
    results, report = run_fig8b_filebench(
        instances=2, threads_per_instance=1,
        bytes_per_instance=4 * MB, memory_bytes=32 * MB,
        personalities=("seqread",), approaches=TWO)
    assert "Fig. 8b" in report


def test_fig9a_smoke():
    results, report = run_fig9a_ycsb(workloads=("C",), nthreads=2,
                                     ops_per_thread=20,
                                     num_keys=20_000,
                                     memory_bytes=48 * MB,
                                     approaches=TWO)
    assert "Fig. 9a" in report


def test_fig9b_smoke():
    results, report = run_fig9b_snappy(ratios=("1:1",), nthreads=2,
                                       total_bytes=32 * MB,
                                       approaches=TWO)
    assert "Fig. 9b" in report
