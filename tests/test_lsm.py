"""Tests for the LSM store: SSTables, memtable, db operations."""

import pytest

from repro.os.kernel import Kernel
from repro.runtimes import OsOnlyRuntime
from repro.runtimes.base import HINT_RANDOM, HINT_SEQUENTIAL
from repro.workloads.lsm import DbConfig, LsmDb, Memtable, SSTable
from repro.workloads.lsm.db import FlushedSSTable
from tests.conftest import drive

KB = 1 << 10
MB = 1 << 20


class TestSSTable:
    def make(self, lo=0, hi=8192, value_size=1024):
        return SSTable(path="/t", level=1, key_lo=lo, key_hi=hi,
                       value_size=value_size, block_size=4096)

    def test_geometry(self):
        sst = self.make()
        assert sst.keys_per_block == 4
        assert sst.num_data_blocks == 2048
        assert sst.file_bytes == sst.data_start \
            + sst.num_data_blocks * 4096
        assert sst.data_start % 4096 == 0

    def test_key_lookup_offsets(self):
        sst = self.make()
        assert sst.contains(0)
        assert sst.contains(8191)
        assert not sst.contains(8192)
        assert sst.data_offset(0) == sst.data_start
        assert sst.data_offset(4) == sst.data_start + 4096
        assert sst.index_offset(0) == 0

    def test_key_out_of_range_raises(self):
        sst = self.make()
        with pytest.raises(KeyError):
            sst.data_block_of(9999)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            SSTable(path="/t", level=1, key_lo=5, key_hi=5,
                    value_size=1024, block_size=4096)

    def test_bad_value_size_rejected(self):
        with pytest.raises(ValueError):
            SSTable(path="/t", level=1, key_lo=0, key_hi=10,
                    value_size=8192, block_size=4096)

    def test_key_at_offset_inverts_block_of(self):
        sst = self.make(lo=100, hi=1000)
        for key in (100, 150, 999):
            block = sst.data_block_of(key)
            first = sst.key_at_offset(block)
            assert first <= key < first + sst.keys_per_block


class TestFlushedSSTable:
    def test_sparse_lookup(self):
        sst = FlushedSSTable(path="/t", keys=[5, 100, 7000],
                             value_size=1024, block_size=4096)
        assert sst.contains(100)
        assert not sst.contains(50)
        assert sst.num_keys == 3
        assert sst.data_block_of(5) == 0
        assert sst.data_block_of(7000) == 0  # all 3 fit one block

    def test_missing_key_raises(self):
        sst = FlushedSSTable(path="/t", keys=[1, 2], value_size=1024,
                             block_size=4096)
        with pytest.raises(KeyError):
            sst.data_block_of(3)


class TestMemtable:
    def test_put_get_and_full(self):
        mt = Memtable(value_size=1024, flush_bytes=4096)
        assert not mt.full
        for key in (3, 1, 2, 4):
            mt.put(key, key * 10)
        assert mt.full
        assert mt.get(3) == 30
        assert mt.get(99) is None
        assert mt.sorted_keys() == [1, 2, 3, 4]
        assert mt.key_range() == (1, 5)

    def test_empty_key_range_raises(self):
        mt = Memtable(1024, 4096)
        with pytest.raises(ValueError):
            mt.key_range()

    def test_bad_flush_bytes(self):
        with pytest.raises(ValueError):
            Memtable(1024, 0)


@pytest.fixture
def db():
    kernel = Kernel(memory_bytes=128 * MB, cross_enabled=False)
    runtime = OsOnlyRuntime(kernel)
    database = LsmDb(kernel, runtime,
                     DbConfig(num_keys=50_000, memtable_bytes=256 * KB))
    database.populate()
    yield kernel, database
    kernel.shutdown()


class TestDb:
    def test_populate_covers_keyspace(self, db):
        kernel, database = db
        assert database.l1[0].key_lo == 0
        assert database.l1[-1].key_hi == 50_000
        for a, b in zip(database.l1, database.l1[1:]):
            assert a.key_hi == b.key_lo
        # Files actually exist in the VFS.
        for sst in database.l1:
            assert kernel.vfs.exists(sst.path)

    def test_get_reads_index_and_data(self, db):
        kernel, database = db

        def body():
            ctx = database.new_thread(HINT_RANDOM)
            found = yield from database.get(ctx, 12_345)
            return found, ctx.sst_reads

        found, sst_reads = drive(kernel, body())
        assert found is True
        assert sst_reads == 1
        assert kernel.registry.get("syscalls.read") == 2  # index + data

    def test_get_missing_key(self, db):
        kernel, database = db

        def body():
            ctx = database.new_thread(HINT_RANDOM)
            found = yield from database.get(ctx, 10**9)
            return found

        assert drive(kernel, body()) is False

    def test_multiget_sorts_batch(self, db):
        kernel, database = db

        def body():
            ctx = database.new_thread(HINT_RANDOM)
            found = yield from database.multiget(ctx, [40_000, 5, 20_000])
            return found

        assert drive(kernel, body()) == 3

    def test_scan_forward_and_reverse(self, db):
        kernel, database = db

        def body():
            ctx = database.new_thread(HINT_SEQUENTIAL)
            fwd = yield from database.scan(ctx, 0, 1000)
            rev = yield from database.scan(ctx, 2000, 1000, reverse=True)
            return fwd, rev

        fwd, rev = drive(kernel, body())
        assert fwd >= 1000
        assert rev >= 1000

    def test_put_appends_wal_and_buffers(self, db):
        kernel, database = db

        def body():
            ctx = database.new_thread(HINT_RANDOM)
            for key in range(50):
                yield from database.put(ctx, key)

        drive(kernel, body())
        assert 50 in [len(database.memtable)] or len(database.memtable) <= 50
        assert kernel.registry.get("syscalls.write") >= 50
        assert database.stats["puts"] == 50

    def test_memtable_read_after_write(self, db):
        kernel, database = db

        def body():
            ctx = database.new_thread(HINT_RANDOM)
            yield from database.put(ctx, 123)
            reads_before = kernel.registry.get("syscalls.read")
            found = yield from database.get(ctx, 123)
            reads_after = kernel.registry.get("syscalls.read")
            return found, reads_before, reads_after

        found, before, after = drive(kernel, body())
        assert found
        assert after == before  # served from memtable, no I/O
        assert database.stats["memtable_hits"] == 1

    def test_flush_creates_l0_table(self, db):
        kernel, database = db
        per_flush = database.config.memtable_bytes \
            // database.config.value_size

        def body():
            ctx = database.new_thread(HINT_RANDOM)
            for key in range(per_flush + 10):
                yield from database.put(ctx, 100_000 + key)
            yield kernel.sim.timeout(2e6)

        drive(kernel, body())
        assert database.stats["flushes"] >= 1
        assert len(database.l0) >= 1 or database.stats["compactions"] >= 1

    def test_compaction_merges_l0_into_l1(self, db):
        kernel, database = db
        per_flush = database.config.memtable_bytes \
            // database.config.value_size
        trigger = database.config.l0_compaction_trigger

        def body():
            ctx = database.new_thread(HINT_RANDOM)
            for key in range((trigger + 1) * (per_flush + 1)):
                yield from database.put(ctx, key % 10_000)
            yield kernel.sim.timeout(20e6)

        drive(kernel, body())
        assert database.stats["compactions"] >= 1
        assert len(database.l0) < trigger
        # l1 remains sorted and non-overlapping
        for a, b in zip(database.l1, database.l1[1:]):
            assert a.key_hi <= b.key_lo

    def test_close_flushes_wal(self, db):
        kernel, database = db

        def body():
            ctx = database.new_thread(HINT_RANDOM)
            yield from database.put(ctx, 1)
            yield from database.close()

        drive(kernel, body())
        assert kernel.registry.get("syscalls.fsync") >= 1
