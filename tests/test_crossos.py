"""Tests for Cross-OS: cache bitmaps and readahead_info."""

from repro.os.crossos import CacheInfo
from repro.os.kernel import Kernel
from tests.conftest import drive

KB = 1 << 10
MB = 1 << 20


class TestBitmapMirroring:
    def test_bitmap_tracks_inserts(self, kernel):
        inode = kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.fadvise(f, "random")  # no stock ra
            yield from kernel.vfs.read(f, 0, 256 * KB)

        drive(kernel, body())
        assert inode.cross.bitmap.count_set() == 64
        assert inode.cross.bitmap.all_set(0, 64)

    def test_bitmap_tracks_evictions(self, kernel):
        inode = kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.read(f, 0, 1 * MB)
            yield from kernel.vfs.fadvise(f, "dontneed", 0, 512 * KB)

        drive(kernel, body())
        assert inode.cross.bitmap.count_set() == 128
        assert not inode.cross.bitmap.any_set(0, 128)

    def test_attach_idempotent(self, kernel):
        inode = kernel.create_file("/a", 1 * MB)
        state1 = kernel.cross.attach(inode)
        state2 = kernel.cross.attach(inode)
        assert state1 is state2

    def test_attach_seeds_from_existing_residency(self):
        k = Kernel(memory_bytes=64 * MB, cross_enabled=False)
        inode = k.create_file("/a", 1 * MB)
        inode.cache.insert_range(0, 10)
        from repro.os.crossos import CrossOS
        cross = CrossOS(k.vfs)
        state = cross.attach(inode)
        assert state.bitmap.count_set() == 10
        k.shutdown()


class TestReadaheadInfo:
    def test_prefetch_and_export(self, kernel):
        kernel.create_file("/a", 8 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=1 * MB))
            yield kernel.sim.timeout(100_000)
            return info

        info = drive(kernel, body())
        assert info.prefetch_submitted == 256
        assert info.cached_pages == 0  # nothing was cached beforehand
        assert info.bitmap_count == 256
        # Submitted blocks are reported as coming in the window.
        assert info.bitmap_bits == (1 << 256) - 1
        assert kernel.vfs.lookup("/a").cache.cached_pages == 256

    def test_cached_range_elides_io(self, kernel):
        kernel.create_file("/a", 2 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.read(f, 0, 1 * MB)
            before = kernel.device.stats.reads
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=1 * MB))
            return info, before

        info, before = drive(kernel, body())
        assert info.prefetch_submitted == 0
        assert info.cached_pages == 256
        assert kernel.device.stats.reads == before

    def test_partial_cache_prefetches_only_gaps(self, kernel):
        kernel.create_file("/a", 2 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.fadvise(f, "random")  # no stock ra
            yield from kernel.vfs.read(f, 0, 512 * KB)
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=1 * MB))
            yield kernel.sim.timeout(100_000)
            return info

        info = drive(kernel, body())
        assert info.cached_pages == 128
        assert info.prefetch_submitted == 128

    def test_fetch_bitmap_only_is_control_plane(self, kernel):
        kernel.create_file("/a", 2 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=2 * MB,
                             fetch_bitmap_only=True))
            return info

        info = drive(kernel, body())
        assert info.prefetch_submitted == 0
        assert kernel.device.stats.reads == 0
        assert info.completion.processed  # immediately done

    def test_fetch_bitmap_only_leaves_planned_untouched(self, kernel):
        """Bitmap-only calls are pure control plane: nothing may be
        claimed in the planned bitmap, or later prefetches would skip
        blocks nobody is actually fetching."""
        inode = kernel.create_file("/a", 2 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=2 * MB,
                             fetch_bitmap_only=True))
            return info

        info = drive(kernel, body())
        assert info.prefetch_submitted == 0
        assert kernel.vfs._planned[inode.id].count_set() == 0
        assert kernel.vfs._inflight[inode.id].count_set() == 0

    def test_bitmap_window_beyond_eof_clamps(self, kernel):
        inode = kernel.create_file("/a", 1 * MB)
        nblocks = inode.nblocks

        def body():
            f = kernel.vfs.open_sync("/a")
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=0, fetch_bitmap_only=True,
                             bitmap_window=(nblocks - 8, 1000)))
            return info

        info = drive(kernel, body())
        assert info.bitmap_start == nblocks - 8
        assert info.bitmap_count == 8  # clamped to EOF, not 1000

    def test_caller_cap_above_kernel_cap_still_truncates(self, kernel):
        """A caller asking for a bigger per-request cap than the kernel
        allows must still be truncated at the kernel cap."""
        cap = kernel.config.cross_max_request_bytes
        kernel.create_file("/a", cap * 4)

        def body():
            f = kernel.vfs.open_sync("/a")
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=cap * 4,
                             max_request_bytes=cap * 2))
            return info

        info = drive(kernel, body())
        assert info.truncated
        assert info.prefetch_submitted == cap // kernel.config.block_size

    def test_request_truncated_at_cap(self, kernel):
        cap = kernel.config.cross_max_request_bytes
        kernel.create_file("/a", cap * 2)

        def body():
            f = kernel.vfs.open_sync("/a")
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=cap * 2))
            return info

        info = drive(kernel, body())
        assert info.truncated
        assert info.prefetch_submitted == cap // kernel.config.block_size

    def test_telemetry_fields(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.fadvise(f, "random")  # no stock ra
            yield from kernel.vfs.read(f, 0, 64 * KB)
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=0, fetch_bitmap_only=True))
            return info

        info = drive(kernel, body())
        assert info.free_pages <= info.total_pages
        assert info.hit_pages + info.miss_pages == 16
        assert info.file_cached_pages == 16

    def test_selective_bitmap_window(self, kernel):
        kernel.create_file("/a", 4 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.read(f, 1 * MB, 256 * KB)
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=0, fetch_bitmap_only=True,
                             bitmap_window=(256, 64)))
            return info

        info = drive(kernel, body())
        assert info.bitmap_start == 256
        assert info.bitmap_count == 64
        assert info.bitmap_bits == (1 << 64) - 1

    def test_concurrent_calls_do_not_double_submit(self, kernel):
        kernel.create_file("/a", 4 * MB)

        def caller():
            f = kernel.vfs.open_sync("/a")
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=4 * MB))
            return info

        p1 = kernel.sim.process(caller())
        p2 = kernel.sim.process(caller())
        kernel.run()
        total = p1.value.prefetch_submitted + p2.value.prefetch_submitted
        assert total == 1024  # exactly the file, no duplicates
        assert kernel.device.stats.read_bytes == 4 * MB

    def test_demand_read_waits_for_prefetch_not_duplicate(self, kernel):
        kernel.create_file("/a", 4 * MB)

        def prefetcher():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=4 * MB))

        def reader():
            f = kernel.vfs.open_sync("/a")
            yield kernel.sim.timeout(10)
            yield from kernel.vfs.read(f, 2 * MB, 64 * KB)

        kernel.sim.process(prefetcher())
        kernel.sim.process(reader())
        kernel.run()
        assert kernel.device.stats.read_bytes == 4 * MB

    def test_delineated_path_avoids_tree_lock_lookup(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=0, fetch_bitmap_only=True))

        drive(kernel, body())
        bitmap_stats = kernel.registry.lock_stats("inode_bitmap")
        tree_stats = kernel.registry.lock_stats("cache_tree")
        assert bitmap_stats.acquisitions >= 1
        assert tree_stats.acquisitions == 0


class TestControlPlane:
    """§4.4 control-plane operations: per-file prefetch disable."""

    def test_disable_prefetch_blocks_submissions(self, kernel):
        kernel.create_file("/a", 4 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=0, fetch_bitmap_only=True,
                             set_prefetch_disabled=True))
            assert info.prefetch_disabled
            info2 = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=1 * MB))
            return info2

        info2 = drive(kernel, body())
        assert info2.prefetch_submitted == 0
        assert kernel.device.stats.reads == 0

    def test_reenable_prefetch(self, kernel):
        kernel.create_file("/a", 4 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=0, fetch_bitmap_only=True,
                             set_prefetch_disabled=True))
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=1 * MB,
                             set_prefetch_disabled=False))
            yield kernel.sim.timeout(100_000)
            return info

        info = drive(kernel, body())
        assert not info.prefetch_disabled
        assert info.prefetch_submitted == 256

    def test_flag_none_leaves_state(self, kernel):
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=0, fetch_bitmap_only=True,
                             set_prefetch_disabled=True))
            info = yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=0, fetch_bitmap_only=True))
            return info

        info = drive(kernel, body())
        assert info.prefetch_disabled  # unchanged by the None default
