"""The parallel experiment runner: ordering, errors, determinism, perf.

The determinism contract is the load-bearing one: ``--jobs N`` must be
a pure wall-clock optimization.  Each preset runs in its own forked
process with fixed seeds and simulated time only, so the merged output
must be byte-identical to a serial run.
"""

from __future__ import annotations

import dataclasses
import json
import time

import pytest

from repro.harness.bench import run_bench
from repro.harness.parallel import ParallelTaskError, run_parallel

# -- run_parallel mechanics ----------------------------------------------------


def _square(n: int) -> int:
    return n * n


def _sleepy_ident(args: tuple) -> int:
    index, delay = args
    time.sleep(delay)
    return index


def _boom(n: int) -> int:
    if n == 2:
        raise ValueError(f"boom on {n}")
    return n


def test_serial_fallback_matches_map():
    items = list(range(7))
    assert run_parallel(_square, items, jobs=1) == [n * n for n in items]
    assert run_parallel(_square, [5], jobs=8) == [25]


def test_parallel_matches_serial_and_preserves_order():
    items = list(range(10))
    assert run_parallel(_square, items, jobs=4) \
        == run_parallel(_square, items, jobs=1)


def test_results_merge_in_input_order_not_completion_order():
    # Earlier items sleep longer, so completion order is reversed;
    # the merge must still be positional.
    items = [(i, 0.2 - 0.04 * i) for i in range(5)]
    assert run_parallel(_sleepy_ident, items, jobs=5) == [0, 1, 2, 3, 4]


def test_failures_surface_with_index_and_traceback():
    with pytest.raises(ParallelTaskError) as excinfo:
        run_parallel(_boom, [0, 1, 2, 3], jobs=2)
    err = excinfo.value
    assert [index for index, _tb in err.failures] == [2]
    assert "boom on 2" in str(err)


# -- serial vs parallel determinism over experiment presets --------------------


def _metrics_doc(results) -> dict:
    """JSON-serializable projection of an experiment result tree."""
    if dataclasses.is_dataclass(results):
        doc = dataclasses.asdict(results)
        doc.pop("latencies_us", None)
        # Trace summaries carry filesystem paths; everything else in
        # extra (sim_events, per-approach details) must be stable.
        doc.get("extra", {}).pop("trace", None)
        return doc
    if isinstance(results, dict):
        return {str(key): _metrics_doc(value)
                for key, value in results.items()}
    return results


def _run_preset(name: str) -> str:
    from repro.cli import EXPERIMENTS, QUICK_ARGS
    results, report = EXPERIMENTS[name](**QUICK_ARGS[name])
    return json.dumps({"name": name, "report": report,
                       "metrics": _metrics_doc(results)},
                      sort_keys=True)


# Two presets keep the test in tier-1 time budget while covering both
# harness result shapes (nested cells and flat approaches); the full
# sweep is `repro check --jobs 8` vs `repro check`, run in CI.
DETERMINISM_PRESETS = ["fig2", "fig5"]


def test_presets_byte_identical_serial_vs_parallel():
    serial = run_parallel(_run_preset, DETERMINISM_PRESETS, jobs=1)
    parallel = run_parallel(_run_preset, DETERMINISM_PRESETS, jobs=2)
    assert serial == parallel


# -- perf smoke ----------------------------------------------------------------

# The committed BENCH_sim_core.json baseline measured ~650k events/sec
# on a noisy single-vCPU container; the floor is ~6x below that so only
# a real regression (or a hopeless CI machine) trips it.
ENGINE_EVENTS_PER_SEC_FLOOR = 100_000


def test_engine_events_per_sec_floor():
    result = run_bench("engine_timeout", repeat=3)
    assert result["events_per_sec"] > ENGINE_EVENTS_PER_SEC_FLOOR, (
        f"engine throughput {result['events_per_sec']:,.0f} events/s "
        f"below the smoke floor {ENGINE_EVENTS_PER_SEC_FLOOR:,}")
