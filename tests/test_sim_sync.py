"""Unit tests for simulated locks, semaphores, conditions, and queues."""

import pytest

from repro.sim import (
    Condition,
    Lock,
    Queue,
    RwLock,
    Semaphore,
    SimulationError,
    Simulator,
    StatsRegistry,
)


@pytest.fixture
def sim():
    return Simulator()


class TestLock:
    def test_fifo_mutual_exclusion(self, sim):
        lock = Lock(sim)
        order = []

        def worker(name):
            yield lock.acquire()
            try:
                order.append((name, sim.now))
                yield sim.timeout(10)
            finally:
                lock.release()

        for name in "abc":
            sim.process(worker(name))
        sim.run()
        assert order == [("a", 0.0), ("b", 10.0), ("c", 20.0)]

    def test_release_unheld_raises(self, sim):
        lock = Lock(sim)
        with pytest.raises(SimulationError):
            lock.release()

    def test_wait_time_recorded(self, sim):
        registry = StatsRegistry()
        lock = Lock(sim, stats=registry.lock_stats("demo"))

        def worker():
            yield lock.acquire()
            yield sim.timeout(7)
            lock.release()

        sim.process(worker())
        sim.process(worker())
        sim.run()
        stats = registry.lock_stats("demo")
        assert stats.acquisitions == 2
        assert stats.contended == 1
        assert stats.total_wait == 7.0

    def test_held_helper_releases_on_error(self, sim):
        lock = Lock(sim)

        def body():
            yield sim.timeout(1)
            raise ValueError("inner")

        def worker():
            with pytest.raises(ValueError):
                yield from lock.held(body())
            return lock.locked

        p = sim.process(worker())
        sim.run()
        assert p.value is False


class TestRwLock:
    def test_readers_share(self, sim):
        rw = RwLock(sim)
        active = []

        def reader(name):
            yield rw.acquire_read()
            active.append(name)
            yield sim.timeout(5)
            rw.release_read()

        sim.process(reader("r1"))
        sim.process(reader("r2"))
        sim.run(until=1)
        assert sorted(active) == ["r1", "r2"]

    def test_writer_excludes_readers(self, sim):
        rw = RwLock(sim)
        events = []

        def writer():
            yield rw.acquire_write()
            events.append(("w", sim.now))
            yield sim.timeout(10)
            rw.release_write()

        def reader():
            yield sim.timeout(1)  # arrive while writer holds
            yield rw.acquire_read()
            events.append(("r", sim.now))
            rw.release_read()

        sim.process(writer())
        sim.process(reader())
        sim.run()
        assert events == [("w", 0.0), ("r", 10.0)]

    def test_writer_preference_blocks_new_readers(self, sim):
        rw = RwLock(sim)
        events = []

        def long_reader():
            yield rw.acquire_read()
            yield sim.timeout(10)
            rw.release_read()

        def writer():
            yield sim.timeout(1)
            yield rw.acquire_write()
            events.append(("w", sim.now))
            yield sim.timeout(5)
            rw.release_write()

        def late_reader():
            yield sim.timeout(2)  # after writer queued
            yield rw.acquire_read()
            events.append(("r", sim.now))
            rw.release_read()

        sim.process(long_reader())
        sim.process(writer())
        sim.process(late_reader())
        sim.run()
        # The late reader must wait for the queued writer.
        assert events == [("w", 10.0), ("r", 15.0)]

    def test_release_unheld_raises(self, sim):
        rw = RwLock(sim)
        with pytest.raises(SimulationError):
            rw.release_read()
        with pytest.raises(SimulationError):
            rw.release_write()

    def test_read_held_and_write_held_helpers(self, sim):
        rw = RwLock(sim)

        def body():
            yield sim.timeout(1)
            return "x"

        def worker():
            a = yield from rw.read_held(body())
            b = yield from rw.write_held(body())
            return (a, b, rw.read_locked, rw.write_locked)

        p = sim.process(worker())
        sim.run()
        assert p.value == ("x", "x", False, False)


class TestSemaphore:
    def test_capacity_limits_concurrency(self, sim):
        sem = Semaphore(sim, capacity=2)
        peak = [0]
        active = [0]

        def worker():
            yield sem.acquire()
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield sim.timeout(5)
            active[0] -= 1
            sem.release()

        for _ in range(5):
            sim.process(worker())
        sim.run()
        assert peak[0] == 2

    def test_bad_capacity(self, sim):
        with pytest.raises(SimulationError):
            Semaphore(sim, capacity=0)

    def test_release_idle_raises(self, sim):
        sem = Semaphore(sim, capacity=1)
        with pytest.raises(SimulationError):
            sem.release()


class TestCondition:
    def test_notify_all_wakes_every_waiter(self, sim):
        cond = Condition(sim)
        woken = []

        def waiter(name):
            value = yield cond.wait()
            woken.append((name, value))

        def notifier():
            yield sim.timeout(3)
            cond.notify_all("go")

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.process(notifier())
        sim.run()
        assert sorted(woken) == [("a", "go"), ("b", "go")]

    def test_notify_one_wakes_single_waiter(self, sim):
        cond = Condition(sim)
        woken = []

        def waiter(name):
            yield cond.wait()
            woken.append(name)

        def notifier():
            yield sim.timeout(1)
            cond.notify_one()

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.process(notifier())
        sim.run(until=10)
        assert woken == ["a"]

    def test_notify_without_waiters_is_noop(self, sim):
        cond = Condition(sim)
        cond.notify_all()
        cond.notify_one()  # must not raise


class TestQueue:
    def test_put_then_get(self, sim):
        q = Queue(sim)
        q.put("item")

        def consumer():
            value = yield q.get()
            return value

        p = sim.process(consumer())
        sim.run()
        assert p.value == "item"

    def test_get_blocks_until_put(self, sim):
        q = Queue(sim)
        got = []

        def consumer():
            got.append((yield q.get()))

        def producer():
            yield sim.timeout(4)
            q.put(99)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [99]
        assert sim.now == 4

    def test_fifo_consumers(self, sim):
        q = Queue(sim)
        got = []

        def consumer(name):
            value = yield q.get()
            got.append((name, value))

        sim.process(consumer("first"))
        sim.process(consumer("second"))
        q.put(1)
        q.put(2)
        sim.run()
        assert got == [("first", 1), ("second", 2)]

    def test_try_get(self, sim):
        q = Queue(sim)
        assert q.try_get() == (False, None)
        q.put("x")
        assert q.try_get() == (True, "x")
        assert len(q) == 0


class TestRwLockHoldAccounting:
    """Reader hold times must be charged just like writer holds; the
    Table-1 lock-profile breakdown depends on it."""

    def test_reader_holds_recorded(self, sim):
        registry = StatsRegistry()
        rw = RwLock(sim, stats=registry.lock_stats("tree"))

        def reader(delay):
            yield rw.acquire_read()
            yield sim.timeout(delay)
            rw.release_read()

        sim.process(reader(5))
        sim.process(reader(7))
        sim.run()
        assert registry.lock_stats("tree").total_hold == 12.0

    def test_reader_hold_measured_from_grant(self, sim):
        """A reader queued behind a writer is charged from grant time,
        not from when it started waiting."""
        registry = StatsRegistry()
        rw = RwLock(sim, stats=registry.lock_stats("tree"))

        def writer():
            yield rw.acquire_write()
            yield sim.timeout(10)
            rw.release_write()

        def reader():
            yield sim.timeout(1)      # arrive while writer holds
            yield rw.acquire_read()   # granted at t=10
            yield sim.timeout(3)
            rw.release_read()         # t=13

        sim.process(writer())
        sim.process(reader())
        sim.run()
        stats = registry.lock_stats("tree")
        # writer held 10, reader held 3; a wait-time-as-hold bug would
        # report 10 + 9 + 3 instead.
        assert stats.total_hold == 13.0
        assert stats.total_wait == 9.0
