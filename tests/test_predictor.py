"""Unit + property tests for the CROSS-LIB pattern predictor."""

from hypothesis import given, settings, strategies as st

from repro.crosslib.config import CrossLibConfig
from repro.crosslib.predictor import PatternPredictor, PatternState


def feed_sequential(predictor, start=0, count=4, n=10):
    pos = start
    for _ in range(n):
        predictor.observe(pos, count)
        pos += count
    return pos


class TestStates:
    def test_opens_random(self):
        p = PatternPredictor()
        assert p.state == PatternState.HIGHLY_RANDOM
        assert p.plan(10_000, relaxed=True) is None

    def test_sequential_reads_saturate_counter(self):
        p = PatternPredictor()
        feed_sequential(p, n=10)
        assert p.state == PatternState.DEFINITELY_SEQUENTIAL

    def test_random_reads_keep_counter_down(self):
        p = PatternPredictor()
        for offset in (0, 50_000, 1000, 90_000, 20_000):
            p.observe(offset, 4)
        assert p.counter <= 1

    def test_mixed_pattern_lands_midway(self):
        p = PatternPredictor()
        pos = 0
        for _ in range(6):
            for _ in range(3):  # 3 sequential
                p.observe(pos, 4)
                pos += 4
            pos = pos + 100_000  # far jump
            p.observe(pos, 4)
            pos += 4
        assert 0 < p.counter <= 6

    def test_backward_contiguous_counts_sequential(self):
        p = PatternPredictor()
        pos = 1000
        for _ in range(8):
            p.observe(pos, 4)
            pos -= 4
        assert p.counter >= 5
        assert p.direction == -1

    def test_forward_stride_detected(self):
        p = PatternPredictor()
        pos = 0
        for _ in range(8):
            p.observe(pos, 4)
            pos += 4 + 10  # 10-block gap
        assert p.counter >= 5
        assert p.last_gap == 10

    def test_consistent_long_stride_is_predictable(self):
        cfg = CrossLibConfig()
        p = PatternPredictor(cfg)
        pos = 0
        stride = cfg.stride_blocks * 4  # beyond short-stride window
        for _ in range(10):
            p.observe(pos, 4)
            pos += 4 + stride
        assert p.counter >= 3


class TestPlanning:
    def test_no_plan_below_threshold(self):
        cfg = CrossLibConfig()
        p = PatternPredictor(cfg)
        p.observe(0, 4)
        p.observe(4, 4)
        assert p.counter < cfg.prefetch_threshold
        assert p.plan(10_000, relaxed=False) is None

    def test_forward_plan_starts_at_stream_end(self):
        p = PatternPredictor()
        end = feed_sequential(p, n=10)
        plan = p.plan(100_000, relaxed=False)
        assert plan is not None
        assert plan.start == end
        assert not plan.backward

    def test_backward_plan(self):
        p = PatternPredictor()
        pos = 10_000
        for _ in range(10):
            p.observe(pos, 4)
            pos -= 4
        plan = p.plan(100_000, relaxed=False)
        assert plan is not None
        assert plan.backward
        assert plan.start + plan.count == pos + 4

    def test_plan_clamped_to_file(self):
        p = PatternPredictor()
        end = feed_sequential(p, n=10)
        plan = p.plan(end + 5, relaxed=True)
        assert plan.count == 5

    def test_plan_none_at_eof(self):
        p = PatternPredictor()
        end = feed_sequential(p, n=10)
        assert p.plan(end, relaxed=True) is None

    def test_window_grows_exponentially_with_counter(self):
        cfg = CrossLibConfig()
        p = PatternPredictor(cfg)
        windows = []
        pos = 0
        for _ in range(10):
            p.observe(pos, 4)
            pos += 4
            windows.append(p.window_blocks(relaxed=False))
        nonzero = [w for w in windows if w]
        assert nonzero == sorted(nonzero)
        assert nonzero[-1] == cfg.base_prefetch_blocks << cfg.counter_max

    def test_relaxed_scaling_needs_sustained_streak(self):
        cfg = CrossLibConfig()
        p = PatternPredictor(cfg)
        feed_sequential(p, n=10)
        capped = p.window_blocks(relaxed=True)
        feed_sequential(p, start=10 * 4, n=cfg.streak_threshold)
        scaled = p.window_blocks(relaxed=True)
        assert scaled > capped

    def test_run_length_clamps_window(self):
        """Segmented access: the window stops at the expected run end."""
        cfg = CrossLibConfig()
        p = PatternPredictor(cfg)
        # Several 32-block runs separated by far jumps.
        pos = 0
        for _ in range(4):
            for _ in range(8):
                p.observe(pos, 4)
                pos += 4
            pos += 100_000
        # Mid-run, the window must not exceed the typical run length.
        for _ in range(2):
            p.observe(pos, 4)
            pos += 4
        window = p.window_blocks(relaxed=True)
        assert window <= 32

    def test_tiny_interleaved_run_does_not_poison_estimate(self):
        """Regression: a 1-block index read must not clamp the window."""
        cfg = CrossLibConfig()
        p = PatternPredictor(cfg)
        p.observe(0, 1)           # index block
        p.observe(5000, 1)        # jump to data
        # long backward run
        pos = 5000
        for _ in range(30):
            pos -= 1
            p.observe(pos, 1)
        assert p.avg_run_blocks == 0
        assert p.window_blocks(relaxed=True) >= \
            cfg.base_prefetch_blocks << cfg.counter_max


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 100_000), st.integers(1, 16)),
                min_size=1, max_size=60))
def test_property_counter_stays_in_range(accesses):
    cfg = CrossLibConfig()
    p = PatternPredictor(cfg)
    for start, count in accesses:
        p.observe(start, count)
        assert 0 <= p.counter <= cfg.counter_max
        plan = p.plan(200_000, relaxed=True)
        if plan is not None:
            assert plan.count > 0
            assert plan.start >= 0
            assert plan.start + plan.count <= 200_000


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 50))
def test_property_pure_sequential_always_plans_forward(n):
    p = PatternPredictor()
    pos = 0
    for _ in range(max(n, 5)):
        p.observe(pos, 4)
        pos += 4
    plan = p.plan(10**6, relaxed=False)
    assert plan is not None and not plan.backward
