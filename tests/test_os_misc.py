"""Tests for inode, kernel bundle, stats registry, and fdtable."""

import pytest

from repro.crosslib.config import CrossLibConfig
from repro.crosslib.fdtable import UserFd, UserFileState
from repro.os.kernel import Kernel, KernelConfig
from repro.sim import StatsRegistry

KB = 1 << 10
MB = 1 << 20


class TestInode:
    def test_geometry(self, kernel):
        inode = kernel.create_file("/a", 10 * KB)
        assert inode.nblocks == 3  # 10 KB over 4 KB blocks
        assert inode.blocks_of(0) == 0
        assert inode.blocks_of(1) == 1
        assert inode.blocks_of(4096) == 1
        assert inode.blocks_of(4097) == 2

    def test_resize(self, kernel):
        inode = kernel.create_file("/a", 4 * KB)
        inode.set_size(64 * KB)
        assert inode.nblocks == 16
        assert inode.cache.nblocks == 16
        with pytest.raises(ValueError):
            inode.set_size(-1)

    def test_negative_size_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.create_file("/bad", -5)

    def test_unique_ids(self, kernel):
        a = kernel.create_file("/a", KB)
        b = kernel.create_file("/b", KB)
        assert a.id != b.id


class TestKernel:
    def test_cross_flag(self):
        plain = Kernel(memory_bytes=8 * MB, cross_enabled=False)
        cross = Kernel(memory_bytes=8 * MB, cross_enabled=True)
        assert plain.cross is None
        assert cross.cross is not None
        plain.shutdown()
        cross.shutdown()

    def test_create_file_attaches_cross_state(self, kernel):
        inode = kernel.create_file("/a", 1 * MB)
        assert inode.cross is not None

    def test_config_applied(self):
        cfg = KernelConfig(ra_pages=8)
        k = Kernel(memory_bytes=8 * MB, config=cfg)
        f = k.vfs.open_sync(k.create_file("/a", 1 * MB).path)
        assert f.ra.ra_pages == 8
        k.shutdown()

    def test_memory_pages_derived(self):
        k = Kernel(memory_bytes=8 * MB)
        assert k.mem.total_pages == 8 * MB // 4096
        k.shutdown()

    def test_run_until(self, kernel):
        def ticker():
            while True:
                yield kernel.sim.timeout(10)

        kernel.sim.process(ticker())
        assert kernel.run(until=100) == 100


class TestStatsRegistry:
    def test_counters(self):
        registry = StatsRegistry()
        registry.count("x")
        registry.count("x", 2)
        assert registry.get("x") == 3
        assert registry.get("missing", -1) == -1

    def test_lock_stats_identity(self):
        registry = StatsRegistry()
        assert registry.lock_stats("a") is registry.lock_stats("a")

    def test_total_lock_wait_and_fraction(self):
        registry = StatsRegistry()
        registry.lock_stats("a").record_acquire(5.0)
        registry.lock_stats("b").record_acquire(15.0)
        assert registry.total_lock_wait == 20.0
        assert registry.lock_wait_fraction(100.0) == pytest.approx(0.2)
        assert registry.lock_wait_fraction(0.0) == 0.0
        assert registry.lock_wait_fraction(10.0) == 1.0  # clamped

    def test_snapshot_includes_locks(self):
        registry = StatsRegistry()
        registry.count("c", 4)
        registry.lock_stats("l").record_acquire(2.0)
        snap = registry.snapshot()
        assert snap["c"] == 4
        assert snap["lock.l.wait"] == 2.0
        assert snap["lock.l.contended"] == 1.0


class TestFdTable:
    def test_state_lifecycle(self, kernel):
        inode = kernel.create_file("/a", 1 * MB)
        pf = kernel.vfs.open_sync("/a")
        state = UserFileState(kernel.sim, kernel.registry, inode, pf,
                              CrossLibConfig())
        state.note_open(0.0)
        state.note_open(1.0)
        assert state.open_count == 2
        state.note_close(2.0)
        assert state.open_count == 1
        assert state.closed_at is None
        state.note_close(3.0)
        assert state.open_count == 0
        assert state.closed_at == 3.0

    def test_idle_tracking(self, kernel):
        inode = kernel.create_file("/a", 1 * MB)
        pf = kernel.vfs.open_sync("/a")
        state = UserFileState(kernel.sim, kernel.registry, inode, pf,
                              CrossLibConfig())
        state.note_access(10.0)
        assert state.idle_for(40.0) == 30.0

    def test_rangetree_mode_selects_node_size(self, kernel):
        inode = kernel.create_file("/a", 64 * MB)
        pf = kernel.vfs.open_sync("/a")
        with_tree = UserFileState(kernel.sim, kernel.registry, inode, pf,
                                  CrossLibConfig(range_tree=True))
        without = UserFileState(kernel.sim, kernel.registry, inode, pf,
                                CrossLibConfig(range_tree=False))
        assert with_tree.tree.node_blocks \
            == CrossLibConfig().node_blocks
        assert without.tree.node_blocks == inode.nblocks

    def test_userfd_has_own_predictor(self, kernel):
        inode = kernel.create_file("/a", 1 * MB)
        pf = kernel.vfs.open_sync("/a")
        cfg = CrossLibConfig()
        state = UserFileState(kernel.sim, kernel.registry, inode, pf,
                              cfg)
        fd1 = UserFd(state, kernel.vfs.open_sync("/a"), cfg)
        fd2 = UserFd(state, kernel.vfs.open_sync("/a"), cfg)
        assert fd1.predictor is not fd2.predictor
        assert fd1.state is fd2.state
        assert fd1.fd != fd2.fd
