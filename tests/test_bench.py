"""Bench harness: suite schema, uniform telemetry, baseline compat."""

import pytest

from repro.harness import bench as benchmod


def test_suite_schema_v2_and_uniform_sim_time():
    doc = benchmod.run_suite(["engine_timeout"])
    assert doc["schema"] == "bench_sim_core/v2"
    result = doc["benches"]["engine_timeout"]
    assert result["events"] > 0
    assert result["sim_time_us"] > 0
    assert result["events_per_sec"] > 0


def test_all_benches_registered():
    assert set(benchmod.BENCHES) == {
        "engine_timeout", "engine_locks", "fig5_quick", "fig2_quick",
        "chaos_quick", "qos_quick", "cluster_quick", "adaptive_quick",
    }


def _suite(schema, eps):
    return {
        "schema": schema,
        "benches": {"engine_timeout": {"wall_s": 1.0, "events": 1000,
                                       "events_per_sec": eps}},
    }


def test_compare_accepts_v1_baseline():
    current = _suite("bench_sim_core/v2", 1000.0)
    v1 = _suite("bench_sim_core/v1", 900.0)
    del v1["benches"]["engine_timeout"]["events_per_sec"]
    v1["benches"]["engine_timeout"]["events_per_sec"] = 900.0
    assert benchmod.compare_to_baseline(current, v1) == []


def test_compare_accepts_v2_baseline_with_current_section():
    current = _suite("bench_sim_core/v2", 500.0)
    baseline_doc = {"baseline": _suite("bench_sim_core/v1", 2000.0),
                    "current": _suite("bench_sim_core/v2", 1000.0)}
    failures = benchmod.compare_to_baseline(current, baseline_doc,
                                            max_regression=0.3)
    assert len(failures) == 1
    assert "engine_timeout" in failures[0]


def test_compare_rejects_unknown_schema():
    current = _suite("bench_sim_core/v2", 1000.0)
    with pytest.raises(ValueError):
        benchmod.compare_to_baseline(current,
                                     _suite("bench_sim_core/v99", 1.0))


def test_compare_accepts_schemaless_baseline():
    # Pre-v1 documents (bare {benches: ...}) still work.
    current = _suite("bench_sim_core/v2", 1000.0)
    legacy = {"benches": _suite(None, 900.0)["benches"]}
    assert benchmod.compare_to_baseline(current, legacy) == []


def test_format_suite_has_sim_time_column():
    doc = _suite("bench_sim_core/v2", 1000.0)
    doc["benches"]["engine_timeout"]["sim_time_us"] = 2_500_000.0
    text = benchmod.format_suite(doc)
    assert "sim s" in text.splitlines()[0]
    assert "2.500" in text
