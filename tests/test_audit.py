"""Tests for the invariant auditor: deadlock detection, lock-order
recording, leak checks, and cross-layer conservation audits."""

import pytest

from repro.os.crossos import CacheInfo
from repro.os.kernel import Kernel
from repro.sim import AuditError, Auditor, Lock, RwLock, Semaphore, Simulator

from tests.conftest import MB, drive

KB = 1 << 10


@pytest.fixture
def audited_kernel():
    k = Kernel(memory_bytes=8 * MB, cross_enabled=True, audit=True)
    yield k


class TestDeadlockDetector:
    def test_lock_order_inversion_deadlock_raises(self):
        """The acceptance-criteria case: a deliberately seeded AB/BA
        inversion that actually deadlocks is caught and named."""
        sim = Simulator()
        Auditor(sim)
        a = Lock(sim, name="lock_a")
        b = Lock(sim, name="lock_b")

        def forward():
            yield a.acquire()
            yield sim.timeout(5)
            yield b.acquire()
            b.release()
            a.release()

        def backward():
            yield b.acquire()
            yield sim.timeout(5)
            yield a.acquire()
            a.release()
            b.release()

        sim.process(forward(), name="forward")
        sim.process(backward(), name="backward")
        with pytest.raises(AuditError, match="deadlock"):
            sim.run()

    def test_deadlock_message_names_processes_and_locks(self):
        sim = Simulator()
        Auditor(sim)
        a = Lock(sim, name="lock_a")
        b = Lock(sim, name="lock_b")

        def forward():
            yield a.acquire()
            yield sim.timeout(5)
            yield b.acquire()

        def backward():
            yield b.acquire()
            yield sim.timeout(5)
            yield a.acquire()

        sim.process(forward(), name="fwd")
        sim.process(backward(), name="bwd")
        with pytest.raises(AuditError) as exc:
            sim.run()
        msg = str(exc.value)
        for name in ("fwd", "bwd", "lock_a", "lock_b"):
            assert name in msg

    def test_three_way_cycle(self):
        sim = Simulator()
        Auditor(sim)
        locks = [Lock(sim, name=f"l{i}") for i in range(3)]

        def worker(i):
            yield locks[i].acquire()
            yield sim.timeout(5)
            yield locks[(i + 1) % 3].acquire()

        for i in range(3):
            sim.process(worker(i), name=f"w{i}")
        with pytest.raises(AuditError, match="deadlock"):
            sim.run()

    def test_rwlock_writer_vs_lock_cycle(self):
        sim = Simulator()
        Auditor(sim)
        rw = RwLock(sim, name="tree")
        mu = Lock(sim, name="mu")

        def reader_then_mu():
            yield rw.acquire_read()
            yield sim.timeout(5)
            yield mu.acquire()

        def mu_then_writer():
            yield mu.acquire()
            yield sim.timeout(5)
            yield rw.acquire_write()

        sim.process(reader_then_mu(), name="reader")
        sim.process(mu_then_writer(), name="writer")
        with pytest.raises(AuditError, match="deadlock"):
            sim.run()

    def test_plain_contention_is_not_deadlock(self):
        sim = Simulator()
        auditor = Auditor(sim)
        lock = Lock(sim, name="hot")

        def worker():
            yield lock.acquire()
            yield sim.timeout(10)
            lock.release()

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert auditor.violations == []

    def test_semaphore_cycle_detected(self):
        sim = Simulator()
        Auditor(sim)
        sem = Semaphore(sim, capacity=1, name="slots")
        mu = Lock(sim, name="mu")

        def a():
            yield sem.acquire()
            yield sim.timeout(5)
            yield mu.acquire()

        def b():
            yield mu.acquire()
            yield sim.timeout(5)
            yield sem.acquire()

        sim.process(a(), name="a")
        sim.process(b(), name="b")
        with pytest.raises(AuditError, match="deadlock"):
            sim.run()


class TestLockOrderRecorder:
    def test_inversion_without_overlap_warns(self):
        """AB then (later) BA never deadlocks here, but the recorded
        order inversion is the lockdep-style early warning."""
        sim = Simulator()
        auditor = Auditor(sim)
        a = Lock(sim, name="alpha")
        b = Lock(sim, name="beta")

        def forward():
            yield a.acquire()
            yield b.acquire()
            b.release()
            a.release()

        def backward():
            yield sim.timeout(100)  # strictly after forward finished
            yield b.acquire()
            yield a.acquire()
            a.release()
            b.release()

        sim.process(forward(), name="forward")
        sim.process(backward(), name="backward")
        sim.run()
        assert auditor.violations == []
        assert len(auditor.warnings) == 1
        assert "alpha" in auditor.warnings[0]
        assert "beta" in auditor.warnings[0]

    def test_warning_emitted_once_per_pair(self):
        sim = Simulator()
        auditor = Auditor(sim)
        a = Lock(sim, name="alpha")
        b = Lock(sim, name="beta")

        def inverted(first, second, delay):
            yield sim.timeout(delay)
            yield first.acquire()
            yield second.acquire()
            second.release()
            first.release()

        sim.process(inverted(a, b, 0))
        sim.process(inverted(b, a, 100))
        sim.process(inverted(b, a, 200))
        sim.run()
        assert len(auditor.warnings) == 1

    def test_same_class_instances_not_flagged(self):
        """Per-inode instances of one lock class guard disjoint state;
        crossing orders between them is expected, not an inversion."""
        sim = Simulator()
        auditor = Auditor(sim)
        a = Lock(sim, name="inode[1]")
        b = Lock(sim, name="inode[2]")

        def forward():
            yield a.acquire()
            yield b.acquire()
            b.release()
            a.release()

        def backward():
            yield sim.timeout(100)
            yield b.acquire()
            yield a.acquire()
            a.release()
            b.release()

        sim.process(forward())
        sim.process(backward())
        sim.run()
        assert auditor.warnings == []


class TestLeakChecks:
    def test_exit_holding_lock_is_violation(self):
        sim = Simulator()
        auditor = Auditor(sim)
        lock = Lock(sim, name="leaky")

        def worker():
            yield lock.acquire()
            yield sim.timeout(5)
            # exits without releasing

        sim.process(worker(), name="leaker")
        sim.run()
        assert any("leaky" in v and "leaker" in v
                   for v in auditor.violations)
        with pytest.raises(AuditError):
            auditor.final_check()

    def test_lock_held_at_end_of_run(self):
        sim = Simulator()
        auditor = Auditor(sim)
        lock = Lock(sim, name="held_forever")
        lock.acquire()  # external holder, never released
        sim.run()
        with pytest.raises(AuditError, match="held_forever"):
            auditor.final_check()

    def test_blocked_forever_is_violation(self):
        sim = Simulator()
        auditor = Auditor(sim)
        lock = Lock(sim, name="stuck")
        lock.acquire()  # external holder never releases

        def waiter():
            yield lock.acquire()

        sim.process(waiter(), name="waiter")
        sim.run()
        with pytest.raises(AuditError) as exc:
            auditor.final_check()
        assert "waiter" in str(exc.value)
        assert "stuck" in str(exc.value)

    def test_event_never_fired_is_violation(self):
        sim = Simulator()
        auditor = Auditor(sim)

        def stuck():
            yield sim.event()  # nobody ever triggers this

        sim.process(stuck(), name="stuck_proc")
        sim.run()
        with pytest.raises(AuditError, match="never"):
            auditor.final_check()

    def test_clean_run_passes_final_check(self):
        sim = Simulator()
        auditor = Auditor(sim)
        lock = Lock(sim, name="clean")

        def worker():
            yield lock.acquire()
            yield sim.timeout(5)
            lock.release()

        sim.process(worker())
        sim.run()
        auditor.final_check()
        assert auditor.violations == []


class TestConservation:
    def _read_some(self, kernel, path="/f", size=4 * MB):
        inode = kernel.create_file(path, size)
        file = kernel.vfs.open_sync(path)

        def gen():
            yield from kernel.vfs.read(file, 0, size // 2)
            info = CacheInfo(offset=size // 2, nbytes=size // 4)
            yield from kernel.cross.readahead_info(file, info)
            yield info.completion

        drive(kernel, gen())
        return inode

    def test_clean_workload_conserves(self, audited_kernel):
        kernel = audited_kernel
        self._read_some(kernel)
        kernel.auditor.check_now(kernel)
        assert kernel.auditor.violations == []
        kernel.shutdown()  # final check must pass too

    def test_memory_accounting_violation_detected(self, audited_kernel):
        kernel = audited_kernel
        self._read_some(kernel)
        # Tamper: leak pages from the accounting without evicting.
        kernel.mem.used_pages -= 5
        kernel.auditor.check_now(kernel)
        assert any("memory accounting" in v
                   for v in kernel.auditor.violations)

    def test_lru_membership_violation_detected(self, audited_kernel):
        kernel = audited_kernel
        self._read_some(kernel)
        # Tamper: drop a resident chunk from the LRU behind the
        # manager's back.
        key = next(iter(kernel.mem.lru.keys()))
        kernel.mem.lru.removed(key)
        kernel.auditor.check_now(kernel)
        assert any("LRU membership" in v
                   for v in kernel.auditor.violations)

    def test_bitmap_mirror_violation_detected(self, audited_kernel):
        kernel = audited_kernel
        inode = self._read_some(kernel)
        # Tamper: flip an exported bit without touching the page cache.
        state = kernel.cross.state(inode)
        state.bitmap.clear_range(0, 1)
        kernel.auditor.check_now(kernel)
        assert any("cross bitmap" in v
                   for v in kernel.auditor.violations)

    def test_mirror_hook_check_fires(self, audited_kernel):
        kernel = audited_kernel
        self._read_some(kernel)
        assert kernel.auditor.mirror_checks > 0

    def test_device_byte_conservation_violation(self, audited_kernel):
        kernel = audited_kernel
        self._read_some(kernel)
        # Tamper: pretend the fill path issued fewer bytes than the
        # device saw.
        kernel.auditor.fill_read_bytes -= 4 * KB
        with pytest.raises(AuditError, match="fill path"):
            kernel.shutdown()

    def test_device_utilization_bounded(self, audited_kernel):
        kernel = audited_kernel
        self._read_some(kernel)
        assert kernel.device.stats.utilization(kernel.sim.now) <= 1.0

    def test_final_check_is_idempotent(self, audited_kernel):
        kernel = audited_kernel
        self._read_some(kernel)
        kernel.shutdown()
        kernel.shutdown()  # second call is a no-op, not a re-audit


class TestAuditOffOverhead:
    def test_no_auditor_by_default(self, kernel):
        assert kernel.sim.auditor is None
        assert kernel.auditor is None
