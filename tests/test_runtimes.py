"""Tests for the baseline runtimes and the approach factory."""

import pytest

from repro.os.kernel import Kernel
from repro.runtimes import (
    APPROACHES,
    AppOnlyRuntime,
    FincoreRuntime,
    HINT_RANDOM,
    HINT_SEQUENTIAL,
    OsOnlyRuntime,
    build_runtime,
)
from repro.runtimes.factory import needs_cross
from tests.conftest import drive

KB = 1 << 10
MB = 1 << 20


class TestFactory:
    def test_all_approaches_buildable(self):
        for approach in APPROACHES:
            kernel = Kernel(memory_bytes=16 * MB,
                            cross_enabled=needs_cross(approach))
            runtime = build_runtime(approach, kernel)
            assert runtime.name == approach
            runtime.teardown()
            kernel.shutdown()

    def test_unknown_approach_rejected(self, kernel):
        with pytest.raises(ValueError):
            build_runtime("NoSuchThing", kernel)

    def test_needs_cross(self):
        assert needs_cross("CrossP[+predict+opt]")
        assert not needs_cross("APPonly")
        assert not needs_cross("OSonly")

    def test_table2_approaches_present(self):
        for name in ("APPonly", "APPonly[fincore]", "OSonly",
                     "CrossP[+predict]", "CrossP[+predict+opt]",
                     "CrossP[+fetchall+opt]"):
            assert name in APPROACHES


class TestOsOnly:
    def test_no_hint_side_effects(self, plain_kernel):
        plain_kernel.create_file("/a", 1 * MB)
        runtime = OsOnlyRuntime(plain_kernel)

        def body():
            h = yield from runtime.open("/a", HINT_RANDOM)
            return h

        h = drive(plain_kernel, body())
        assert h.file.ra.enabled is True  # OSonly ignores app beliefs
        assert plain_kernel.registry.get("syscalls.fadvise") == 0


class TestAppOnly:
    def test_random_hint_disables_readahead(self, plain_kernel):
        plain_kernel.create_file("/a", 1 * MB)
        runtime = AppOnlyRuntime(plain_kernel)

        def body():
            h = yield from runtime.open("/a", HINT_RANDOM)
            return h

        h = drive(plain_kernel, body())
        assert h.file.ra.enabled is False

    def test_sequential_hint_issues_readahead_calls(self, plain_kernel):
        plain_kernel.create_file("/a", 8 * MB)
        runtime = AppOnlyRuntime(plain_kernel)

        def body():
            h = yield from runtime.open("/a", HINT_SEQUENTIAL)
            while h.pos < 4 * MB:
                yield from runtime.read_seq(h, 64 * KB)

        drive(plain_kernel, body())
        assert plain_kernel.registry.get("syscalls.readahead") >= 2

    def test_believed_frontier_overestimates(self, plain_kernel):
        """The Fig. 1 pathology: the app believes its 2 MB request was
        honoured although the kernel clamped it to 128 KB."""
        plain_kernel.create_file("/a", 8 * MB)
        runtime = AppOnlyRuntime(plain_kernel)

        def body():
            h = yield from runtime.open("/a", HINT_SEQUENTIAL)
            yield plain_kernel.sim.timeout(100_000)
            return h

        h = drive(plain_kernel, body())
        believed = h.next_prefetch_block
        actual = plain_kernel.vfs.lookup("/a").cache.cached_pages
        assert believed == 2 * MB // 4096
        assert actual < believed  # under-prefetched

    def test_mmap_random_gets_madvise(self, plain_kernel):
        plain_kernel.create_file("/a", 1 * MB)
        runtime = AppOnlyRuntime(plain_kernel)

        def body():
            mh = yield from runtime.mmap_open("/a", HINT_RANDOM)
            return mh

        mh = drive(plain_kernel, body())
        assert mh.region.random_advice is True


class TestFincore:
    def test_background_thread_prefetches(self, plain_kernel):
        plain_kernel.create_file("/a", 8 * MB)
        runtime = FincoreRuntime(plain_kernel)

        def body():
            h = yield from runtime.open("/a", HINT_RANDOM)
            pos = 0
            while pos < 2 * MB:
                yield from runtime.pread(h, pos, 64 * KB)
                pos += 64 * KB
            yield plain_kernel.sim.timeout(1e6)

        drive(plain_kernel, body())
        registry = plain_kernel.registry
        assert registry.get("syscalls.fincore") >= 1
        assert registry.get("syscalls.readahead") >= 1
        runtime.teardown()

    def test_fincore_contends_on_mm_lock(self, plain_kernel):
        plain_kernel.create_file("/a", 16 * MB)
        runtime = FincoreRuntime(plain_kernel)

        def reader(tid):
            h = yield from runtime.open("/a", HINT_RANDOM)
            pos = tid * 4 * MB
            while pos < (tid + 1) * 4 * MB:
                yield from runtime.pread(h, pos, 16 * KB)
                pos += 16 * KB

        for tid in range(4):
            plain_kernel.sim.process(reader(tid))
        plain_kernel.run()
        # The fincore walks held the mm lock for real simulated time.
        assert plain_kernel.registry.lock_stats("mm").total_hold == 0 \
            or plain_kernel.registry.get("syscalls.fincore") > 0
        runtime.teardown()

    def test_close_unwatches(self, plain_kernel):
        plain_kernel.create_file("/a", 1 * MB)
        runtime = FincoreRuntime(plain_kernel)

        def body():
            h = yield from runtime.open("/a", HINT_RANDOM)
            yield from runtime.close(h)

        drive(plain_kernel, body())
        assert runtime._watched == []
        runtime.teardown()
