"""Tests for the fault-injection & resilience subsystem.

Covers: deterministic schedules (``_unit``, ``_Windows``), preset
construction and intensity scaling, the per-request fault oracle,
retry/backoff + prefetch deadlines in the device, the degradation state
machine, worker restart, and the end-to-end properties the subsystem
promises — same seed ⇒ identical runs, and the invariant auditor stays
green under chaos.
"""

import pytest

from repro.sim import Simulator
from repro.sim.audit import run_stress
from repro.sim.faults import (
    DegradeController,
    DegradePolicy,
    DeviceError,
    DeviceTimeout,
    FabricError,
    FabricSpec,
    FaultEngine,
    FaultSpec,
    PRESETS,
    QueueStallSpec,
    RetryPolicy,
    TransientErrorSpec,
    make_preset,
    _unit,
    _Windows,
)
from repro.storage import BLOCKING, PREFETCH, NVMeDevice, RemoteNVMeDevice

KB = 1 << 10
MB = 1 << 20


class _Req:
    def __init__(self, kind="read"):
        self.kind = kind


# -- error types ------------------------------------------------------------


class TestErrors:
    def test_codes_and_messages(self):
        assert str(DeviceError("boom")) == "[EIO] boom"
        assert str(DeviceError()) == "EIO"
        assert DeviceTimeout().code == "ETIMEDOUT"
        assert FabricError().code == "ENOTCONN"
        assert DeviceError("x", code="EBUSY").code == "EBUSY"
        assert isinstance(DeviceTimeout(), DeviceError)
        assert isinstance(FabricError(), DeviceError)


# -- deterministic primitives ----------------------------------------------


class TestUnit:
    def test_pure_function_of_inputs(self):
        assert _unit(7, 13, 42) == _unit(7, 13, 42)
        assert _unit(7, 13, 42) != _unit(8, 13, 42)
        assert _unit(7, 13, 42) != _unit(7, 11, 42)
        assert _unit(7, 13, 42) != _unit(7, 13, 43)

    def test_range_and_spread(self):
        values = [_unit(3, 17, n) for n in range(2000)]
        assert all(0.0 <= v < 1.0 for v in values)
        # Roughly uniform: mean near 0.5.
        assert 0.45 < sum(values) / len(values) < 0.55


class TestWindows:
    def test_schedule_independent_of_query_pattern(self):
        dense = _Windows(99, 5_000.0, 2_000.0, 4.0, jitter=0.3)
        sparse = _Windows(99, 5_000.0, 2_000.0, 4.0, jitter=0.3)
        # Query one track at every microsecond-ish step, the other only
        # at coarse instants: answers at shared instants must agree.
        expected = {}
        for t in range(0, 200_000, 50):
            expected[t] = dense.current(float(t))
        for t in range(0, 200_000, 1_700):
            assert sparse.current(float(t)) == expected[t]

    def test_windows_cover_time_with_magnitude(self):
        w = _Windows(5, 1_000.0, 1_000.0, 8.0)
        hits = sum(w.current(float(t)) is not None
                   for t in range(0, 100_000, 25))
        # gap ~= duration: roughly half the time inside a window.
        assert 0.25 < hits / 4000 < 0.75
        w2 = _Windows(5, 1_000.0, 1_000.0, 8.0)
        inside = next(w2.current(float(t))
                      for t in range(0, 100_000, 25)
                      if w2.current(float(t)) is not None)
        assert inside[0] == 8.0


# -- presets ----------------------------------------------------------------


class TestPresets:
    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown fault preset"):
            make_preset("meteor")

    def test_none_and_zero_intensity_disabled(self):
        assert not make_preset("none").enabled
        assert not make_preset("storm", intensity=0.0).enabled
        assert not make_preset("chaos", intensity=-1.0).enabled

    def test_every_preset_constructs(self):
        for name in PRESETS:
            spec = make_preset(name, seed=1)
            assert spec.preset == name
            assert name in spec.describe()
            if name != "none":
                assert spec.enabled

    def test_chaos_enables_every_model(self):
        spec = make_preset("chaos", seed=2)
        for model in ("storms", "errors", "bandwidth", "stalls",
                      "fabric"):
            assert getattr(spec, model) is not None, model

    def test_intensity_scales_probabilities_and_gaps(self):
        lo = make_preset("flaky", intensity=1.0)
        hi = make_preset("flaky", intensity=2.0)
        assert hi.errors.read_fail_prob == 2 * lo.errors.read_fail_prob
        # Probabilities cap at 0.5 no matter how wild the intensity.
        wild = make_preset("flaky", intensity=1_000.0)
        assert wild.errors.read_fail_prob == 0.5
        s_lo = make_preset("storm", intensity=1.0)
        s_hi = make_preset("storm", intensity=2.0)
        assert s_hi.storms.mean_gap_us < s_lo.storms.mean_gap_us
        assert s_hi.storms.multiplier > s_lo.storms.multiplier


# -- the per-request oracle -------------------------------------------------


class TestFaultEngine:
    def test_certain_read_failure(self):
        sim = Simulator()
        spec = FaultSpec(seed=1, errors=TransientErrorSpec(
            read_fail_prob=1.0, write_fail_prob=0.0))
        engine = FaultEngine(sim, spec)
        exc, latency, mult, factor = engine.decide(_Req("read"), 0.0)
        assert isinstance(exc, DeviceError)
        assert latency == spec.errors.error_latency_us
        healthy = engine.decide(_Req("write"), 0.0)
        assert healthy == (None, 0.0, 1.0, 1.0)
        assert engine.stats.error_faults == 1
        assert engine.stats.decisions == 2

    def test_fabric_drop_and_remote_latency(self):
        sim = Simulator()
        spec = FaultSpec(seed=1, fabric=FabricSpec(
            drop_prob=1.0, error_latency_us=10.0))
        engine = FaultEngine(sim, spec)
        remote = RemoteNVMeDevice(sim)
        engine.attach(remote)
        # A drop is detected only after ~4 RTTs on a remote device.
        assert engine._fabric_latency == pytest.approx(
            4.0 * remote.remote.rtt)
        exc, latency, _m, _f = engine.decide(_Req("read"), 0.0)
        assert isinstance(exc, FabricError)
        assert latency == engine._fabric_latency

    def test_stall_windows_counted_once(self):
        sim = Simulator()
        spec = FaultSpec(seed=4, stalls=QueueStallSpec(
            mean_gap_us=1_000.0, mean_duration_us=1_000.0))
        engine = FaultEngine(sim, spec)
        mirror = _Windows(4 ^ 0x57A1, 1_000.0, 1_000.0)
        start = None
        for t in range(0, 100_000, 10):
            if mirror.current(float(t)) is not None:
                start = float(t)
                break
        assert start is not None
        end = engine.stall_until(start)
        assert end > start
        assert engine.stats.stall_windows == 1
        assert engine.stall_until(start + 1.0) == end
        assert engine.stats.stall_windows == 1  # same window, one count


# -- retry / backoff / deadline in the device -------------------------------


def _engine_device(spec):
    sim = Simulator()
    dev = NVMeDevice(sim)
    dev.set_fault_engine(FaultEngine(sim, spec))
    return sim, dev


class TestDeviceRetry:
    def test_blocking_read_retries_through_transient_faults(self):
        # ~50% failure rate: every blocking read must still succeed.
        spec = FaultSpec(seed=7, errors=TransientErrorSpec(
            read_fail_prob=0.5, write_fail_prob=0.0))
        sim, dev = _engine_device(spec)
        outcomes = []

        def submitter():
            for i in range(40):
                try:
                    yield dev.read(i * MB, 64 * KB, priority=BLOCKING,
                                   stream=1)
                except DeviceError:
                    outcomes.append("fail")
                else:
                    outcomes.append("ok")

        sim.process(submitter())
        sim.run()
        assert outcomes == ["ok"] * 40
        assert dev.stats.read_failures > 0
        assert dev.stats.retries >= dev.stats.read_failures
        assert dev.stats.retry_exhausted == 0
        assert dev.stats.read_bytes == 40 * 64 * KB

    def test_blocking_retry_exhaustion_raises(self):
        spec = FaultSpec(
            seed=1,
            errors=TransientErrorSpec(read_fail_prob=1.0),
            retry=RetryPolicy(blocking_retries=3, base_backoff_us=10.0))
        sim, dev = _engine_device(spec)
        caught = []

        def submitter():
            try:
                yield dev.read(0, 4 * KB, priority=BLOCKING, stream=1)
            except DeviceError as exc:
                caught.append(exc)

        sim.process(submitter())
        sim.run()
        assert len(caught) == 1
        assert caught[0].code == "EIO"
        assert dev.stats.retry_exhausted == 1
        assert dev.stats.retries == 3          # 4 attempts, 3 retries
        assert dev.stats.read_failures == 4

    def test_prefetch_deadline_aborts_instead_of_wedging(self):
        # Retries never give up on their own; the deadline must.
        spec = FaultSpec(
            seed=1,
            errors=TransientErrorSpec(read_fail_prob=1.0,
                                      error_latency_us=40.0),
            retry=RetryPolicy(prefetch_retries=10_000,
                              prefetch_timeout_us=500.0,
                              base_backoff_us=10.0,
                              max_backoff_us=20.0))
        sim, dev = _engine_device(spec)
        caught = []
        stamp = []

        def submitter():
            try:
                yield dev.read(0, 4 * KB, priority=PREFETCH, stream=1)
            except DeviceError as exc:
                caught.append(exc)
                stamp.append(sim.now)

        sim.process(submitter())
        sim.run()
        assert len(caught) == 1
        assert isinstance(caught[0], DeviceTimeout)
        assert stamp[0] == pytest.approx(500.0)
        assert dev.stats.timeouts == 1
        assert dev.faults.stats.timeouts == 1
        # The abandoned request feeds the degradation controller hard.
        assert dev.degrade.pressure > 0.0

    def test_prefetch_exhausts_quickly(self):
        spec = FaultSpec(seed=1,
                         errors=TransientErrorSpec(read_fail_prob=1.0))
        sim, dev = _engine_device(spec)
        caught = []

        def submitter():
            try:
                yield dev.read(0, 4 * KB, priority=PREFETCH, stream=1)
            except DeviceError as exc:
                caught.append(exc)

        sim.process(submitter())
        sim.run()
        assert len(caught) == 1
        assert not isinstance(caught[0], DeviceTimeout)
        assert dev.stats.retry_exhausted == 1
        assert dev.stats.retries == spec.retry.prefetch_retries

    def test_fault_summary_shape(self):
        spec = FaultSpec(seed=7, errors=TransientErrorSpec(
            read_fail_prob=0.5, write_fail_prob=0.0))
        sim, dev = _engine_device(spec)

        def submitter():
            for i in range(10):
                yield dev.read(i * MB, 16 * KB, priority=BLOCKING,
                               stream=1)

        sim.process(submitter())
        sim.run()
        summary = dev.stats.fault_summary()
        assert set(summary) == {
            "faults_injected", "read_failures", "write_failures",
            "retries", "retry_exhausted", "timeouts",
            "aborted_requests", "stall_time_us"}


# -- degradation state machine ----------------------------------------------


class TestDegradeController:
    def test_escalation_and_hysteresis(self):
        policy = DegradePolicy()
        ctl = DegradeController(None, policy)
        assert ctl.current_level(0.0) == 0
        for _ in range(3):
            ctl.note_fault(0.0)
        assert ctl.level == 1                   # throttled
        for _ in range(6):
            ctl.note_fault(0.0)
        assert ctl.level == 2                   # paused
        assert ctl.transitions == 2
        # Pressure decays, but recovery waits for the quiet dwell and
        # then steps down one level at a time.
        t1 = policy.recover_us + 1.0
        assert ctl.current_level(t1) == 1
        assert ctl.current_level(t1 + 1.0) == 0
        assert ctl.transitions == 4

    def test_no_step_down_while_faults_keep_arriving(self):
        policy = DegradePolicy()
        ctl = DegradeController(None, policy)
        for _ in range(10):
            ctl.note_fault(0.0)
        assert ctl.level == 2
        # Fresh faults reset the quiet clock: still paused much later.
        ctl.note_fault(policy.recover_us)
        assert ctl.current_level(policy.recover_us + 100.0) == 2

    def test_transition_callback_fires(self):
        seen = []
        ctl = DegradeController(
            None, DegradePolicy(),
            on_transition=lambda level, now: seen.append(level))
        for _ in range(10):
            ctl.note_fault(0.0)
        assert seen[:2] == [1, 2]


# -- worker restart ---------------------------------------------------------


class _StubRegistry:
    def __init__(self):
        self.counts = {}

    def count(self, name):
        self.counts[name] = self.counts.get(name, 0) + 1


class TestWorkerRestart:
    def test_supervisor_restarts_crashed_worker(self):
        from types import SimpleNamespace

        from repro.crosslib.workers import WorkerPool

        sim = Simulator()
        registry = _StubRegistry()
        runtime = SimpleNamespace(
            sim=sim, registry=registry,
            config=SimpleNamespace(nr_workers=1),
            kernel=SimpleNamespace(
                device=SimpleNamespace(faults=object(), degrade=None)))

        class BoomPool(WorkerPool):
            def _worker_loop(self, index):
                if self.restarts == 0:
                    raise RuntimeError("boom")
                # Restarted incarnation parks on the (empty) queue.
                yield self.queue.get()

        pool = BoomPool(runtime)
        sim.run()
        assert pool.restarts == 1
        assert registry.counts["cross.worker_restarts"] == 1
        assert all(w.is_alive for w in pool._workers)
        # Teardown interrupts cleanly — no restart loop on Interrupt.
        pool.teardown()
        sim.run()
        assert pool.restarts == 1


# -- end-to-end properties --------------------------------------------------


class TestDeterminism:
    def test_same_seed_same_chaos_run(self):
        spec = make_preset("chaos", seed=3)
        r1 = run_stress(3, faults=spec)
        r2 = run_stress(3, faults=make_preset("chaos", seed=3))
        assert r1 == r2
        assert r1["faults"]["faults_injected"] > 0

    def test_disabled_spec_is_byte_identical_to_healthy(self):
        healthy = run_stress(0)
        disabled = run_stress(0, faults=make_preset("storm",
                                                    intensity=0.0))
        assert healthy == disabled
        assert "faults" not in disabled

    def test_microbench_identical_event_sequence_under_faults(self):
        from repro.harness.configs import MachineConfig, Scale
        from repro.harness.runner import faulting, run_one
        from repro.workloads.microbench import (
            MicrobenchConfig,
            run_microbench,
        )

        def workload(kernel, runtime):
            cfg = MicrobenchConfig(nthreads=2, total_bytes=8 * MB,
                                   pattern="rand", sharing="shared",
                                   sample_latencies=True)
            return run_microbench(kernel, runtime, cfg)

        machine = MachineConfig.local_ext4(Scale())
        runs = []
        with faulting(make_preset("chaos", seed=5)):
            for _ in range(2):
                runs.append(run_one(machine, "CrossP[+predict+opt]",
                                    workload, memory_bytes=16 * MB))
        m1, m2 = runs
        # The full per-op latency sequence matching means the two runs
        # made identical scheduling decisions, not just similar totals.
        assert m1.latencies_us == m2.latencies_us
        assert m1.duration_us == m2.duration_us
        assert m1.extra["faults"] == m2.extra["faults"]


class TestAuditUnderChaos:
    @pytest.mark.parametrize("seed", range(5))
    def test_chaos_audit_green(self, seed):
        spec = make_preset("chaos", seed=seed, intensity=1.5)
        summary = run_stress(seed, faults=spec)   # raises on violation
        assert summary["faults"]["faults_injected"] >= 0

    def test_fabric_preset_on_stress(self):
        summary = run_stress(1, faults=make_preset("flaky", seed=1,
                                                   intensity=2.0))
        faults = summary["faults"]
        assert faults["read_failures"] + faults["write_failures"] > 0
        assert faults["retries"] > 0
