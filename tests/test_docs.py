"""The docs checker: the repo's markdown stays consistent with the code.

``tools/check_docs.py`` is the CI gate; these tests run the same
checks through pytest and prove the checker actually catches the two
failure classes it exists for (broken links, phantom CLI flags).
"""

import importlib.util
import os

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

spec = importlib.util.spec_from_file_location(
    "check_docs", os.path.join(REPO, "tools", "check_docs.py"))
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestRepoDocs:
    def test_all_docs_clean(self):
        assert check_docs.main() == 0

    def test_covers_the_docs_dir(self):
        files = check_docs.doc_files()
        assert "README.md" in files
        assert os.path.join("docs", "qos.md") in files
        assert os.path.join("docs", "index.md") in files

    def test_cli_flag_inventory_includes_subparser_flags(self):
        flags = check_docs.cli_flags()
        assert {"--tenants", "--faults", "--fault-region", "--audit",
                "--seed", "--trace-out"} <= flags


class TestCheckerCatches:
    def test_broken_relative_link_is_reported(self):
        problems = []
        check_docs.check_links(
            "README.md", "see [x](docs/no-such-file.md)", problems)
        assert len(problems) == 1
        assert "no-such-file" in problems[0]

    def test_external_and_anchor_links_are_skipped(self):
        problems = []
        check_docs.check_links(
            "README.md",
            "[a](https://example.com) [b](#section) "
            "[c](mailto:x@example.com)",
            problems)
        assert problems == []

    def test_fragment_suffix_is_stripped(self):
        problems = []
        check_docs.check_links(
            "docs/qos.md", "[sim](simulation.md#scaling)", problems)
        assert problems == []

    def test_unknown_flag_is_reported(self):
        problems = []
        check_docs.check_flags(
            "docs/qos.md", "pass --definitely-not-a-flag",
            {"--tenants"}, problems)
        assert len(problems) == 1
        assert "--definitely-not-a-flag" in problems[0]

    def test_known_and_allowlisted_flags_pass(self):
        problems = []
        check_docs.check_flags(
            "README.md", "--tenants and --benchmark-only",
            {"--tenants"}, problems)
        assert problems == []
