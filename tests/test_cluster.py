"""Cluster subsystem tests: open-loop traffic, fleet determinism,
fleet audits, and the concurrent-writer contract of the results store.

The determinism tests pin the open-loop contract from
``repro.cluster.traffic``: every draw happens in the arrival generator
(deterministic order), so the same seed must give a byte-identical
arrival stream, identical per-host event counts across two runs, and
identical fingerprints whether the sweep runs serial or through the
``run_parallel`` fork pool.
"""

import random

import pytest

from repro.cluster import (
    ID_NAMESPACE,
    BurstArrivals,
    DiurnalSchedule,
    FleetConfig,
    Host,
    HostSpec,
    PoissonArrivals,
    RequestMix,
    TrafficSpec,
    arrival_stream,
    run_fleet,
    traffic_seed,
)
from repro.harness.configs import MachineConfig
from repro.harness.experiments.scale import run_scale
from repro.harness.metrics import ApproachMetrics
from repro.harness.parallel import run_parallel
from repro.harness.results import load_results, save_results
from repro.sim.stats import StatsRegistry

KB = 1 << 10
MB = 1 << 20

CROSS = "CrossP[+predict+opt]"

# Small enough to keep the fleet tests fast, busy enough to produce
# real queueing on the shared backend.
QUICK = TrafficSpec(rate_per_s=1_200.0, horizon_us=50_000.0)


def _quick_config(**overrides) -> FleetConfig:
    kwargs = dict(n_hosts=2, n_tenants=2, approach=CROSS,
                  file_bytes=2 * MB, seed=7, traffic=QUICK)
    kwargs.update(overrides)
    return FleetConfig(**kwargs)


class TestTrafficStreams:
    def test_same_seed_byte_identical_stream(self):
        spec = TrafficSpec(rate_per_s=5_000.0, horizon_us=100_000.0)
        a = arrival_stream(spec, random.Random(11))
        b = arrival_stream(spec, random.Random(11))
        assert a == b
        assert a != arrival_stream(spec, random.Random(12))

    def test_poisson_rate_roughly_matches(self):
        spec = TrafficSpec(rate_per_s=10_000.0, horizon_us=1_000_000.0)
        arrivals = arrival_stream(spec, random.Random(3))
        # 10k expected; Poisson std-dev is 100, so ±10% is generous.
        assert 9_000 < len(arrivals) < 11_000
        assert arrivals == sorted(arrivals)
        assert all(0 < t < spec.horizon_us for t in arrivals)

    def test_burst_arrivals_deterministic(self):
        spec = TrafficSpec(arrivals="burst", burst=3,
                           burst_period_us=10_000.0,
                           horizon_us=35_000.0)
        arrivals = arrival_stream(spec, random.Random(0))
        assert arrivals == [10_000.0] * 3 + [20_000.0] * 3 \
            + [30_000.0] * 3

    def test_diurnal_ramp_modulates_rate(self):
        flat = TrafficSpec(rate_per_s=5_000.0, horizon_us=200_000.0)
        ramped = TrafficSpec(rate_per_s=5_000.0, horizon_us=200_000.0,
                             diurnal=(0.25, 4.0),
                             diurnal_period_us=200_000.0)
        arrivals = arrival_stream(ramped, random.Random(5))
        first = sum(1 for t in arrivals if t < 100_000.0)
        second = len(arrivals) - first
        # Second half runs 16x the first half's rate.
        assert second > 4 * first
        assert DiurnalSchedule((0.25, 4.0), 200_000.0) \
            .multiplier(150_000.0) == 4.0
        assert len(arrivals) != len(arrival_stream(flat,
                                                   random.Random(5)))

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            DiurnalSchedule(())
        with pytest.raises(ValueError):
            DiurnalSchedule((1.0, -2.0))
        with pytest.raises(ValueError):
            DiurnalSchedule((1.0,), period_us=0.0)

    def test_mix_draw_and_validation(self):
        rng = random.Random(9)
        draws = [RequestMix(0.5, 0.3, 0.2).draw(rng)
                 for _ in range(2_000)]
        counts = {k: draws.count(k) for k in ("point", "scan", "hot")}
        assert counts["point"] > counts["scan"] > counts["hot"] > 0
        with pytest.raises(ValueError):
            RequestMix(-0.1, 0.5, 0.5)
        with pytest.raises(ValueError):
            RequestMix(0.0, 0.0, 0.0)

    def test_unknown_arrival_process_rejected(self):
        with pytest.raises(ValueError):
            TrafficSpec(arrivals="fractal").arrival_process()

    def test_traffic_seed_distinct_per_stream(self):
        seeds = {traffic_seed(42, host, tenant)
                 for host in range(8) for tenant in range(8)}
        assert len(seeds) == 64  # no collisions across the grid
        assert traffic_seed(42, 1, 2) == traffic_seed(42, 1, 2)

    def test_zero_rate_yields_no_arrivals(self):
        assert PoissonArrivals(0.0).stream(random.Random(1),
                                           1e6) == []
        assert BurstArrivals(0.0, 4).stream(random.Random(1),
                                            1e6) == []


class TestHost:
    def test_single_host_builds_and_teardown_idempotent(self):
        host = Host.single(MachineConfig.remote_nvmeof(), "OSonly")
        host.create_file("/t/a", 1 * MB)
        host.teardown()
        host.teardown()  # second call must be a no-op
        summary = host.summary()
        assert summary["host"] == "host0"
        assert summary["requests"] == 0

    def test_fleet_hosts_get_disjoint_inode_namespaces(self):
        from repro.sim.engine import Simulator
        sim = Simulator()
        machine = MachineConfig.remote_nvmeof()
        backend = machine.device_factory()(sim, StatsRegistry())
        hosts = [Host.in_fleet(HostSpec(host_id=h), machine,
                               sim=sim, backend=backend)
                 for h in range(2)]
        inodes = [host.create_file(f"/{host.name}/f", 1 * MB)
                  for host in hosts]
        assert inodes[0].id == 1
        assert inodes[1].id == 1 + ID_NAMESPACE
        assert hosts[0].kernel.sim is hosts[1].kernel.sim is sim
        assert hosts[0].kernel.device is hosts[1].kernel.device
        for host in hosts:
            host.teardown()
        sim.run()


class TestFleetDeterminism:
    def test_same_seed_same_fingerprint_and_host_rows(self):
        first = run_fleet(_quick_config())
        second = run_fleet(_quick_config())
        assert first["fingerprint"] == second["fingerprint"]
        assert first["hosts"] == second["hosts"]
        assert first["backends"] == second["backends"]
        assert first["metrics"].extra["sim_events"] \
            == second["metrics"].extra["sim_events"]

    def test_different_seed_differs(self):
        a = run_fleet(_quick_config(seed=7))
        b = run_fleet(_quick_config(seed=8))
        assert a["fingerprint"] != b["fingerprint"]

    def test_scale_sweep_jobs_parity(self):
        """--jobs 4 must be byte-identical to serial: same fingerprints,
        same per-host event counts, per sweep point and approach."""
        kwargs = dict(hosts=(1, 2), tenant_counts=(2,),
                      rate_per_s=800.0, horizon_us=30_000.0,
                      file_mb=2, seed=3)
        serial, _ = run_scale(jobs=1, **kwargs)
        forked, _ = run_scale(jobs=4, **kwargs)
        assert serial.keys() == forked.keys()
        for key, per in serial.items():
            for approach, metrics in per.items():
                other = forked[key][approach]
                assert metrics.extra["fingerprint"] \
                    == other.extra["fingerprint"], (key, approach)
                assert metrics.extra["sim_events"] \
                    == other.extra["sim_events"]
                assert metrics.latencies_us == other.latencies_us

    def test_fleet_metrics_shape(self):
        out = run_fleet(_quick_config(n_hosts=2))
        metrics = out["metrics"]
        assert isinstance(metrics, ApproachMetrics)
        assert metrics.ops == sum(row["requests"]
                                  for row in out["hosts"])
        assert len(metrics.latencies_us) == metrics.ops > 0
        assert metrics.extra["n_hosts"] == 2
        # Open-loop latency includes queueing, so the tail must be
        # at least as slow as the median.
        assert metrics.p99_us >= metrics.p50_us > 0


class TestFleetAudit:
    @pytest.mark.parametrize("approach", ["OSonly", CROSS])
    def test_contended_fleet_audits_green(self, approach):
        out = run_fleet(_quick_config(approach=approach, audit=True))
        assert out["metrics"].extra["audited"] is True
        assert out["metrics"].ops > 0

    def test_multi_backend_audit_green(self):
        out = run_fleet(_quick_config(n_hosts=4, n_backends=2,
                                      audit=True))
        reads = [row["read_bytes"] for row in out["backends"]]
        assert len(reads) == 2 and all(r > 0 for r in reads)


def _hammer_save(item):
    """Fork-pool worker: save a distinct document to the shared path."""
    path, writer = item
    metrics = ApproachMetrics(approach=f"w{writer}", duration_us=1e6,
                              bytes_read=writer * MB)
    save_results({"cell": metrics}, path, experiment=f"writer{writer}")
    return writer


class TestAtomicResults:
    def test_parallel_writers_never_tear_the_file(self, tmp_path):
        """Hammer one results path from the run_parallel fork pool:
        whoever wins, the file must always parse as one complete
        document written by a single writer."""
        path = tmp_path / "shared.json"
        writers = list(range(16))
        done = run_parallel(_hammer_save,
                            [(str(path), w) for w in writers], jobs=8)
        assert sorted(done) == writers
        doc = load_results(path)
        winner = doc["experiment"]
        assert winner in {f"writer{w}" for w in writers}
        # The surviving document is self-consistent: its cell matches
        # the experiment tag of the writer that produced it.
        wid = int(winner.removeprefix("writer"))
        assert doc["cells"]["cell"]["approach"] == f"w{wid}"
        assert doc["cells"]["cell"]["bytes_read"] == wid * MB
        # No temp droppings left behind by any writer.
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_failed_write_cleans_up_temp(self, tmp_path):
        class Unserializable(ApproachMetrics):
            @property
            def throughput_mbps(self):  # type: ignore[override]
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            save_results({"x": Unserializable(approach="x")},
                         tmp_path / "r.json")
        assert list(tmp_path.iterdir()) == []
