"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.os.kernel import Kernel

KB = 1 << 10
MB = 1 << 20


def pytest_addoption(parser):
    parser.addoption(
        "--stress", action="store_true", default=False,
        help="also run tests marked 'stress' (long randomized sweeps, "
             "e.g. the crash-point fuzz harness at full width)")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--stress"):
        return
    skip = pytest.mark.skip(reason="long sweep; enable with --stress")
    for item in items:
        if "stress" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def kernel():
    """A small machine with Cross-OS enabled (64 MB RAM)."""
    k = Kernel(memory_bytes=64 * MB, cross_enabled=True)
    yield k
    k.shutdown()


@pytest.fixture
def plain_kernel():
    """A small machine without Cross-OS."""
    k = Kernel(memory_bytes=64 * MB, cross_enabled=False)
    yield k
    k.shutdown()


def drive(kernel, gen, name="test"):
    """Run a generator to completion inside the kernel's simulator and
    return its value."""
    proc = kernel.sim.process(gen, name=name)
    kernel.run()
    assert proc.processed, f"process {name} did not finish"
    return proc.value
