"""Crash-point fuzzing: crash the LSM write workload at arbitrary
ordinals, recover on a fresh audited kernel, and hold the recovery
invariants (recovered DB ≡ committed WAL prefix, no acknowledged-
durable bytes lost).

Hypothesis drives the crash ordinal; on a failure it shrinks to the
minimal failing ordinal automatically (the same deterministic shrink
``repro recover`` reports via ``find_minimal_failure``).  The wide
randomized sweep is marked ``stress`` and runs with ``pytest
--stress``.
"""

from __future__ import annotations

import dataclasses
import functools

import pytest

from repro.harness.crashfuzz import (
    FuzzConfig,
    build_scenario,
    crash_time_for,
    find_minimal_failure,
    probe_put_times,
    recover,
    sweep,
)
from repro.harness.experiments.recovery import run_recovery

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

KB = 1 << 10

# Small on purpose: each example runs a damage sim + a recovery sim.
FUZZ = FuzzConfig(puts=60, num_keys=1024, value_size=512,
                  sst_bytes=64 * KB, memtable_bytes=16 * KB,
                  l0_compaction_trigger=2, write_buffer_io=16 * KB,
                  wal_sync_ops=5, memory_mb=48)


@functools.lru_cache(maxsize=8)
def _probe(seed: int) -> tuple[float, ...]:
    return tuple(probe_put_times(seed, FUZZ))


# -- the fuzz property --------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=3),
       ordinal=st.integers(min_value=0, max_value=FUZZ.puts))
@settings(deadline=None, max_examples=12)
def test_crash_anywhere_recovers_committed_prefix(seed, ordinal):
    scenario = build_scenario(seed, ordinal, FUZZ,
                              put_times=_probe(seed))
    report = recover(scenario)
    assert report.ok, report.violations
    # Recovered DB ≡ committed prefix: every committed put replayed...
    assert report.replayed_seq >= scenario.wal.committed_seq
    assert report.replayed_records >= len(scenario.wal.committed_records())
    # ...and nothing acknowledged-durable was damaged.
    assert report.damaged_manifest_blocks == 0
    assert report.quarantined_tables == 0


def test_crash_before_any_put():
    scenario = build_scenario(1, 0, FUZZ, put_times=_probe(1))
    report = recover(scenario)
    assert report.ok, report.violations
    assert report.replayed_records == 0
    assert report.rebuilt_keys == 0


def test_crash_after_last_put():
    scenario = build_scenario(1, FUZZ.puts, FUZZ, put_times=_probe(1))
    report = recover(scenario)
    assert report.ok, report.violations
    # close() committed the whole WAL before the crash point.
    assert report.replayed_records == FUZZ.puts


# -- determinism --------------------------------------------------------------


def test_probe_is_deterministic():
    assert probe_put_times(2, FUZZ) == probe_put_times(2, FUZZ)


def test_scenario_and_recovery_bit_deterministic():
    a = build_scenario(2, 30, FUZZ, put_times=_probe(2))
    b = build_scenario(2, 30, FUZZ, put_times=_probe(2))
    assert a.crash_time_us == b.crash_time_us
    assert a.snapshot.resolution == b.snapshot.resolution
    assert a.snapshot.describe() == b.snapshot.describe()
    assert [f.persisted.runs() for f in a.snapshot.files.values()] \
        == [f.persisted.runs() for f in b.snapshot.files.values()]
    ra = recover(a)
    rb = recover(b)
    assert dataclasses.asdict(ra) == dataclasses.asdict(rb)


def test_cold_and_primed_recover_same_state():
    scenario = build_scenario(3, 45, FUZZ, put_times=_probe(3))
    cold = recover(scenario, "OSonly")
    primed = recover(scenario, "CrossP[+predict+opt]")
    for field in ("replayed_records", "replayed_seq", "rebuilt_keys",
                  "damaged_blocks", "orphans_removed", "violations"):
        assert getattr(cold, field) == getattr(primed, field)
    assert primed.primed_blocks > 0
    assert cold.primed_blocks == 0


def test_check_task_parallel_matches_serial():
    """``repro check --jobs N`` must be byte-identical to serial, with
    durable presets composed via ``--faults``."""
    from repro.cli import _check_task
    from repro.harness.parallel import run_parallel

    items = [("stress", (3, "crash")), ("stress", (4, "torn")),
             ("stress", (5, "wbdrop"))]
    serial = run_parallel(_check_task, items, jobs=1)
    fanned = run_parallel(_check_task, items, jobs=2)
    assert serial == fanned
    assert all(not failed for _line, failed, _w in serial)


def test_recovery_experiment_deterministic():
    kwargs = dict(nseeds=1, puts=120, num_keys=4096, memory_mb=48)
    results_a, report_a = run_recovery(**kwargs)
    results_b, report_b = run_recovery(**kwargs)
    assert report_a == report_b
    assert results_a == results_b


# -- harness plumbing ---------------------------------------------------------


def test_crash_time_for_midpoints():
    times = [10.0, 20.0, 40.0]
    assert crash_time_for(times, 0) == 5.0
    assert crash_time_for(times, 1) == 15.0
    assert crash_time_for(times, 2) == 30.0
    assert crash_time_for(times, 3) == 41.0
    with pytest.raises(ValueError):
        crash_time_for([], 1)


def test_find_minimal_failure_none_when_clean():
    assert find_minimal_failure(1, range(5, 30, 10), FUZZ) is None


def test_recover_cli_smoke(capsys):
    from repro.cli import main

    argv = ["recover", "--seeds", "5", "--points", "2", "--puts", "60"]
    assert main(argv) == 0
    out_a = capsys.readouterr().out
    assert main(argv) == 0
    out_b = capsys.readouterr().out
    assert out_a == out_b
    assert "all crash-recovery invariants held" in out_a


# -- the long sweep -----------------------------------------------------------


@pytest.mark.stress
def test_wide_crash_sweep():
    for seed in range(6):
        for ordinal, report in sweep(seed, points=10, cfg=FUZZ):
            assert report.ok, (seed, ordinal, report.violations)
