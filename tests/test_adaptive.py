"""Tests for the learned, pattern-adaptive prefetch policy layer.

Covers, per ``docs/prefetching.md``:

* classifier state transitions (sequential / temporal / random), the
  two-in-a-row hysteresis, and the unknown cold-start band;
* perceptron seed determinism and the mistake-driven update rule;
* :class:`AdaptivePolicy` decisions — the sequential perceptron
  bypass, per-class plan clamps and denials, readahead/request caps,
  the relaxed-streak override, bulk-load admission and eviction bias;
* the opt-in contract: with no policy attached, the fig5 microbench
  reproduces its pinned event count and metrics fingerprint, byte for
  byte;
* enabled-path determinism and the ``repro experiment adaptive`` win
  condition at the ``repro check`` quick preset;
* QoS coupling: SLO violations multiply ``TenantState.slo_boost``
  (capped, decaying) only while the policy is attached.
"""

import hashlib
import json

import pytest

from repro.crosslib.adaptive import (
    PATTERN_RANDOM,
    PATTERN_SEQUENTIAL,
    PATTERN_TEMPORAL,
    PATTERN_UNKNOWN,
    AdaptivePolicy,
    AdaptiveSpec,
    Perceptron,
    StreamClassifier,
)
from repro.crosslib.predictor import PrefetchPlan
from repro.harness.experiments import run_adaptive
from repro.harness.experiments.micro import run_fig5_microbench
from repro.sim import Simulator
from repro.sim.qos import QosManager, QosSpec

MB = 1 << 20

# Pinned disabled-path fingerprint (see docs/prefetching.md): the
# fig5 quick cell must not move when the adaptive layer is merely
# *present* in the tree but not attached.
FIG5_EVENTS = 197_235
FIG5_SHA256 = ("024d8bc3bac4ec94a4dc7f5981c346fc"
               "c5f38149dcae037c3ca4a5842fa6e656")


# -- classifier -------------------------------------------------------------


def _feed(clf, starts, count=4):
    for s in starts:
        clf.observe(s, count)
    return clf.pattern


class TestStreamClassifier:
    def test_unknown_below_half_window(self):
        clf = StreamClassifier(AdaptiveSpec())
        # window=20: needs 10 transitions (11 accesses) before labeling.
        assert _feed(clf, range(10)) == PATTERN_UNKNOWN
        assert _feed(clf, range(10, 30)) == PATTERN_SEQUENTIAL

    def test_sequential_trace(self):
        clf = StreamClassifier(AdaptiveSpec())
        assert _feed(clf, range(0, 120, 4)) == PATTERN_SEQUENTIAL
        assert clf.transitions == 1

    def test_temporal_trace(self):
        clf = StreamClassifier(AdaptiveSpec())
        hot = [0, 500, 1000, 1500]
        assert _feed(clf, hot * 10) == PATTERN_TEMPORAL

    def test_random_trace(self):
        clf = StreamClassifier(AdaptiveSpec())
        assert _feed(clf, [i * 1000 for i in range(30)]) == PATTERN_RANDOM

    def test_strided_ascent_counts_as_sequential(self):
        # Forward deltas within stride_blocks (32) are sequential-ish:
        # this is exactly the bait shape the adaptive experiment's
        # prober uses, and why hysteresis matters.
        clf = StreamClassifier(AdaptiveSpec())
        assert _feed(clf, range(0, 30 * 8, 8), count=1) \
            == PATTERN_SEQUENTIAL

    def test_hysteresis_needs_two_raw_labels_in_a_row(self):
        spec = AdaptiveSpec()
        clf = StreamClassifier(spec)
        _feed(clf, range(40))            # solidly sequential
        # The ascending deque holds window-1 = 19 booleans, all True.
        # Each far jump appends False; the raw label flips to random
        # once the ascending fraction drops below 0.7 — after 6 jumps
        # ((19-6)/19 ≈ 0.68).  The *published* pattern must survive
        # that first raw flip and switch only on the second.
        for i in range(6):
            clf.observe(10_000 * (i + 2), 1)
        assert clf.pattern == PATTERN_SEQUENTIAL
        clf.observe(10_000 * 100, 1)
        assert clf.pattern == PATTERN_RANDOM


# -- perceptron -------------------------------------------------------------


class TestPerceptron:
    def test_same_seed_same_weights(self):
        a = Perceptron(AdaptiveSpec(seed=7))
        b = Perceptron(AdaptiveSpec(seed=7))
        assert a.weights == b.weights

    def test_different_seed_different_weights(self):
        a = Perceptron(AdaptiveSpec(seed=0))
        b = Perceptron(AdaptiveSpec(seed=1))
        assert a.weights != b.weights

    def test_fresh_perceptron_admits(self):
        # The positive bias dominates the near-zero random weights, so
        # a cold kernel issues every plan the static policy would.
        p = Perceptron(AdaptiveSpec())
        for pat in range(1, 4):
            x = [0.0] * 7
            x[0] = 1.0
            x[pat] = 1.0
            x[6] = 1.0
            assert p.predict(x)

    def test_train_is_mistake_driven(self):
        p = Perceptron(AdaptiveSpec())
        x = [1.0, 0.0, 0.0, 1.0, 0.5, 0.0, 1.0]
        before = list(p.weights)
        p.train(x, predicted=True, label=True)      # agreement: no-op
        assert p.weights == before and p.mistakes == 0
        p.train(x, predicted=True, label=False)     # mistake: step down
        assert p.mistakes == 1
        lr = AdaptiveSpec().learning_rate
        assert p.weights == pytest.approx(
            [w - lr * xi for w, xi in zip(before, x)])

    def test_training_is_deterministic(self):
        trace = [([1.0, 0, 0, 1, 0.3, 0.1, 0.2], True, False),
                 ([1.0, 1, 0, 0, 0.9, 0.0, 1.0], True, True),
                 ([1.0, 0, 1, 0, 0.5, 0.2, 0.4], False, True)]
        a, b = Perceptron(AdaptiveSpec(seed=3)), \
            Perceptron(AdaptiveSpec(seed=3))
        for x, pred, label in trace:
            a.train(x, pred, label)
            b.train(x, pred, label)
        assert a.weights == b.weights
        assert a.mistakes == b.mistakes == 2


# -- policy decisions -------------------------------------------------------


def _policy(spec=None):
    return AdaptivePolicy(Simulator(), spec or AdaptiveSpec())


def _drive(pol, stream, starts, count=4, counter=3):
    for s in starts:
        pol.observe(stream, s, count, counter, 6)


class TestAdaptivePolicy:
    def test_sequential_bypasses_the_perceptron(self):
        pol = _policy()
        _drive(pol, 1, range(40))
        pol.perceptron.weights = [-10.0] * 7    # gate would deny
        plan = pol.gate_plan(1, PrefetchPlan(40, 8, False), 1000)
        assert plan is not None and plan.count == 8
        # No training example is recorded: cold-cache sequential misses
        # must not teach the gate to deny (the deny->miss->deny spiral).
        before = list(pol.perceptron.weights)
        pol.note_outcome(1, hit_pages=0, miss_pages=8)
        assert pol.perceptron.weights == before

    def test_random_plans_are_clamped_then_denied(self):
        pol = _policy()
        _drive(pol, 1, [i * 1000 for i in range(30)], count=1)
        assert pol.pattern_of(1) == PATTERN_RANDOM
        plan = pol.gate_plan(1, PrefetchPlan(0, 32, False), 10_000)
        assert plan.count == AdaptiveSpec().random_cap_blocks
        pol.perceptron.weights = [-10.0] * 7
        assert pol.gate_plan(1, PrefetchPlan(0, 32, False), 10_000) \
            is None

    def test_temporal_plans_are_clamped(self):
        pol = _policy()
        _drive(pol, 1, [0, 500, 1000, 1500] * 10)
        assert pol.pattern_of(1) == PATTERN_TEMPORAL
        plan = pol.gate_plan(1, PrefetchPlan(0, 64, False), 10_000)
        assert plan.count == AdaptiveSpec().temporal_cap_blocks

    def test_cold_streams_are_never_denied(self):
        # Below train_min observations the gate admits regardless of
        # the weights — cold streams behave like the static policy.
        pol = _policy(AdaptiveSpec(train_min=100))
        _drive(pol, 1, [i * 1000 for i in range(30)], count=1)
        pol.perceptron.weights = [-10.0] * 7
        assert pol.gate_plan(1, PrefetchPlan(0, 32, False), 10_000) \
            is not None

    def test_window_and_request_caps_per_pattern(self):
        pol = _policy()
        _drive(pol, 1, range(40))                              # seq
        _drive(pol, 2, [0, 500, 1000, 1500] * 10)              # temporal
        _drive(pol, 3, [i * 1000 for i in range(30)], count=1)  # random
        now = 0.0
        assert pol.window_cap(1, now) is None
        assert pol.window_cap(2, now) == 16
        assert pol.window_cap(3, now) == 4
        assert pol.window_cap(99, now) is None                 # unseen
        block = 4096
        assert pol.request_cap(1, 10 * MB, block, now) == 10 * MB
        assert pol.request_cap(2, 10 * MB, block, now) == 16 * block
        assert pol.request_cap(3, 10 * MB, block, now) == 4 * block

    def test_relax_streak_override_for_sequential(self):
        pol = _policy()
        _drive(pol, 1, range(40))
        _drive(pol, 2, [i * 1000 for i in range(30)], count=1)
        assert pol.relax_streak(1, 24) == 8
        assert pol.relax_streak(2, 24) == 24
        assert pol.relax_streak(99, 24) == 24

    def test_bulk_admission_denied_only_for_random(self):
        pol = _policy()
        _drive(pol, 1, range(40))                              # seq
        _drive(pol, 2, [0, 500, 1000, 1500] * 10)              # temporal
        _drive(pol, 3, [i * 1000 for i in range(30)], count=1)  # random
        assert pol.admit_bulk(1)
        assert pol.admit_bulk(2)       # bulk is how hot sets get resident
        assert not pol.admit_bulk(3)
        assert pol.admit_bulk(99)      # unknown/cold: static behavior

    def test_victim_bias_prefers_random_streams(self):
        pol = _policy()
        _drive(pol, 1, range(40))
        _drive(pol, 3, [i * 1000 for i in range(30)], count=1)
        assert pol.victim_bias(1, 0.0) == 0
        assert pol.victim_bias(3, 0.0) == 1
        assert pol.victim_bias(99, 0.0) == 0

    def test_outcomes_train_the_gate(self):
        pol = _policy()
        _drive(pol, 1, [i * 1000 for i in range(30)], count=1)
        plan = pol.gate_plan(1, PrefetchPlan(0, 32, False), 10_000)
        assert plan is not None
        before = list(pol.perceptron.weights)
        pol.note_outcome(1, hit_pages=0, miss_pages=8)   # admitted, missed
        assert pol.perceptron.mistakes == 1
        assert pol.perceptron.weights != before

    def test_fault_pressure_decays(self):
        sim = Simulator()
        spec = AdaptiveSpec()
        pol = AdaptivePolicy(sim, spec)
        pol.note_retry(1, now=0.0)
        pol.note_fault(1, now=0.0)
        state = pol._streams[1]
        assert pol._pressure(state, 0.0) == pytest.approx(
            spec.retry_weight + spec.fault_weight)
        assert pol._pressure(state, spec.pressure_halflife_us) \
            == pytest.approx((spec.retry_weight + spec.fault_weight) / 2)

    def test_snapshot_reports_per_stream_state(self):
        pol = _policy()
        _drive(pol, 1, range(40))
        pol.gate_plan(1, PrefetchPlan(40, 8, False), 1000)
        pol.note_fault_class(1, "torn", now=0.0)
        snap = pol.snapshot()
        st = snap["streams"][1]
        assert st["pattern"] == PATTERN_SEQUENTIAL
        assert st["issued"] == 1
        assert st["fault_classes"] == {"torn": 1}
        assert len(snap["weights"]) == 7


# -- opt-in contract: the disabled path is byte-identical -------------------


class TestDisabledPathFingerprint:
    def test_fig5_fingerprint_unchanged(self):
        results, _ = run_fig5_microbench(
            nthreads=4, memory_bytes=48 * MB,
            cells=("shared-seq", "shared-rand"))
        doc = {cell: {ap: [m.duration_us, m.bytes_read, m.hit_pages,
                           m.miss_pages, m.extra["sim_events"],
                           m.extra["sim_time_us"]]
                      for ap, m in row.items()}
               for cell, row in results.items()}
        events = sum(m.extra["sim_events"] for row in results.values()
                     for m in row.values())
        digest = hashlib.sha256(
            json.dumps(doc, sort_keys=True).encode()).hexdigest()
        assert events == FIG5_EVENTS
        assert digest == FIG5_SHA256


# -- the adaptive experiment ------------------------------------------------

QUICK = dict(memory_bytes=32 * MB, oversubscription=2.0, hot_ops=240)


class TestAdaptiveExperiment:
    def test_quick_preset_wins_and_is_deterministic(self):
        first, report = run_adaptive(**QUICK)
        second, _ = run_adaptive(**QUICK)
        # Win condition: adaptive strictly beats every static config,
        # healthy and under the fault storm.
        assert first["wins"] == {"healthy": True, "storm": True}
        assert first["storm_hit_delta_pp"] is not None
        assert "beats every static config" in report
        # Same seed => bit-identical rows and learned state.
        assert first["throughput"] == second["throughput"]
        assert first["hit_rate"] == second["hit_rate"]
        for variant in ("healthy", "storm"):
            key = f"adaptive / {variant}"
            assert first["rows"][key].extra["adaptive"] \
                == second["rows"][key].extra["adaptive"]


# -- QoS coupling -----------------------------------------------------------


class TestSloBoost:
    def _manager(self, adaptive):
        sim = Simulator()
        mgr = QosManager(sim, QosSpec.parse("A:1:1000,B:1"))
        if adaptive:
            mgr.adaptive = AdaptivePolicy(sim, AdaptiveSpec())
        mgr.register_stream(1, "A")
        return sim, mgr

    def test_violations_multiply_slo_boost_capped(self):
        sim, mgr = self._manager(adaptive=True)
        state = mgr.tenants["A"]
        mgr.note_latency(1, 5000.0, sim.now)
        assert state.slo_boost == pytest.approx(1.5)
        mgr.note_latency(1, 5000.0, sim.now)
        assert state.slo_boost == pytest.approx(2.25)
        for _ in range(10):
            mgr.note_latency(1, 5000.0, sim.now)
        assert state.slo_boost == pytest.approx(4.0)      # capped
        # The boost actually moves budgets, not just a counter.
        assert mgr.tenants["A"].bucket.rate \
            > mgr.tenants["B"].bucket.rate

    def test_clean_reads_decay_the_boost(self):
        sim, mgr = self._manager(adaptive=True)
        state = mgr.tenants["A"]
        for _ in range(12):
            mgr.note_latency(1, 5000.0, sim.now)
        assert state.slo_boost == pytest.approx(4.0)
        for _ in range(64):
            mgr.note_latency(1, 10.0, sim.now)
        assert state.slo_boost == pytest.approx(3.0)

    def test_without_adaptive_violations_only_counted(self):
        sim, mgr = self._manager(adaptive=False)
        state = mgr.tenants["A"]
        mgr.note_latency(1, 5000.0, sim.now)
        assert state.slo_violations == 1
        assert state.slo_boost == 1.0
        assert mgr.tenants["A"].bucket.rate \
            == pytest.approx(mgr.tenants["B"].bucket.rate)
