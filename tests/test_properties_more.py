"""Additional property-based tests across the stack."""

import random

from hypothesis import given, settings, strategies as st

from repro.os.config import KernelConfig
from repro.os.kernel import Kernel
from repro.os.readahead import ReadaheadState
from repro.sim import Simulator
from repro.sim.sync import Lock, RwLock
from tests.conftest import drive

KB = 1 << 10
MB = 1 << 20


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(1, 64)),
                min_size=1, max_size=60),
       st.integers(4, 64))
def test_readahead_plans_always_within_file(accesses, ra_pages):
    """Whatever the access sequence, plans never exceed file bounds and
    the window never exceeds its cap."""
    ra = ReadaheadState(ra_pages=ra_pages)
    nblocks = 10_100
    for start, count in accesses:
        plan = ra.on_demand_miss(start, count, nblocks)
        assert 0 <= ra.window <= ra.max_window
        if plan.sync_count:
            assert plan.sync_start >= 0
            assert plan.sync_start + plan.sync_count <= nblocks
            assert plan.marker is None or \
                plan.sync_start <= plan.marker \
                < plan.sync_start + plan.sync_count
        if plan.marker is not None:
            plan2 = ra.on_marker_hit(plan.marker, nblocks)
            if plan2.sync_count:
                assert plan2.sync_start + plan2.sync_count <= nblocks


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["r", "w"]), min_size=2, max_size=12),
       st.integers(0, 2**32 - 1))
def test_rwlock_never_mixes_readers_and_writer(kinds, seed):
    """Randomized interleavings: at no instant do a writer and a reader
    hold the lock together, and everyone eventually finishes."""
    sim = Simulator()
    rw = RwLock(sim)
    rng = random.Random(seed)
    state = {"readers": 0, "writer": 0, "max_readers": 0}
    finished = []

    def actor(kind, delay, hold):
        yield sim.timeout(delay)
        if kind == "r":
            yield rw.acquire_read()
            state["readers"] += 1
            state["max_readers"] = max(state["max_readers"],
                                       state["readers"])
            assert state["writer"] == 0
            yield sim.timeout(hold)
            state["readers"] -= 1
            rw.release_read()
        else:
            yield rw.acquire_write()
            state["writer"] += 1
            assert state["writer"] == 1
            assert state["readers"] == 0
            yield sim.timeout(hold)
            state["writer"] -= 1
            rw.release_write()
        finished.append(kind)

    for kind in kinds:
        sim.process(actor(kind, rng.uniform(0, 5), rng.uniform(0, 5)))
    sim.run()
    assert len(finished) == len(kinds)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 8), st.integers(0, 2**32 - 1))
def test_lock_fairness_fifo(nworkers, seed):
    """Lock grants follow arrival order exactly."""
    sim = Simulator()
    lock = Lock(sim)
    rng = random.Random(seed)
    arrivals = sorted((rng.uniform(0, 10), i) for i in range(nworkers))
    grants = []

    def worker(index, at):
        yield sim.timeout(at)
        yield lock.acquire()
        grants.append(index)
        yield sim.timeout(20)  # everyone overlaps in the queue
        lock.release()

    for at, index in arrivals:
        sim.process(worker(index, at))
    sim.run()
    assert grants == [i for _at, i in arrivals]


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 63), st.integers(1, 16)),
                min_size=1, max_size=20))
def test_vfs_reads_idempotent_for_residency(ranges):
    """Reading the same ranges twice leaves residency identical and the
    second pass is all hits (readahead off, ample memory)."""
    kernel = Kernel(memory_bytes=32 * MB,
                    config=KernelConfig(per_inode_lru=False))
    inode = kernel.create_file("/p", 64 * 4 * KB)

    def body():
        f = kernel.vfs.open_sync("/p")
        yield from kernel.vfs.fadvise(f, "random")
        for start, count in ranges:
            count = min(count, 64 - start)
            if count <= 0:
                continue
            yield from kernel.vfs.read(f, start * 4 * KB, count * 4 * KB)
        first = inode.cache.cached_pages
        misses2 = 0
        for start, count in ranges:
            count = min(count, 64 - start)
            if count <= 0:
                continue
            r = yield from kernel.vfs.read(f, start * 4 * KB,
                                           count * 4 * KB)
            misses2 += r.miss_pages
        return first, inode.cache.cached_pages, misses2

    first, second, misses2 = drive(kernel, body())
    assert first == second
    assert misses2 == 0
    kernel.shutdown()
