"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(5.0)
        seen.append(sim.now)
        yield sim.timeout(2.5)
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [5.0, 7.5]
    assert sim.now == 7.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc():
        value = yield sim.timeout(1.0, value="payload")
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == ["payload"]


def test_processes_interleave_by_time():
    sim = Simulator()
    order = []

    def proc(name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.process(proc("b", 2))
    sim.process(proc("a", 1))
    sim.process(proc("c", 3))
    sim.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_via_yield_from():
    sim = Simulator()

    def inner():
        yield sim.timeout(1)
        return 41

    def outer():
        value = yield from inner()
        return value + 1

    proc = sim.process(outer())
    sim.run()
    assert proc.value == 42


def test_process_waits_on_process():
    sim = Simulator()

    def worker():
        yield sim.timeout(3)
        return "done"

    def waiter(target):
        value = yield target
        return value

    worker_proc = sim.process(worker())
    waiter_proc = sim.process(waiter(worker_proc))
    sim.run()
    assert waiter_proc.value == "done"
    assert sim.now == 3


def test_event_succeed_once_only():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimulationError):
        _ = ev.value


def test_failed_event_propagates_into_waiter():
    sim = Simulator()

    def proc(ev):
        with pytest.raises(ValueError):
            yield ev

    ev = Event(sim)
    sim.process(proc(ev))
    ev.fail(ValueError("boom"))
    sim.run()


def test_unwaited_failure_surfaces_from_run():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        raise RuntimeError("unhandled")

    sim.process(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_all_of_collects_values():
    sim = Simulator()

    def proc():
        values = yield sim.all_of([sim.timeout(1, "a"),
                                   sim.timeout(3, "b"),
                                   sim.timeout(2, "c")])
        return values

    p = sim.process(proc())
    sim.run()
    assert p.value == ["a", "b", "c"]
    assert sim.now == 3


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc():
        values = yield sim.all_of([])
        return values

    p = sim.process(proc())
    sim.run()
    assert p.value == []


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc():
        first = yield sim.any_of([sim.timeout(5, "slow"),
                                  sim.timeout(1, "fast")])
        return first.value

    p = sim.process(proc())
    sim.run(until=10)
    assert p.value == "fast"


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_yield_non_event_raises_in_process():
    sim = Simulator()

    def proc():
        with pytest.raises(SimulationError):
            yield 42
        return "recovered"

    p = sim.process(proc())
    sim.run()
    assert p.value == "recovered"


def test_interrupt_terminates_idle_process_quietly():
    sim = Simulator()

    def daemon():
        while True:
            yield sim.timeout(100)

    def killer(target):
        yield sim.timeout(5)
        target.interrupt("stop")

    d = sim.process(daemon())
    sim.process(killer(d))
    sim.run(until=50)
    assert d.processed
    assert d.ok


def test_interrupt_catchable():
    sim = Simulator()
    caught = []

    def daemon():
        try:
            yield sim.timeout(100)
        except Interrupt as exc:
            caught.append(exc.cause)
        return "cleaned"

    def killer(target):
        yield sim.timeout(5)
        target.interrupt("reason")

    d = sim.process(daemon())
    sim.process(killer(d))
    sim.run()
    assert caught == ["reason"]
    assert d.value == "cleaned"


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_stops_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)

    sim.process(proc())
    final = sim.run(until=10)
    assert final == 10


def test_run_drains_heap_naturally():
    sim = Simulator()

    def proc():
        for _ in range(3):
            yield sim.timeout(1)

    sim.process(proc())
    assert sim.run() == 3.0


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(name):
        yield sim.timeout(1)
        order.append(name)

    for name in "abc":
        sim.process(proc(name))
    sim.run()
    assert order == ["a", "b", "c"]


# -- interrupt/failure edge cases ------------------------------------------


def test_interrupt_while_waiting_on_all_of():
    """Interrupting a process parked on a composite event must detach
    its resume callback: when the children later fire, the process is
    not resumed a second time."""
    sim = Simulator()
    log = []

    def waiter():
        try:
            yield sim.all_of([sim.timeout(50), sim.timeout(80)])
            log.append("completed")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause))
            # Keep living past the children's fire times.
            yield sim.timeout(100)
            log.append("after")

    def killer(target):
        yield sim.timeout(10)
        target.interrupt("stop")

    p = sim.process(waiter())
    sim.process(killer(p))
    sim.run()
    assert log == [("interrupted", "stop"), "after"]


def test_interrupt_while_waiting_on_any_of():
    sim = Simulator()
    log = []

    def waiter():
        try:
            yield sim.any_of([sim.timeout(50), sim.timeout(80)])
            log.append("completed")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause))
            yield sim.timeout(100)
            log.append("after")

    def killer(target):
        yield sim.timeout(10)
        target.interrupt("teardown")

    p = sim.process(waiter())
    sim.process(killer(p))
    sim.run()
    assert log == [("interrupted", "teardown"), "after"]


def test_any_of_child_failure_propagates_first():
    """AnyOf fails as soon as its first child fails, even when another
    child would have succeeded later."""
    sim = Simulator()
    seen = []

    def failer(ev):
        yield sim.timeout(5)
        ev.fail(RuntimeError("boom"))

    def waiter(ev):
        try:
            yield sim.any_of([ev, sim.timeout(50)])
            seen.append("ok")
        except RuntimeError as exc:
            seen.append(("failed", str(exc), sim.now))

    ev = sim.event()
    sim.process(failer(ev))
    sim.process(waiter(ev))
    sim.run()
    assert seen == [("failed", "boom", 5.0)]


def test_all_of_child_failure_propagates():
    sim = Simulator()
    seen = []

    def waiter():
        ev = sim.event()
        ev.fail(ValueError("bad"), delay=1)
        try:
            yield sim.all_of([sim.timeout(50), ev])
        except ValueError as exc:
            seen.append(str(exc))

    sim.process(waiter())
    sim.run()
    assert seen == ["bad"]


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")
    # The event must still be usable after the rejected fail().
    ev.succeed(42)
    sim.run()
    assert ev.value == 42
