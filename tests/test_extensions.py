"""Tests for the extension features: Markov/hybrid predictors, the
Leap-style baseline, and event tracing."""

import pytest

from repro.crosslib.config import CrossLibConfig
from repro.crosslib.markov import (
    HybridPredictor,
    MarkovPredictor,
    build_predictor,
)
from repro.crosslib.predictor import PatternPredictor
from repro.crosslib.runtime import CrossLibRuntime
from repro.os.kernel import Kernel
from repro.runtimes.base import HINT_RANDOM
from repro.runtimes.leap import LeapRuntime
from repro.sim.trace import Tracer
from tests.conftest import drive

KB = 1 << 10
MB = 1 << 20


class TestMarkovPredictor:
    def _loop(self, predictor, regions, repeats=4):
        blocks = CrossLibConfig().markov_region_blocks
        for _ in range(repeats):
            for region in regions:
                predictor.observe(region * blocks, 4)

    def test_learns_repeating_sequence(self):
        p = MarkovPredictor()
        self._loop(p, [0, 7, 3, 11])
        # Current region is 11; next in the loop is 0.
        plan = p.plan(nblocks=100_000, relaxed=True)
        assert plan is not None
        assert plan.start == 0

    def test_no_plan_without_confidence(self):
        p = MarkovPredictor()
        blocks = CrossLibConfig().markov_region_blocks
        p.observe(0 * blocks, 4)
        p.observe(5 * blocks, 4)  # single sample: below min_samples
        assert p.plan(100_000, relaxed=True) is None

    def test_conflicting_successors_below_confidence(self):
        cfg = CrossLibConfig(markov_min_samples=2,
                             markov_confidence=0.8)
        p = MarkovPredictor(cfg)
        blocks = cfg.markov_region_blocks
        # region 0 followed by 1, 2, 3 equally: no 80% favourite.
        for nxt in (1, 2, 3):
            p.observe(0, 4)
            p.observe(nxt * blocks, 4)
        p.observe(0, 4)
        assert p.plan(100_000, relaxed=True) is None

    def test_plan_clamped_to_file(self):
        cfg = CrossLibConfig(markov_min_samples=1,
                             markov_confidence=0.1)
        p = MarkovPredictor(cfg)
        blocks = cfg.markov_region_blocks
        self._loop(p, [0, 2])
        p.observe(0, 4)
        plan = p.plan(nblocks=2 * blocks + 10, relaxed=True)
        assert plan is not None
        assert plan.start + plan.count <= 2 * blocks + 10


class TestHybridPredictor:
    def test_sequential_uses_counter(self):
        p = HybridPredictor()
        pos = 0
        for _ in range(10):
            p.observe(pos, 4)
            pos += 4
        plan = p.plan(100_000, relaxed=False)
        assert plan is not None
        assert plan.start == pos  # counter-style continuation

    def test_random_jumps_fall_back_to_markov(self):
        cfg = CrossLibConfig(markov_min_samples=2,
                             markov_confidence=0.5)
        p = HybridPredictor(cfg)
        blocks = cfg.markov_region_blocks
        for _ in range(5):
            p.observe(0, 4)
            p.observe(40 * blocks, 4)   # far repeating jump
        plan = p.plan(100_000, relaxed=False)
        # Counter sees random; Markov predicts region 0 after 40.
        assert plan is not None
        assert plan.start == 0


class TestPredictorFactory:
    def test_kinds(self):
        assert isinstance(build_predictor(CrossLibConfig()),
                          PatternPredictor)
        assert isinstance(
            build_predictor(CrossLibConfig(predictor_kind="markov")),
            MarkovPredictor)
        assert isinstance(
            build_predictor(CrossLibConfig(predictor_kind="hybrid")),
            HybridPredictor)
        with pytest.raises(ValueError):
            build_predictor(CrossLibConfig(predictor_kind="oracle"))

    def test_runtime_accepts_markov_predictor(self, kernel):
        kernel.create_file("/a", 4 * MB)
        runtime = CrossLibRuntime(
            kernel, CrossLibConfig(predictor_kind="hybrid",
                                   aggressive=False))

        def body():
            h = yield from runtime.open("/a", HINT_RANDOM)
            for _ in range(3):
                yield from runtime.pread(h, 0, 16 * KB)
                yield from runtime.pread(h, 2 * MB, 16 * KB)

        drive(kernel, body())
        runtime.teardown()


class TestLeapRuntime:
    def test_majority_trend_detected(self, plain_kernel):
        plain_kernel.create_file("/a", 16 * MB)
        runtime = LeapRuntime(plain_kernel)

        def body():
            h = yield from runtime.open("/a", HINT_RANDOM)
            # Strided stream: constant +8 block delta.
            pos = 0
            for _ in range(24):
                yield from runtime.pread(h, pos, 16 * KB)
                pos += 8 * 4096

        drive(plain_kernel, body())
        assert runtime.trend_prefetches > 0
        assert plain_kernel.registry.get("fill.leap_trend") > 0

    def test_no_trend_on_random(self, plain_kernel):
        import random
        plain_kernel.create_file("/a", 16 * MB)
        runtime = LeapRuntime(plain_kernel)
        rng = random.Random(9)

        def body():
            h = yield from runtime.open("/a", HINT_RANDOM)
            for _ in range(24):
                off = rng.randrange(0, 15 * MB) // 4096 * 4096
                yield from runtime.pread(h, off, 16 * KB)

        drive(plain_kernel, body())
        assert runtime.trend_prefetches <= 2  # coincidences at most

    def test_trend_prefetch_improves_strided_misses(self, plain_kernel):
        plain_kernel.create_file("/a", 32 * MB)
        runtime = LeapRuntime(plain_kernel)

        def body():
            h = yield from runtime.open("/a", HINT_RANDOM)
            pos = 0
            while pos < 24 * MB:
                yield from runtime.pread(h, pos, 16 * KB)
                pos += 40 * 4096  # beyond kernel ra's 32-block window

        drive(plain_kernel, body())
        hits = plain_kernel.registry.get("cache.demand_hits")
        misses = plain_kernel.registry.get("cache.demand_misses")
        assert hits / (hits + misses) > 0.4


class TestTracer:
    def test_record_and_query(self):
        tracer = Tracer(capacity=10)
        tracer.record(1.0, "read", inode=1, block=0)
        tracer.record(2.0, "fill", inode=1, pages=8)
        assert len(tracer) == 2
        assert tracer.count("read") == 1
        assert tracer.last("fill").attr("pages") == 8
        assert list(tracer.events("read"))[0].time == 1.0

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record(float(i), "e", i=i)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert list(tracer.events())[0].attr("i") == 2

    def test_between(self):
        tracer = Tracer()
        for i in range(10):
            tracer.record(float(i), "tick")
        assert len(list(tracer.between(3, 6))) == 4

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(0.0, "x")
        assert len(tracer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_kernel_integration(self):
        tracer = Tracer()
        kernel = Kernel(memory_bytes=32 * MB, cross_enabled=True,
                        tracer=tracer)
        kernel.create_file("/a", 1 * MB)

        def body():
            f = kernel.vfs.open_sync("/a")
            yield from kernel.vfs.read(f, 0, 64 * KB)
            from repro.os.crossos import CacheInfo
            yield from kernel.cross.readahead_info(
                f, CacheInfo(offset=0, nbytes=256 * KB))

        drive(kernel, body())
        assert tracer.count("read") >= 1
        assert tracer.count("readahead_info") == 1
        assert "read" in tracer.summary()
        kernel.shutdown()

    def test_ring_wraparound_keeps_index_consistent(self):
        # Regression: record() used list.pop(0) (O(n) per drop) and
        # between() rebuilt the whole time list per query.  Push twice
        # the capacity through and check drops, ordering, and range
        # queries against the retained window.
        capacity = 64
        tracer = Tracer(capacity=capacity)
        total = 2 * capacity
        for i in range(total):
            tracer.record(float(i), "tick", i=i)
        assert len(tracer) == capacity
        assert tracer.dropped == capacity
        assert tracer.recorded == total
        retained = list(tracer.events())
        assert [e.attr("i") for e in retained] == \
            list(range(capacity, total))
        times = [e.time for e in retained]
        assert times == sorted(times)
        # between() on the surviving window, straddling the drop
        # boundary, and fully inside the dropped prefix.
        got = [e.attr("i") for e in tracer.between(capacity + 5,
                                                   capacity + 9)]
        assert got == list(range(capacity + 5, capacity + 10))
        assert [e.attr("i") for e in tracer.between(0, capacity - 1)] == []
        straddle = [e.attr("i") for e in tracer.between(10, capacity + 2)]
        assert straddle == list(range(capacity, capacity + 3))

    def test_between_after_many_wraps(self):
        tracer = Tracer(capacity=8)
        for i in range(100):
            tracer.record(float(i), "tick", i=i)
        assert [e.attr("i") for e in tracer.between(95, 97)] == [95, 96, 97]
        tracer.clear()
        tracer.record(1.0, "tick", i=0)
        assert [e.attr("i") for e in tracer.between(0, 2)] == [0]

    def test_event_str_and_clear(self):
        tracer = Tracer()
        tracer.record(5.0, "demo", a=1)
        text = str(tracer.last())
        assert "demo" in text and "a=1" in text
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.last() is None
