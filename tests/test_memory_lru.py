"""Tests for the chunk LRU and the memory manager."""

import pytest

from repro.os.lru import ChunkLru
from repro.os.memory import MemoryManager
from repro.os.kernel import Kernel

MB = 1 << 20


class TestChunkLru:
    def test_insert_and_victim_order(self):
        lru = ChunkLru()
        for chunk in range(5):
            lru.inserted((1, chunk))
        assert lru.pop_victim() == (1, 0)
        assert lru.pop_victim() == (1, 1)

    def test_touch_promotes_on_second_reference(self):
        lru = ChunkLru()
        lru.inserted((1, 0))
        lru.inserted((1, 1))
        lru.touched((1, 0))           # referenced
        assert lru.active_count == 0
        lru.touched((1, 0))           # promoted
        assert lru.active_count == 1
        # Victim must now be the never-touched chunk.
        assert lru.pop_victim() == (1, 1)

    def test_removed(self):
        lru = ChunkLru()
        lru.inserted((1, 0))
        lru.removed((1, 0))
        assert lru.pop_victim() is None
        assert len(lru) == 0

    def test_refill_from_active_when_inactive_empty(self):
        lru = ChunkLru()
        for chunk in range(3):
            lru.inserted((1, chunk))
            lru.touched((1, chunk))
            lru.touched((1, chunk))
        assert lru.inactive_count == 0
        victim = lru.pop_victim()
        assert victim == (1, 0)  # oldest active demoted first

    def test_exclude_protects_fresh_chunk(self):
        lru = ChunkLru()
        lru.inserted((1, 0))
        victim = lru.pop_victim(exclude={(1, 0)})
        assert victim is None
        # the protected chunk survives
        assert (1, 0) in lru

    def test_exclude_skips_to_next_victim(self):
        lru = ChunkLru()
        lru.inserted((1, 0))
        lru.inserted((1, 1))
        victim = lru.pop_victim(exclude={(1, 0)})
        assert victim == (1, 1)
        assert (1, 0) in lru

    def test_excluded_chunk_stays_coldest(self):
        """Protection must not rejuvenate: once the exclusion is lifted,
        the previously protected chunk is the very next victim."""
        lru = ChunkLru()
        for chunk in range(4):
            lru.inserted((1, chunk))
        assert lru.pop_victim(exclude={(1, 0)}) == (1, 1)
        assert lru.pop_victim() == (1, 0)

    def test_multiple_excluded_keep_relative_order(self):
        lru = ChunkLru()
        for chunk in range(5):
            lru.inserted((1, chunk))
        assert lru.pop_victim(exclude={(1, 0), (1, 1)}) == (1, 2)
        # Both skipped chunks went back to the head in original order.
        assert lru.pop_victim() == (1, 0)
        assert lru.pop_victim() == (1, 1)
        assert lru.pop_victim() == (1, 3)

    def test_keys_covers_both_lists(self):
        lru = ChunkLru()
        lru.inserted((1, 0))
        lru.inserted((1, 1))
        lru.touched((1, 0))
        lru.touched((1, 0))  # promoted to active
        assert set(lru.keys()) == {(1, 0), (1, 1)}

    def test_contains(self):
        lru = ChunkLru()
        assert (1, 0) not in lru
        lru.inserted((1, 0))
        assert (1, 0) in lru


class TestMemoryManager:
    def test_charge_and_uncharge(self):
        mem = MemoryManager(total_pages=100)
        mem.charge(40)
        assert mem.used_pages == 40
        assert mem.free_pages == 60
        mem.uncharge(10)
        assert mem.used_pages == 30

    def test_uncharge_below_zero_raises(self):
        mem = MemoryManager(total_pages=10)
        with pytest.raises(RuntimeError):
            mem.uncharge(1)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            MemoryManager(total_pages=0)
        with pytest.raises(ValueError):
            MemoryManager(total_pages=10, chunk_blocks=0)

    def test_free_fraction(self):
        mem = MemoryManager(total_pages=200)
        mem.charge(50)
        assert mem.free_fraction == pytest.approx(0.75)


class TestReclaimIntegration:
    """Reclaim through a real kernel so evictions hit a real cache."""

    def _fill(self, kernel, path, nbytes):
        inode = kernel.create_file(path, nbytes)

        def filler():
            file = kernel.vfs.open_sync(path)
            pos = 0
            while pos < nbytes:
                yield from kernel.vfs.read(file, pos, 1 * MB)
                pos += 1 * MB

        kernel.sim.process(filler())
        kernel.run()
        return inode

    def test_memory_stays_bounded_under_oversubscription(self):
        kernel = Kernel(memory_bytes=8 * MB, cross_enabled=False)
        self._fill(kernel, "/big", 32 * MB)
        assert kernel.mem.used_pages <= kernel.mem.total_pages
        assert kernel.mem.reclaimed_pages > 0
        kernel.shutdown()

    def test_eviction_clears_cache_bits(self):
        kernel = Kernel(memory_bytes=8 * MB, cross_enabled=True)
        inode = self._fill(kernel, "/big", 32 * MB)
        cached = inode.cache.cached_pages
        assert cached <= kernel.mem.total_pages
        # Cross-OS bitmap mirrors residency even through eviction.
        assert inode.cross.bitmap.count_set() == cached
        kernel.shutdown()

    def test_no_reclaim_when_memory_fits(self):
        kernel = Kernel(memory_bytes=64 * MB, cross_enabled=False)
        self._fill(kernel, "/small", 4 * MB)
        assert kernel.mem.reclaimed_pages == 0
        kernel.shutdown()

    def test_streaming_read_makes_progress_at_tiny_memory(self):
        """Regression: self-eviction livelock under memory pressure."""
        kernel = Kernel(memory_bytes=2 * MB, cross_enabled=False)
        self._fill(kernel, "/big", 16 * MB)  # would hang before the fix
        assert kernel.mem.used_pages <= kernel.mem.total_pages + 512
        kernel.shutdown()
