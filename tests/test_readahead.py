"""Tests for the Linux-style readahead state machine."""

from repro.os.readahead import ReadaheadState


class TestWindowGrowth:
    def test_initial_window_on_fresh_sequential_stream(self):
        ra = ReadaheadState(ra_pages=32)
        plan = ra.on_demand_miss(0, 4, nblocks=10_000)
        assert plan.sync_count > 0
        assert plan.sync_start == 4
        assert ra.window == 8  # max(4, 2*count)

    def test_window_doubles_up_to_cap(self):
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(0, 4, 10_000)
        pos = 4
        for _ in range(4):
            plan = ra.on_demand_miss(pos, 4, 10_000)
            pos += 4
        assert ra.window == 32  # capped at ra_pages

    def test_random_miss_collapses_window_and_plans_nothing(self):
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(0, 4, 10_000)
        plan = ra.on_demand_miss(5000, 4, 10_000)
        assert ra.window == 0
        assert plan.sync_count == 0

    def test_short_forward_stride_counts_as_sequential(self):
        """§3.1: jumps within the 32-block batch keep the stream alive."""
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(0, 4, 10_000)
        plan = ra.on_demand_miss(4 + 20, 4, 10_000)  # +20 block stride
        assert plan.sync_count > 0
        assert ra.window > 0

    def test_backward_access_is_random_to_the_kernel(self):
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(1000, 4, 10_000)
        plan = ra.on_demand_miss(996, 4, 10_000)
        assert plan.sync_count == 0
        assert ra.window == 0

    def test_plan_clamped_to_file_end(self):
        ra = ReadaheadState(ra_pages=32)
        plan = ra.on_demand_miss(0, 4, nblocks=6)
        assert plan.sync_start + plan.sync_count <= 6


class TestMarker:
    def test_marker_set_within_window(self):
        ra = ReadaheadState(ra_pages=32)
        plan = ra.on_demand_miss(0, 4, 10_000)
        assert plan.marker is not None
        assert plan.sync_start <= plan.marker \
            < plan.sync_start + plan.sync_count

    def test_marker_hit_grows_async_window(self):
        ra = ReadaheadState(ra_pages=32)
        plan = ra.on_demand_miss(0, 4, 10_000)
        before = ra.window
        plan2 = ra.on_marker_hit(plan.marker, 10_000)
        assert plan2.sync_count > 0
        assert ra.window >= before
        assert ra.async_triggers == 1

    def test_marker_hit_disabled(self):
        ra = ReadaheadState(ra_pages=32)
        ra.set_random()
        plan = ra.on_marker_hit(100, 10_000)
        assert plan.sync_count == 0


class TestHints:
    def test_fadvise_random_disables(self):
        ra = ReadaheadState(ra_pages=32)
        ra.set_random()
        plan = ra.on_demand_miss(0, 4, 10_000)
        assert plan.sync_count == 0
        assert not ra.enabled

    def test_fadvise_sequential_doubles_cap(self):
        ra = ReadaheadState(ra_pages=32)
        ra.set_sequential()
        assert ra.max_window == 64

    def test_fadvise_normal_restores(self):
        ra = ReadaheadState(ra_pages=32)
        ra.set_random()
        ra.set_normal()
        assert ra.enabled
        assert ra.max_window == 32

    def test_note_sequential_pos(self):
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(0, 4, 10_000)
        assert ra.note_sequential_pos(4, 4) is True
        assert ra.note_sequential_pos(100, 4) is False
