"""Tests for the Linux-style readahead state machine."""

from repro.os.readahead import ReadaheadState


class TestWindowGrowth:
    def test_initial_window_on_fresh_sequential_stream(self):
        ra = ReadaheadState(ra_pages=32)
        plan = ra.on_demand_miss(0, 4, nblocks=10_000)
        assert plan.sync_count > 0
        assert plan.sync_start == 4
        assert ra.window == 8  # max(4, 2*count)

    def test_window_doubles_up_to_cap(self):
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(0, 4, 10_000)
        pos = 4
        for _ in range(4):
            ra.on_demand_miss(pos, 4, 10_000)
            pos += 4
        assert ra.window == 32  # capped at ra_pages

    def test_random_miss_collapses_window_and_plans_nothing(self):
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(0, 4, 10_000)
        plan = ra.on_demand_miss(5000, 4, 10_000)
        assert ra.window == 0
        assert plan.sync_count == 0

    def test_short_forward_stride_counts_as_sequential(self):
        """§3.1: jumps within the 32-block batch keep the stream alive."""
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(0, 4, 10_000)
        plan = ra.on_demand_miss(4 + 20, 4, 10_000)  # +20 block stride
        assert plan.sync_count > 0
        assert ra.window > 0

    def test_backward_access_is_random_to_the_kernel(self):
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(1000, 4, 10_000)
        plan = ra.on_demand_miss(996, 4, 10_000)
        assert plan.sync_count == 0
        assert ra.window == 0

    def test_plan_clamped_to_file_end(self):
        ra = ReadaheadState(ra_pages=32)
        plan = ra.on_demand_miss(0, 4, nblocks=6)
        assert plan.sync_start + plan.sync_count <= 6


class TestMarker:
    def test_marker_set_within_window(self):
        ra = ReadaheadState(ra_pages=32)
        plan = ra.on_demand_miss(0, 4, 10_000)
        assert plan.marker is not None
        assert plan.sync_start <= plan.marker \
            < plan.sync_start + plan.sync_count

    def test_marker_hit_grows_async_window(self):
        ra = ReadaheadState(ra_pages=32)
        plan = ra.on_demand_miss(0, 4, 10_000)
        before = ra.window
        plan2 = ra.on_marker_hit(plan.marker, 10_000)
        assert plan2.sync_count > 0
        assert ra.window >= before
        assert ra.async_triggers == 1

    def test_marker_hit_disabled(self):
        ra = ReadaheadState(ra_pages=32)
        ra.set_random()
        plan = ra.on_marker_hit(100, 10_000)
        assert plan.sync_count == 0


class TestHints:
    def test_fadvise_random_disables(self):
        ra = ReadaheadState(ra_pages=32)
        ra.set_random()
        plan = ra.on_demand_miss(0, 4, 10_000)
        assert plan.sync_count == 0
        assert not ra.enabled

    def test_fadvise_sequential_doubles_cap(self):
        ra = ReadaheadState(ra_pages=32)
        ra.set_sequential()
        assert ra.max_window == 64

    def test_fadvise_normal_restores(self):
        ra = ReadaheadState(ra_pages=32)
        ra.set_random()
        ra.set_normal()
        assert ra.enabled
        assert ra.max_window == 32

    def test_note_sequential_pos(self):
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(0, 4, 10_000)
        assert ra.note_sequential_pos(4, 4) is True
        assert ra.note_sequential_pos(100, 4) is False

    def test_cached_short_stride_keeps_stream(self):
        """note_sequential_pos shares on_demand_miss's forward-stride
        tolerance: a gap of up to ra_pages over cached blocks keeps the
        window warm instead of killing the stream."""
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(0, 4, 10_000)    # prev_end = 4
        assert ra.note_sequential_pos(8, 4) is True    # gap 4
        assert ra.note_sequential_pos(12 + 32, 4) is True  # gap == cap
        prev_end = 12 + 32 + 4
        assert ra.note_sequential_pos(prev_end + 33, 4) is False

    def test_cached_backward_stride_breaks_stream(self):
        ra = ReadaheadState(ra_pages=32)
        ra.on_demand_miss(100, 4, 10_000)  # prev_end = 104
        assert ra.note_sequential_pos(50, 4) is False

    def test_stride_tolerance_matches_miss_path(self):
        """The same short forward stride that grows the window on a miss
        must keep the stream on a cached read (the S2 inconsistency)."""
        stride_gap = 16  # < ra_pages
        ra_miss = ReadaheadState(ra_pages=32)
        ra_miss.on_demand_miss(0, 4, 10_000)
        plan = ra_miss.on_demand_miss(4 + stride_gap, 4, 10_000)
        miss_sequential = plan.sync_count > 0 and ra_miss.window > 0

        ra_hit = ReadaheadState(ra_pages=32)
        ra_hit.on_demand_miss(0, 4, 10_000)
        hit_sequential = ra_hit.note_sequential_pos(4 + stride_gap, 4)
        assert hit_sequential == miss_sequential is True
