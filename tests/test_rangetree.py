"""Unit + property tests for the concurrent range tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.os.bitmap import BlockBitmap
from repro.sim import Simulator, StatsRegistry
from repro.crosslib.rangetree import RangeTree


@pytest.fixture
def tree():
    sim = Simulator()
    return RangeTree(sim, StatsRegistry(), nblocks=10_000,
                     node_blocks=1024)


class TestStructure:
    def test_nodes_created_lazily(self, tree):
        assert tree.node_count == 0
        tree.mark_cached(0, 10)
        assert tree.node_count == 1
        tree.mark_cached(5000, 10)
        assert tree.node_count == 2

    def test_nodes_for_spanning_range(self, tree):
        nodes = tree.nodes_for(1000, 100)  # crosses node 0 -> 1
        assert [n.index for n in nodes] == [0, 1]

    def test_nodes_for_empty(self, tree):
        assert tree.nodes_for(0, 0) == []

    def test_bad_node_blocks(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RangeTree(sim, StatsRegistry(), 100, node_blocks=0)


class TestBitmaps:
    def test_mark_and_missing(self, tree):
        tree.mark_cached(100, 50)
        missing = tree.missing_runs(0, 200)
        assert missing == [(0, 100), (150, 50)]

    def test_requested_counts_as_covered(self, tree):
        tree.mark_requested(0, 100)
        assert tree.missing_runs(0, 100) == []
        tree.clear_requested(0, 100)
        assert tree.missing_runs(0, 100) == [(0, 100)]

    def test_cross_node_runs_merge(self, tree):
        tree.mark_cached(1000, 100)  # spans node boundary at 1024
        assert tree.cached_runs(900, 300) == [(1000, 100)]
        assert tree.missing_runs(900, 300) == [(900, 100), (1100, 100)]

    def test_cached_count(self, tree):
        tree.mark_cached(1000, 100)
        assert tree.cached_count(0, 10_000) == 100
        assert tree.cached_count(1050, 10) == 10

    def test_clear_cached(self, tree):
        tree.mark_cached(0, 2048)
        tree.clear_cached(512, 1024)
        assert tree.cached_count(0, 2048) == 1024

    def test_load_window_across_nodes(self, tree):
        src = BlockBitmap(10_000)
        src.set_range(1000, 100)
        bits = src.window(900, 300)
        tree.load_window(900, 300, bits)
        assert tree.cached_runs(900, 300) == [(1000, 100)]


class TestLocking:
    def test_read_locks_shared(self):
        sim = Simulator()
        tree = RangeTree(sim, StatsRegistry(), 10_000, 1024)
        active = []

        def reader(name):
            section = tree.read_locked(0, 10)
            yield from section.acquire()
            active.append(name)
            yield sim.timeout(5)
            section.release()

        sim.process(reader("a"))
        sim.process(reader("b"))
        sim.run(until=1)
        assert sorted(active) == ["a", "b"]

    def test_write_locks_exclusive_per_node(self):
        sim = Simulator()
        registry = StatsRegistry()
        tree = RangeTree(sim, registry, 10_000, 1024)
        times = {}

        def writer(name, start):
            section = tree.write_locked(start, 10)
            yield from section.acquire()
            times[name] = sim.now
            yield sim.timeout(10)
            section.release()

        # Same node: serialized.  Different node: concurrent.
        sim.process(writer("same1", 0))
        sim.process(writer("same2", 20))
        sim.process(writer("other", 5000))
        sim.run()
        assert times["same1"] == 0
        assert times["same2"] == 10
        assert times["other"] == 0

    def test_multi_node_lock_ordering_no_deadlock(self):
        sim = Simulator()
        tree = RangeTree(sim, StatsRegistry(), 10_000, 1024)
        done = []

        def worker(name, start):
            for _ in range(5):
                section = tree.write_locked(start, 2000)  # 2-3 nodes
                yield from section.acquire()
                yield sim.timeout(1)
                section.release()
            done.append(name)

        sim.process(worker("a", 0))
        sim.process(worker("b", 1000))
        sim.process(worker("c", 2000))
        sim.run()
        assert sorted(done) == ["a", "b", "c"]

    def test_single_node_tree_serializes_everything(self):
        """range_tree=False mode: one node = one big lock."""
        sim = Simulator()
        registry = StatsRegistry()
        tree = RangeTree(sim, registry, 10_000, node_blocks=10_000,
                         category="crosslib_file")
        times = {}

        def writer(name, start):
            section = tree.write_locked(start, 10)
            yield from section.acquire()
            times[name] = sim.now
            yield sim.timeout(10)
            section.release()

        sim.process(writer("w1", 0))
        sim.process(writer("w2", 9000))
        sim.run()
        assert sorted(times.values()) == [0, 10]
        assert registry.lock_stats("crosslib_file").contended == 1


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["cached", "requested",
                                           "clear_req", "clear_cached"]),
                          st.integers(0, 4999), st.integers(1, 1500)),
                max_size=30))
def test_property_tree_matches_flat_bitmaps(ops):
    sim = Simulator()
    tree = RangeTree(sim, StatsRegistry(), 5000, node_blocks=512)
    cached = BlockBitmap(5000)
    requested = BlockBitmap(5000)
    for op, start, count in ops:
        count = min(count, 5000 - start)
        if count <= 0:
            continue
        if op == "cached":
            tree.mark_cached(start, count)
            cached.set_range(start, count)
        elif op == "requested":
            tree.mark_requested(start, count)
            requested.set_range(start, count)
        elif op == "clear_req":
            tree.clear_requested(start, count)
            requested.clear_range(start, count)
        else:
            tree.clear_cached(start, count)
            cached.clear_range(start, count)
    # missing = not cached and not requested, over random windows
    assert tree.cached_count(0, 5000) == cached.count_set()
    expected = []
    for run_s, run_n in cached.missing_runs(0, 5000):
        expected.extend(requested.missing_runs(run_s, run_n))
    # merge adjacency like the tree does
    merged = []
    for s, c in expected:
        if merged and merged[-1][0] + merged[-1][1] == s:
            merged[-1] = (merged[-1][0], merged[-1][1] + c)
        else:
            merged.append((s, c))
    assert tree.missing_runs(0, 5000) == merged
