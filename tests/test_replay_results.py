"""Tests for trace replay and results persistence/comparison."""

import pytest

from repro.harness.metrics import ApproachMetrics
from repro.harness.results import (
    compare_results,
    load_results,
    save_results,
)
from repro.os.kernel import Kernel
from repro.runtimes import build_runtime
from repro.workloads.replay import (
    TraceRecord,
    load_trace,
    replay_trace,
    synthesize_trace,
)

KB = 1 << 10
MB = 1 << 20


class TestTraceParsing:
    def test_load_trace_text(self):
        text = """
        # a comment
        0 open /data/a
        0 read /data/a 0 16384
        0 write /data/a 16384 4096
        0 close /data/a
        """
        records = load_trace(text.splitlines())
        assert len(records) == 4
        assert records[1] == TraceRecord(0, "read", "/data/a", 0, 16384)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(0, "scribble", "/a")

    def test_bad_field_count(self):
        with pytest.raises(ValueError):
            load_trace(["0 read /a 0"])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(0, "read", "/a", -1, 10)

    def test_synthesize_deterministic(self):
        a = synthesize_trace(seed=5)
        b = synthesize_trace(seed=5)
        assert a == b
        assert a != synthesize_trace(seed=6)


class TestReplay:
    def _replay(self, records, approach="OSonly", memory=64 * MB):
        from repro.runtimes.factory import needs_cross
        kernel = Kernel(memory_bytes=memory,
                        cross_enabled=needs_cross(approach))
        runtime = build_runtime(approach, kernel)
        metrics = replay_trace(kernel, runtime, records)
        runtime.teardown()
        kernel.shutdown()
        return metrics

    def test_replay_reads_and_writes(self):
        records = load_trace([
            "0 open /t/a",
            "0 read /t/a 0 65536",
            "0 write /t/a 65536 16384",
            "0 close /t/a",
        ])
        metrics = self._replay(records)
        assert metrics.bytes_read == 65536
        assert metrics.bytes_written == 16384
        assert metrics.ops == 4
        assert len(metrics.latencies_us) == 4

    def test_replay_creates_files_sized_to_trace(self):
        records = [TraceRecord(0, "read", "/big/x", 100 * MB, 64 * KB)]
        kernel = Kernel(memory_bytes=64 * MB)
        runtime = build_runtime("OSonly", kernel)
        replay_trace(kernel, runtime, records)
        assert kernel.vfs.lookup("/big/x").size >= 100 * MB + 64 * KB
        runtime.teardown()
        kernel.shutdown()

    def test_implicit_open_on_read(self):
        records = [TraceRecord(0, "read", "/t/i", 0, 4096)]
        metrics = self._replay(records)
        assert metrics.bytes_read == 4096

    def test_multi_thread_replay(self):
        records = synthesize_trace(nthreads=4, ops_per_thread=50)
        metrics = self._replay(records)
        assert metrics.ops == 4 * 52  # opens + reads + closes
        assert metrics.p99_us >= metrics.p50_us > 0

    def test_crossprefetch_improves_backward_trace(self):
        """A backward stream (kernel readahead's blind spot) replayed
        under both runtimes: CROSS-LIB's direction-aware prefetching
        must win decisively."""
        records = []
        for thread in range(2):
            path = f"/rt/f{thread}"
            records.append(TraceRecord(thread, "open", path))
            pos = 16 * MB
            for _ in range(400):
                pos -= 16 * KB
                records.append(TraceRecord(thread, "read", path, pos,
                                           16 * KB))
                records.append(TraceRecord(thread, "think", path, 0, 20))
            records.append(TraceRecord(thread, "close", path))
        base = self._replay(records, "APPonly")
        cross = self._replay(records, "CrossP[+predict+opt]")
        assert cross.duration_us < 0.7 * base.duration_us
        assert cross.miss_pages < base.miss_pages

    def test_think_records_advance_time_only(self):
        records = [TraceRecord(0, "think", "/t/none", 0, 5000)]
        metrics = self._replay(records)
        assert metrics.bytes_read == 0
        assert metrics.duration_us >= 5000


class TestResultsPersistence:
    def _metrics(self, name, mbps):
        return ApproachMetrics(approach=name, duration_us=1e6,
                               bytes_read=int(mbps * MB))

    def test_save_and_load_flat(self, tmp_path):
        results = {"A": self._metrics("A", 100.0)}
        path = save_results(results, tmp_path / "r.json",
                            experiment="fig5")
        data = load_results(path)
        assert data["experiment"] == "fig5"
        assert data["cells"]["A"]["throughput_mbps"] \
            == pytest.approx(100.0)

    def test_save_nested_results(self, tmp_path):
        results = {"1:2": {"A": self._metrics("A", 10.0)}}
        path = save_results(results, tmp_path / "n.json")
        data = load_results(path)
        assert "1:2/A" in data["cells"]

    def test_compare_flags_large_deltas(self, tmp_path):
        old = save_results({"A": self._metrics("A", 100.0),
                            "B": self._metrics("B", 50.0)},
                           tmp_path / "old.json")
        new = save_results({"A": self._metrics("A", 100.0),
                            "B": self._metrics("B", 80.0)},
                           tmp_path / "new.json")
        report = compare_results(load_results(old), load_results(new))
        assert "1 cell(s) changed" in report
        assert "<<" in report

    def test_compare_handles_missing_cells(self, tmp_path):
        old = save_results({"A": self._metrics("A", 1.0)},
                           tmp_path / "o.json")
        new = save_results({"B": self._metrics("B", 1.0)},
                           tmp_path / "n.json")
        report = compare_results(load_results(old), load_results(new))
        assert report.count("missing") == 2


class TestLatencyPercentiles:
    def test_percentiles(self):
        metrics = ApproachMetrics(approach="x",
                                  latencies_us=list(range(1, 101)))
        assert metrics.p50_us == pytest.approx(50.5)
        assert metrics.p99_us == pytest.approx(99.01)
        assert metrics.mean_latency_us == pytest.approx(50.5)

    def test_empty_and_single(self):
        assert ApproachMetrics(approach="x").p99_us == 0.0
        one = ApproachMetrics(approach="x", latencies_us=[7.0])
        assert one.p50_us == 7.0

    def test_out_of_range_rejected(self):
        metrics = ApproachMetrics(approach="x", latencies_us=[1.0])
        with pytest.raises(ValueError):
            metrics.latency_percentile(101)
