"""Tests for the stats registry and lock accounting (repro.sim.stats)."""

from repro.sim.engine import Simulator
from repro.sim.observe import Observer
from repro.sim.stats import Counter, LockStats, StatsRegistry
from repro.sim.trace import Tracer


class TestCounter:
    def test_default_increment_and_amount(self):
        c = Counter("ops")
        c.add()
        c.add(2.5)
        assert c.value == 3.5


class TestLockStats:
    def test_uncontended_acquire_counts_no_wait(self):
        stats = LockStats("cache_tree")
        stats.record_acquire(0.0)
        assert stats.acquisitions == 1
        assert stats.contended == 0
        assert stats.total_wait == 0.0

    def test_contended_acquire_accumulates_wait(self):
        stats = LockStats("cache_tree")
        stats.record_acquire(0.0)
        stats.record_acquire(12.5)
        stats.record_acquire(7.5)
        assert stats.acquisitions == 3
        assert stats.contended == 2
        assert stats.total_wait == 20.0

    def test_record_hold(self):
        stats = LockStats("inode")
        stats.record_hold(4.0)
        stats.record_hold(1.0)
        assert stats.total_hold == 5.0


class TestStatsRegistry:
    def test_lock_stats_is_idempotent_per_category(self):
        reg = StatsRegistry()
        a = reg.lock_stats("cache_tree")
        b = reg.lock_stats("cache_tree")
        assert a is b

    def test_total_lock_wait_sums_categories(self):
        reg = StatsRegistry()
        reg.lock_stats("a").record_acquire(10.0)
        reg.lock_stats("b").record_acquire(15.0)
        assert reg.total_lock_wait == 25.0

    def test_lock_wait_fraction_clamps_at_one(self):
        reg = StatsRegistry()
        reg.lock_stats("a").record_acquire(500.0)
        assert reg.lock_wait_fraction(1000.0) == 0.5
        assert reg.lock_wait_fraction(100.0) == 1.0
        assert reg.lock_wait_fraction(0.0) == 0.0
        assert reg.lock_wait_fraction(-5.0) == 0.0

    def test_snapshot_key_layout(self):
        reg = StatsRegistry()
        reg.count("syscalls.read", 3)
        lock = reg.lock_stats("cache_tree")
        lock.record_acquire(0.0)
        lock.record_acquire(8.0)
        snap = reg.snapshot()
        assert snap["syscalls.read"] == 3
        assert snap["lock.cache_tree.wait"] == 8.0
        assert snap["lock.cache_tree.acquisitions"] == 2.0
        assert snap["lock.cache_tree.contended"] == 1.0
        # Exactly the counter keys plus three keys per lock category.
        assert set(snap) == {"syscalls.read", "lock.cache_tree.wait",
                             "lock.cache_tree.acquisitions",
                             "lock.cache_tree.contended"}

    def test_counter_get_default(self):
        reg = StatsRegistry()
        assert reg.get("missing") == 0.0
        assert reg.get("missing", 7.0) == 7.0

    def test_attach_observer_covers_existing_and_new_categories(self):
        reg = StatsRegistry()
        before = reg.lock_stats("early")
        obs = Observer(Simulator(), Tracer())
        reg.attach_observer(obs)
        after = reg.lock_stats("late")
        assert reg.observer is obs
        assert before.observer is obs
        assert after.observer is obs
