"""The §5.2 microbenchmark: private/shared × sequential/random.

Threads issue 16 KB reads (the paper's I/O size).  *private* gives each
thread its own file; *shared* gives all threads non-overlapping
partitions of one large file (the HPC pattern the paper cites [4]).

The *rand* pattern models the paper's "random" reads — which its
predictor taxonomy reveals to be a mix of sequential and random access,
not white noise: each thread visits fixed-size segments of its partition
in uniformly random order, reading each segment contiguously, a fraction
of them backward.  Stock kernel readahead restarts at every segment
jump and never handles the backward segments; CROSS-LIB's per-FD
predictor learns the run length and direction and prefetches each
segment in one large request.

``run_shared_rw`` is the Fig. 6 workload: N readers and a fixed set of
writers share one file, touching non-overlapping random ranges; the
paper reports aggregate write throughput as reader count grows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.os.kernel import Kernel
from repro.runtimes.base import HINT_RANDOM, HINT_SEQUENTIAL, IORuntime

__all__ = [
    "MicrobenchConfig",
    "MicrobenchResult",
    "run_microbench",
    "run_shared_rw",
]

KB = 1 << 10
MB = 1 << 20

MicrobenchResult = ApproachMetrics


@dataclass
class MicrobenchConfig:
    """Parameters of one microbenchmark run (already scaled)."""

    nthreads: int = 8
    io_size: int = 16 * KB
    total_bytes: int = 512 * MB      # dataset (2.15x memory in the paper)
    pattern: str = "rand"            # "seq" | "rand"
    sharing: str = "shared"          # "shared" | "private"
    segment_bytes: int = 1 * MB      # random-order visit granularity
    backward_fraction: float = 0.4   # segments read in reverse
    seed: int = 42
    # Capture per-pread latency samples (for p50/p99 under faults).
    # Off by default: the sample list is pure overhead for throughput
    # figures and keeps healthy runs allocation-identical.
    sample_latencies: bool = False

    def __post_init__(self):
        if self.pattern not in ("seq", "rand"):
            raise ValueError(f"bad pattern: {self.pattern}")
        if self.sharing not in ("shared", "private"):
            raise ValueError(f"bad sharing: {self.sharing}")


def run_microbench(kernel: Kernel, runtime: IORuntime,
                   config: MicrobenchConfig) -> MicrobenchResult:
    """Run the Fig. 5 / Table 3 microbenchmark; returns metrics."""
    # Partition boundaries aligned to the I/O size so per-thread bases
    # stay block-aligned regardless of the (possibly odd) total.
    part = (config.total_bytes // config.nthreads
            // config.io_size * config.io_size)
    paths: list[str] = []
    if config.sharing == "shared":
        kernel.create_file("/mb/shared", config.total_bytes)
        paths = ["/mb/shared"] * config.nthreads
    else:
        for tid in range(config.nthreads):
            path = f"/mb/private{tid}"
            kernel.create_file(path, part)
            paths.append(path)

    stats: list[tuple[int, int, int, float]] = []
    latencies: list[float] = [] if config.sample_latencies else None

    def reader(tid: int) -> Generator:
        rng = random.Random(config.seed * 1000 + tid)
        hint = HINT_SEQUENTIAL if config.pattern == "seq" else HINT_RANDOM
        handle = yield from runtime.open(paths[tid], hint)
        base = tid * part if config.sharing == "shared" else 0
        t0 = kernel.now
        total = hits = misses = 0
        if config.pattern == "seq":
            pos = base
            while pos < base + part:
                if latencies is not None:
                    op_t0 = kernel.now
                r = yield from runtime.pread(handle, pos, config.io_size)
                if latencies is not None:
                    latencies.append(kernel.now - op_t0)
                total += r.nbytes
                hits += r.hit_pages
                misses += r.miss_pages
                pos += config.io_size
        else:
            seg = config.segment_bytes
            order = list(range(part // seg))
            rng.shuffle(order)
            for s in order:
                seg_base = base + s * seg
                offsets = list(range(0, seg, config.io_size))
                if rng.random() < config.backward_fraction:
                    offsets.reverse()
                for off in offsets:
                    if latencies is not None:
                        op_t0 = kernel.now
                    r = yield from runtime.pread(handle, seg_base + off,
                                                 config.io_size)
                    if latencies is not None:
                        latencies.append(kernel.now - op_t0)
                    total += r.nbytes
                    hits += r.hit_pages
                    misses += r.miss_pages
        yield from runtime.close(handle)
        stats.append((total, hits, misses, kernel.now - t0))

    for tid in range(config.nthreads):
        kernel.sim.process(reader(tid), name=f"mb_reader[{tid}]")
    kernel.run()

    duration = max(s[3] for s in stats)
    return collect_metrics(
        runtime.name, kernel,
        duration_us=duration,
        bytes_read=sum(s[0] for s in stats),
        ops=sum(s[0] // config.io_size for s in stats),
        hit_pages=sum(s[1] for s in stats),
        miss_pages=sum(s[2] for s in stats),
        nthreads=config.nthreads,
        latencies_us=latencies,
    )


@dataclass
class SharedRwConfig:
    """Fig. 6: concurrent readers and writers on one shared file."""

    nreaders: int = 8
    nwriters: int = 4
    io_size: int = 16 * KB
    file_bytes: int = 512 * MB       # paper: 128 GB, scaled
    ops_per_thread: int = 2048
    seed: int = 42


def run_shared_rw(kernel: Kernel, runtime: IORuntime,
                  config: SharedRwConfig) -> MicrobenchResult:
    """Readers and writers on non-overlapping ranges of one file.

    Returns metrics whose throughput counts *written* bytes, matching
    the figure's y-axis; reader-side counters land in ``extra``.
    """
    kernel.create_file("/mb/rwshared", config.file_bytes)
    nthreads = config.nreaders + config.nwriters
    part = config.file_bytes // max(1, nthreads)
    done: list[dict] = []

    def worker(tid: int, is_writer: bool) -> Generator:
        rng = random.Random(config.seed * 977 + tid)
        handle = yield from runtime.open("/mb/rwshared", HINT_RANDOM)
        base = tid * part
        t0 = kernel.now
        moved = hits = misses = 0
        # Random non-overlapping 128 KB ranges inside the partition,
        # accessed contiguously (the paper's non-overlapping updates).
        span = 8 * config.io_size
        slots = list(range(part // span))
        rng.shuffle(slots)
        ops = 0
        for slot in slots:
            if ops >= config.ops_per_thread:
                break
            pos = base + slot * span
            for i in range(span // config.io_size):
                off = pos + i * config.io_size
                if is_writer:
                    n = yield from runtime.pwrite(handle, off,
                                                  config.io_size)
                    moved += n
                else:
                    r = yield from runtime.pread(handle, off,
                                                 config.io_size)
                    moved += r.nbytes
                    hits += r.hit_pages
                    misses += r.miss_pages
                ops += 1
                if ops >= config.ops_per_thread:
                    break
        yield from runtime.close(handle)
        done.append(dict(writer=is_writer, moved=moved, hits=hits,
                         misses=misses, dt=kernel.now - t0))

    tid = 0
    for _ in range(config.nwriters):
        kernel.sim.process(worker(tid, True), name=f"mb_writer[{tid}]")
        tid += 1
    for _ in range(config.nreaders):
        kernel.sim.process(worker(tid, False), name=f"mb_reader[{tid}]")
        tid += 1
    kernel.run()

    duration = max(d["dt"] for d in done)
    written = sum(d["moved"] for d in done if d["writer"])
    read = sum(d["moved"] for d in done if not d["writer"])
    metrics = collect_metrics(
        runtime.name, kernel,
        duration_us=duration,
        bytes_written=written,
        ops=sum(d["moved"] // config.io_size for d in done),
        hit_pages=sum(d["hits"] for d in done),
        miss_pages=sum(d["misses"] for d in done),
        nthreads=nthreads,
        extra={"bytes_read": read, "nreaders": config.nreaders},
    )
    return metrics
