"""The §5.2 microbenchmark: private/shared × sequential/random.

Threads issue 16 KB reads (the paper's I/O size).  *private* gives each
thread its own file; *shared* gives all threads non-overlapping
partitions of one large file (the HPC pattern the paper cites [4]).

The *rand* pattern models the paper's "random" reads — which its
predictor taxonomy reveals to be a mix of sequential and random access,
not white noise: each thread visits fixed-size segments of its partition
in uniformly random order, reading each segment contiguously, a fraction
of them backward.  Stock kernel readahead restarts at every segment
jump and never handles the backward segments; CROSS-LIB's per-FD
predictor learns the run length and direction and prefetches each
segment in one large request.

``run_shared_rw`` is the Fig. 6 workload: N readers and a fixed set of
writers share one file, touching non-overlapping random ranges; the
paper reports aggregate write throughput as reader count grows.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from typing import Generator

from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.os.kernel import Kernel
from repro.runtimes.base import HINT_RANDOM, HINT_SEQUENTIAL, IORuntime

__all__ = [
    "MicrobenchConfig",
    "MicrobenchResult",
    "run_microbench",
    "run_shared_rw",
]

KB = 1 << 10
MB = 1 << 20

MicrobenchResult = ApproachMetrics


def _rand_offsets(base: int, part: int, seg: int, io_size: int,
                  backward_fraction: float,
                  rng: random.Random) -> array:
    """The *rand* pattern's absolute offset stream, batch-generated.

    Segments of the thread's partition are visited in uniformly random
    order, each read contiguously, a fraction backward.  Built as one
    ``array('q')`` up front — segment extension is a C-level
    ``range`` copy instead of a per-segment Python list + reverse —
    with the RNG consumed in exactly the order the issuing loop used to
    (one ``shuffle``, then one ``random()`` per segment), so seeded
    streams are bit-identical to the historical per-segment generation.
    """
    order = list(range(part // seg))
    rng.shuffle(order)
    last = (seg - 1) // io_size * io_size if seg > 0 else 0
    offsets = array("q")
    extend = offsets.extend
    backward = rng.random
    for s in order:
        seg_base = base + s * seg
        if backward() < backward_fraction:
            extend(range(seg_base + last, seg_base - io_size, -io_size))
        else:
            extend(range(seg_base, seg_base + seg, io_size))
    return offsets


@dataclass
class MicrobenchConfig:
    """Parameters of one microbenchmark run (already scaled)."""

    nthreads: int = 8
    io_size: int = 16 * KB
    total_bytes: int = 512 * MB      # dataset (2.15x memory in the paper)
    pattern: str = "rand"            # "seq" | "rand"
    sharing: str = "shared"          # "shared" | "private"
    segment_bytes: int = 1 * MB      # random-order visit granularity
    backward_fraction: float = 0.4   # segments read in reverse
    seed: int = 42
    # Capture per-pread latency samples (for p50/p99 under faults).
    # Off by default: the sample list is pure overhead for throughput
    # figures and keeps healthy runs allocation-identical.
    sample_latencies: bool = False

    def __post_init__(self):
        if self.pattern not in ("seq", "rand"):
            raise ValueError(f"bad pattern: {self.pattern}")
        if self.sharing not in ("shared", "private"):
            raise ValueError(f"bad sharing: {self.sharing}")


def run_microbench(kernel: Kernel, runtime: IORuntime,
                   config: MicrobenchConfig) -> MicrobenchResult:
    """Run the Fig. 5 / Table 3 microbenchmark; returns metrics."""
    # Partition boundaries aligned to the I/O size so per-thread bases
    # stay block-aligned regardless of the (possibly odd) total.
    part = (config.total_bytes // config.nthreads
            // config.io_size * config.io_size)
    paths: list[str] = []
    if config.sharing == "shared":
        kernel.create_file("/mb/shared", config.total_bytes)
        paths = ["/mb/shared"] * config.nthreads
    else:
        for tid in range(config.nthreads):
            path = f"/mb/private{tid}"
            kernel.create_file(path, part)
            paths.append(path)

    stats: list[tuple[int, int, int, float]] = []
    latencies: list[float] = [] if config.sample_latencies else None

    def reader(tid: int) -> Generator:
        rng = random.Random(config.seed * 1000 + tid)
        hint = HINT_SEQUENTIAL if config.pattern == "seq" else HINT_RANDOM
        handle = yield from runtime.open(paths[tid], hint)
        base = tid * part if config.sharing == "shared" else 0
        t0 = kernel.now
        total = hits = misses = 0
        io_size = config.io_size
        # Offsets are batch-generated up front (array('q') for the rand
        # pattern, a bare range for seq), so the issuing loop is a flat
        # single-level iteration with no per-segment bookkeeping.
        if config.pattern == "seq":
            offsets = range(base, base + part, io_size)
        else:
            offsets = _rand_offsets(base, part, config.segment_bytes,
                                    io_size, config.backward_fraction,
                                    rng)
        if latencies is not None:
            for off in offsets:
                op_t0 = kernel.now
                r = yield from runtime.pread(handle, off, io_size)
                latencies.append(kernel.now - op_t0)
                total += r.nbytes
                hits += r.hit_pages
                misses += r.miss_pages
        else:
            pread = runtime.pread
            for off in offsets:
                r = yield from pread(handle, off, io_size)
                total += r.nbytes
                hits += r.hit_pages
                misses += r.miss_pages
        yield from runtime.close(handle)
        stats.append((total, hits, misses, kernel.now - t0))

    for tid in range(config.nthreads):
        kernel.sim.process(reader(tid), name=f"mb_reader[{tid}]")
    kernel.run()

    duration = max(s[3] for s in stats)
    return collect_metrics(
        runtime.name, kernel,
        duration_us=duration,
        bytes_read=sum(s[0] for s in stats),
        ops=sum(s[0] // config.io_size for s in stats),
        hit_pages=sum(s[1] for s in stats),
        miss_pages=sum(s[2] for s in stats),
        nthreads=config.nthreads,
        latencies_us=latencies,
    )


@dataclass
class SharedRwConfig:
    """Fig. 6: concurrent readers and writers on one shared file."""

    nreaders: int = 8
    nwriters: int = 4
    io_size: int = 16 * KB
    file_bytes: int = 512 * MB       # paper: 128 GB, scaled
    ops_per_thread: int = 2048
    seed: int = 42


def run_shared_rw(kernel: Kernel, runtime: IORuntime,
                  config: SharedRwConfig) -> MicrobenchResult:
    """Readers and writers on non-overlapping ranges of one file.

    Returns metrics whose throughput counts *written* bytes, matching
    the figure's y-axis; reader-side counters land in ``extra``.
    """
    kernel.create_file("/mb/rwshared", config.file_bytes)
    nthreads = config.nreaders + config.nwriters
    part = config.file_bytes // max(1, nthreads)
    done: list[dict] = []

    def worker(tid: int, is_writer: bool) -> Generator:
        rng = random.Random(config.seed * 977 + tid)
        handle = yield from runtime.open("/mb/rwshared", HINT_RANDOM)
        base = tid * part
        t0 = kernel.now
        moved = hits = misses = 0
        # Random non-overlapping 128 KB ranges inside the partition,
        # accessed contiguously (the paper's non-overlapping updates).
        # The per-op offsets are batch-generated: the issued stream is
        # the first ops_per_thread offsets of the shuffled slot spans,
        # exactly what the nested counting loop used to produce.
        io_size = config.io_size
        span = 8 * io_size
        slots = list(range(part // span))
        rng.shuffle(slots)
        offsets = array("q")
        for slot in slots:
            if len(offsets) >= config.ops_per_thread:
                break
            pos = base + slot * span
            offsets.extend(range(pos, pos + span, io_size))
        del offsets[config.ops_per_thread:]
        if is_writer:
            pwrite = runtime.pwrite
            for off in offsets:
                moved += yield from pwrite(handle, off, io_size)
        else:
            pread = runtime.pread
            for off in offsets:
                r = yield from pread(handle, off, io_size)
                moved += r.nbytes
                hits += r.hit_pages
                misses += r.miss_pages
        yield from runtime.close(handle)
        done.append(dict(writer=is_writer, moved=moved, hits=hits,
                         misses=misses, dt=kernel.now - t0))

    tid = 0
    for _ in range(config.nwriters):
        kernel.sim.process(worker(tid, True), name=f"mb_writer[{tid}]")
        tid += 1
    for _ in range(config.nreaders):
        kernel.sim.process(worker(tid, False), name=f"mb_reader[{tid}]")
        tid += 1
    kernel.run()

    duration = max(d["dt"] for d in done)
    written = sum(d["moved"] for d in done if d["writer"])
    read = sum(d["moved"] for d in done if not d["writer"])
    metrics = collect_metrics(
        runtime.name, kernel,
        duration_us=duration,
        bytes_written=written,
        ops=sum(d["moved"] // config.io_size for d in done),
        hit_pages=sum(d["hits"] for d in done),
        miss_pages=sum(d["misses"] for d in done),
        nthreads=nthreads,
        extra={"bytes_read": read, "nreaders": config.nreaders},
    )
    return metrics
