"""Zipfian key generator (Gray et al., as used by YCSB).

YCSB's request distribution: item ranks follow a Zipf law with constant
``theta`` (0.99 by default).  This is the standard incremental
implementation from "Quickly Generating Billion-Record Synthetic
Databases" (Gray et al., SIGMOD '94), the same algorithm YCSB ships.

``ScrambledZipfian`` spreads the hot items across the keyspace with a
multiplicative hash, like YCSB's ``ScrambledZipfianGenerator`` — without
it, the hottest keys would all sit in the first SST file.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["ScrambledZipfian", "ZipfianGenerator"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an int's 8 bytes (YCSB's scramble hash)."""
    h = _FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        h ^= octet
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


class ZipfianGenerator:
    """Draws ranks in [0, nitems) with Zipf(theta) popularity."""

    def __init__(self, nitems: int, theta: float = 0.99,
                 rng: Optional[random.Random] = None):
        if nitems <= 0:
            raise ValueError(f"nitems must be positive: {nitems}")
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1): {theta}")
        self.nitems = nitems
        self.theta = theta
        self.rng = rng or random.Random()
        self.zetan = self._zeta(nitems, theta)
        self.zeta2 = self._zeta(min(2, nitems), theta)
        self.alpha = 1.0 / (1.0 - theta)
        denominator = 1 - self.zeta2 / self.zetan
        if denominator == 0.0:  # degenerate: nitems <= 2
            self.eta = 0.0
        else:
            self.eta = ((1 - (2.0 / nitems) ** (1 - theta))
                        / denominator)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; Euler-Maclaurin tail for large n keeps
        # construction O(1)-ish without materially changing the law.
        cutoff = min(n, 10_000)
        total = sum(1.0 / (i ** theta) for i in range(1, cutoff + 1))
        if n > cutoff:
            # integral approximation of the remaining tail
            total += ((n ** (1 - theta)) - (cutoff ** (1 - theta))) \
                / (1 - theta)
        return total

    def next_rank(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.nitems *
                   ((self.eta * u - self.eta + 1) ** self.alpha))

    def __call__(self) -> int:
        rank = self.next_rank()
        return min(rank, self.nitems - 1)


class ScrambledZipfian:
    """Zipfian ranks scattered uniformly over the keyspace."""

    def __init__(self, nitems: int, theta: float = 0.99,
                 rng: Optional[random.Random] = None):
        self.nitems = nitems
        self._zipf = ZipfianGenerator(nitems, theta, rng)

    def __call__(self) -> int:
        return fnv1a_64(self._zipf()) % self.nitems
