"""The Snappy parallel-compression workload (Fig. 9b).

The paper modifies Snappy to compress a 120 GB dataset of ~100 MB files
with 16 threads.  Each thread opens a file, reads it in one or two big
sequential reads, compresses (CPU time proportional to bytes), writes
nothing back that matters to the experiment, and moves to the next file
— a streaming pattern whose working set churns through memory, which is
exactly what the aggressive prefetch+eviction policy targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.os.kernel import Kernel
from repro.runtimes.base import HINT_SEQUENTIAL, IORuntime

__all__ = ["SnappyConfig", "run_snappy"]

MB = 1 << 20


@dataclass
class SnappyConfig:
    nthreads: int = 16
    total_bytes: int = 1024 * MB        # paper: 120 GB, scaled
    file_bytes: int = 16 * MB           # paper: ~100 MB files, scaled
    read_chunk: int = 8 * MB            # "one or two read operations"
    compress_rate: float = 300.0        # MB/s of per-thread CPU
    seed: int = 5

    @property
    def nfiles(self) -> int:
        return max(1, self.total_bytes // self.file_bytes)


def run_snappy(kernel: Kernel, runtime: IORuntime,
               config: SnappyConfig) -> ApproachMetrics:
    paths = [f"/snappy/in{i:04d}" for i in range(config.nfiles)]
    for path in paths:
        kernel.create_file(path, config.file_bytes)

    compress_us_per_byte = 1.0 / (config.compress_rate * MB / 1e6)
    done: list[tuple[int, int, int, float]] = []

    def compressor(tid: int) -> Generator:
        t0 = kernel.now
        total = hits = misses = 0
        # Threads take files round-robin (static assignment).
        for idx in range(tid, config.nfiles, config.nthreads):
            handle = yield from runtime.open(paths[idx], HINT_SEQUENTIAL)
            pos = 0
            while pos < config.file_bytes:
                r = yield from runtime.pread(handle, pos,
                                             config.read_chunk)
                total += r.nbytes
                hits += r.hit_pages
                misses += r.miss_pages
                # Compress what we just read.
                yield kernel.sim.timeout(r.nbytes * compress_us_per_byte)
                pos += r.nbytes
            yield from runtime.close(handle)
        done.append((total, hits, misses, kernel.now - t0))

    for tid in range(config.nthreads):
        kernel.sim.process(compressor(tid), name=f"snappy[{tid}]")
    kernel.run()

    duration = max(d[3] for d in done)
    return collect_metrics(
        runtime.name, kernel,
        duration_us=duration,
        bytes_read=sum(d[0] for d in done),
        ops=config.nfiles,
        hit_pages=sum(d[1] for d in done),
        miss_pages=sum(d[2] for d in done),
        nthreads=config.nthreads,
    )
