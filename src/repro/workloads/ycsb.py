"""YCSB core workloads A–F over the LSM store (Fig. 9a).

Standard mixes (Cooper et al.):

====  ==========================  =========================
A     50% read / 50% update       Zipfian
B     95% read / 5% update        Zipfian
C     100% read                   Zipfian
D     95% read / 5% insert        latest
E     95% scan / 5% insert        Zipfian, scans of ~50 keys
F     50% read / 50% read-modify-write   Zipfian
====  ==========================  =========================

The paper runs the post-warm-up phase with 16 client threads, 4 KB
values, Zipfian request distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.os.kernel import Kernel
from repro.runtimes.base import HINT_RANDOM, IORuntime
from repro.workloads.lsm import DbConfig, LsmDb
from repro.workloads.zipfian import ScrambledZipfian

__all__ = ["WORKLOADS", "YcsbConfig", "run_ycsb"]

# (read, update, insert, scan, rmw) fractions per workload.
WORKLOADS: dict[str, tuple[float, float, float, float, float]] = {
    "A": (0.50, 0.50, 0.00, 0.00, 0.00),
    "B": (0.95, 0.05, 0.00, 0.00, 0.00),
    "C": (1.00, 0.00, 0.00, 0.00, 0.00),
    "D": (0.95, 0.00, 0.05, 0.00, 0.00),
    "E": (0.00, 0.00, 0.05, 0.95, 0.00),
    "F": (0.50, 0.00, 0.00, 0.00, 0.50),
}


@dataclass
class YcsbConfig:
    workload: str = "C"
    nthreads: int = 16
    ops_per_thread: int = 500
    scan_length: int = 50
    zipf_theta: float = 0.99
    db: DbConfig = None  # type: ignore[assignment]
    seed: int = 23

    def __post_init__(self):
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown YCSB workload {self.workload!r}")
        if self.db is None:
            self.db = DbConfig()


def run_ycsb(kernel: Kernel, runtime: IORuntime,
             config: YcsbConfig) -> ApproachMetrics:
    db = LsmDb(kernel, runtime, config.db)
    db.populate()
    read_f, update_f, insert_f, scan_f, rmw_f = WORKLOADS[config.workload]
    insert_cursor = [config.db.num_keys]  # D/E inserts append new keys
    done: list[tuple[int, float]] = []

    def client(tid: int) -> Generator:
        rng = random.Random(config.seed * 389 + tid)
        zipf = ScrambledZipfian(config.db.num_keys,
                                config.zipf_theta,
                                random.Random(config.seed * 389 + tid + 1))
        ctx = db.new_thread(HINT_RANDOM)
        t0 = kernel.now
        ops = 0
        for _ in range(config.ops_per_thread):
            dice = rng.random()
            if dice < read_f:
                if config.workload == "D":
                    # "latest": strongly favour recent inserts.
                    span = max(1, insert_cursor[0] // 10)
                    key = insert_cursor[0] - 1 - min(
                        zipf() % span, insert_cursor[0] - 1)
                else:
                    key = zipf()
                yield from db.get(ctx, key)
            elif dice < read_f + update_f:
                yield from db.put(ctx, zipf())
            elif dice < read_f + update_f + insert_f:
                key = insert_cursor[0]
                insert_cursor[0] += 1
                yield from db.put(ctx, key)
            elif dice < read_f + update_f + insert_f + scan_f:
                start = zipf()
                yield from db.scan(ctx, start, config.scan_length)
            else:  # read-modify-write
                key = zipf()
                yield from db.get(ctx, key)
                yield from db.put(ctx, key)
            ops += 1
        yield from ctx.close_all()
        done.append((ops, kernel.now - t0))

    for tid in range(config.nthreads):
        kernel.sim.process(client(tid), name=f"ycsb[{tid}]")
    kernel.run()

    duration = max(d[1] for d in done)
    registry = kernel.registry
    return collect_metrics(
        runtime.name, kernel,
        duration_us=duration,
        bytes_read=int(registry.get("device.read_bytes")),
        bytes_written=int(registry.get("device.write_bytes")),
        ops=sum(d[0] for d in done),
        hit_pages=int(registry.get("cache.demand_hits")),
        miss_pages=int(registry.get("cache.demand_misses")),
        nthreads=config.nthreads,
        extra={"workload": config.workload, **db.stats},
    )
