"""Trace replay: run recorded or synthetic I/O traces through a runtime.

Real deployments judge a prefetcher on *their* workloads, not on
benchmarks, so the artifact needs a way to replay an application's
access trace.  A trace is a sequence of records::

    (thread_id, op, path, offset, nbytes)

with ``op`` one of ``read``, ``write``, ``open``, ``close``.  Traces can
be built programmatically, loaded from a text file (one
whitespace-separated record per line, ``#`` comments), or generated
synthetically (:func:`synthesize_trace`).

Replay preserves per-thread ordering; across threads, operations
interleave however the simulation schedules them — like replaying per-
thread straces concurrently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Iterable, Optional, Sequence

from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.os.kernel import Kernel
from repro.runtimes.base import HINT_NORMAL, IORuntime

__all__ = ["TraceRecord", "load_trace", "replay_trace",
           "synthesize_trace"]

KB = 1 << 10
MB = 1 << 20

OPS = ("read", "write", "open", "close", "think")


@dataclass(frozen=True)
class TraceRecord:
    """One trace line."""

    thread: int
    op: str
    path: str
    offset: int = 0
    nbytes: int = 0        # for op == "think": microseconds of compute

    def __post_init__(self):
        if self.op not in OPS:
            raise ValueError(f"bad trace op {self.op!r}")
        if self.offset < 0 or self.nbytes < 0:
            raise ValueError("negative offset/size in trace record")


def load_trace(lines: Iterable[str]) -> list[TraceRecord]:
    """Parse a text trace: ``thread op path [offset nbytes]`` per line."""
    records = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) not in (3, 5):
            raise ValueError(f"trace line {lineno}: expected 3 or 5 "
                             f"fields, got {len(parts)}")
        thread, op, path = int(parts[0]), parts[1], parts[2]
        offset = int(parts[3]) if len(parts) == 5 else 0
        nbytes = int(parts[4]) if len(parts) == 5 else 0
        records.append(TraceRecord(thread, op, path, offset, nbytes))
    return records


def synthesize_trace(*, nthreads: int = 4, files: int = 4,
                     file_bytes: int = 32 * MB,
                     ops_per_thread: int = 200,
                     io_size: int = 16 * KB,
                     sequential_fraction: float = 0.7,
                     think_us: int = 0,
                     seed: int = 1) -> list[TraceRecord]:
    """A mixed sequential/random synthetic trace over ``files`` files.

    ``think_us`` inserts per-read compute time — the application work a
    prefetcher can overlap with I/O.
    """
    rng = random.Random(seed)
    records: list[TraceRecord] = []
    for thread in range(nthreads):
        path = f"/trace/f{thread % files}"
        records.append(TraceRecord(thread, "open", path))
        pos = rng.randrange(0, file_bytes // 2) // io_size * io_size
        for _ in range(ops_per_thread):
            if rng.random() < sequential_fraction:
                pos = (pos + io_size) % (file_bytes - io_size)
            else:
                pos = rng.randrange(0, file_bytes - io_size) \
                    // io_size * io_size
            records.append(TraceRecord(thread, "read", path, pos,
                                       io_size))
            if think_us > 0:
                records.append(TraceRecord(thread, "think", path,
                                           0, think_us))
        records.append(TraceRecord(thread, "close", path))
    return records


def replay_trace(kernel: Kernel, runtime: IORuntime,
                 records: Sequence[TraceRecord],
                 file_bytes: Optional[dict[str, int]] = None,
                 default_file_bytes: int = 32 * MB) -> ApproachMetrics:
    """Replay ``records``; creates any files the trace references.

    Returns metrics with per-op latency samples filled in.
    """
    sizes = dict(file_bytes or {})
    for record in records:
        if record.op == "think":
            continue
        if record.path not in sizes:
            sizes[record.path] = default_file_bytes
        needed = record.offset + record.nbytes
        if needed > sizes[record.path]:
            sizes[record.path] = needed
    for path, size in sizes.items():
        if not kernel.vfs.exists(path):
            kernel.create_file(path, size)

    per_thread: dict[int, list[TraceRecord]] = {}
    for record in records:
        per_thread.setdefault(record.thread, []).append(record)

    done: list[dict] = []

    def player(thread: int, ops: list[TraceRecord]) -> Generator:
        handles: dict[str, object] = {}
        t0 = kernel.now
        stats = dict(bytes_read=0, bytes_written=0, hits=0, misses=0,
                     ops=0, latencies=[])
        for record in ops:
            start = kernel.now
            if record.op == "think":
                yield kernel.sim.timeout(float(record.nbytes))
            elif record.op == "open":
                handles[record.path] = yield from runtime.open(
                    record.path, HINT_NORMAL)
            elif record.op == "close":
                handle = handles.pop(record.path, None)
                if handle is not None:
                    yield from runtime.close(handle)
            else:
                handle = handles.get(record.path)
                if handle is None:
                    handle = yield from runtime.open(record.path,
                                                     HINT_NORMAL)
                    handles[record.path] = handle
                if record.op == "read":
                    result = yield from runtime.pread(
                        handle, record.offset, record.nbytes)
                    stats["bytes_read"] += result.nbytes
                    stats["hits"] += result.hit_pages
                    stats["misses"] += result.miss_pages
                else:
                    written = yield from runtime.pwrite(
                        handle, record.offset, record.nbytes)
                    stats["bytes_written"] += written
            stats["ops"] += 1
            stats["latencies"].append(kernel.now - start)
        stats["duration"] = kernel.now - t0
        done.append(stats)

    for thread, ops in per_thread.items():
        kernel.sim.process(player(thread, ops),
                           name=f"replay[{thread}]")
    kernel.run()

    latencies: list[float] = []
    for stats in done:
        latencies.extend(stats["latencies"])
    return collect_metrics(
        runtime.name, kernel,
        duration_us=max(s["duration"] for s in done),
        bytes_read=sum(s["bytes_read"] for s in done),
        bytes_written=sum(s["bytes_written"] for s in done),
        ops=sum(s["ops"] for s in done),
        hit_pages=sum(s["hits"] for s in done),
        miss_pages=sum(s["misses"] for s in done),
        nthreads=len(per_thread),
        latencies_us=latencies,
    )
