"""Workloads: every benchmark the paper evaluates with.

* :mod:`repro.workloads.microbench` — the §5.2 multi-threaded
  private/shared × sequential/random microbenchmark, plus the Fig. 6
  readers+writers variant.
* :mod:`repro.workloads.lsm` — a compact LSM key-value store standing in
  for RocksDB (memtable, WAL, leveled SSTs, compaction).
* :mod:`repro.workloads.dbbench` — db_bench-style drivers (readseq,
  readreverse, readrandom, multireadrandom, readwhilescanning).
* :mod:`repro.workloads.ycsb` — YCSB workloads A–F with a Zipfian
  generator.
* :mod:`repro.workloads.snappy` — the parallel streaming-compression
  workload of Fig. 9b.
* :mod:`repro.workloads.filebench` — seqread / randread / mongodb /
  videoserver personalities of Fig. 8b.
* :mod:`repro.workloads.mmapbench` — the Table-4 mmap workloads.
"""

from repro.workloads.microbench import (
    MicrobenchConfig,
    MicrobenchResult,
    SharedRwConfig,
    run_microbench,
    run_shared_rw,
)
from repro.workloads.zipfian import ScrambledZipfian, ZipfianGenerator

__all__ = [
    "MicrobenchConfig",
    "MicrobenchResult",
    "ScrambledZipfian",
    "SharedRwConfig",
    "ZipfianGenerator",
    "run_microbench",
    "run_shared_rw",
]
