"""Crash recovery for the LSM store: fsck-style scan + WAL replay.

Runs as an ordinary workload on a *fresh* kernel rebuilt from a
:class:`~repro.sim.crash.CrashSnapshot` (see
:func:`~repro.sim.crash.restore_into`).  Three passes:

1. **Metadata / integrity scan** — walk every file the crashed store
   left behind in a fixed plan order (WAL first, then manifest tables
   index-before-data, then orphans), reading each and charging
   per-block verification CPU.  Damage is a snapshot query
   (:meth:`FileRemnant.invalid_blocks`): any damaged block in a
   *manifest* table is an invariant violation, because installation
   points are post-fsync — a listed table's bytes were all
   acknowledged durable.  Orphans (``.sst`` files on disk but in no
   manifest) are mid-flush remnants; they are scanned, counted and
   unlinked, damage expected.

2. **WAL replay** — the longest surviving record prefix
   (:meth:`WalLog.replayable`).  Invariants: the replayed prefix must
   reach ``committed_seq`` and include every committed record — the
   "recovered DB ≡ committed prefix" half of the audit contract.

3. **Rebuild** — replayed keys become a fresh, fsync'd L0 table
   (re-applying records whose keys already reached an L0 flush is
   idempotent, exactly like real WAL replay).  A final containment
   check samples the keyspace against surviving tables + the rebuilt
   one.

When the runtime is CROSS-LIB, the scan is *primed*: a
:class:`~repro.crosslib.repair.RepairPrefetcher` queuing thread walks
the same plan a bounded window ahead and enqueues ranges to the
concurrent worker pool, so the scanner's blocking reads mostly hit the
page cache.  On OS-only runtimes the scan runs cold (stock readahead
only).  The ``recovery`` experiment measures the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.runtimes.base import HINT_SEQUENTIAL, IORuntime
from repro.sim.crash import CrashSnapshot
from repro.workloads.lsm.db import DbConfig, FlushedSSTable
from repro.workloads.lsm.sstable import SSTable
from repro.workloads.lsm.wal import WalLog

__all__ = ["LsmRecovery", "RecoveryReport"]


@dataclass
class RecoveryReport:
    """What the recovery pass found and did."""

    started_us: float = 0.0
    finished_us: float = 0.0
    tables_checked: int = 0
    orphans_found: int = 0
    orphans_removed: int = 0
    blocks_scanned: int = 0
    damaged_blocks: int = 0
    damaged_manifest_blocks: int = 0
    quarantined_tables: int = 0
    wal_records: int = 0
    wal_committed_seq: int = 0
    replayed_records: int = 0
    replayed_seq: int = 0
    rebuilt_keys: int = 0
    rebuilt_path: Optional[str] = None
    primed_items: int = 0
    primed_blocks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def duration_us(self) -> float:
        return self.finished_us - self.started_us

    def describe(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (f"recovery {status}: {self.tables_checked} tables scanned "
                f"({self.blocks_scanned} blocks, {self.damaged_blocks} "
                f"damaged), {self.orphans_removed} orphans removed, "
                f"replayed {self.replayed_records}/{self.wal_records} WAL "
                f"records (committed seq {self.wal_committed_seq}), "
                f"rebuilt {self.rebuilt_keys} keys, "
                f"{self.duration_us / 1e3:.1f}ms")


class LsmRecovery:
    """One recovery pass over a restored post-crash namespace."""

    def __init__(self, kernel, runtime: IORuntime,
                 snapshot: CrashSnapshot, manifest: list[SSTable],
                 wal: WalLog, config: DbConfig, *,
                 prefix: str = "/db",
                 lookahead_files: int = 3,
                 scan_chunk_bytes: Optional[int] = None,
                 verify_cpu_us_per_block: float = 0.5,
                 keyspace_sample: int = 64):
        self.kernel = kernel
        self.runtime = runtime
        self.snapshot = snapshot
        self.manifest = list(manifest)
        self.wal = wal
        self.config = config
        self.prefix = prefix
        self.block_size = kernel.config.block_size
        self.lookahead_files = lookahead_files
        self.scan_chunk_bytes = scan_chunk_bytes or 16 * self.block_size
        self.verify_cpu_us_per_block = verify_cpu_us_per_block
        self.keyspace_sample = keyspace_sample
        self.report = RecoveryReport()
        self.recovered_tables: list[SSTable] = []
        self._plan = None
        self._prefetcher = None

    # -- plan ------------------------------------------------------------------

    def _build_plan(self):
        """Fixed scan order shared with the priming queue thread."""
        from repro.crosslib.repair import RepairPlan

        plan = RepairPlan()
        bs = self.block_size
        wal_path = self.config.wal_path
        wal_remnant = self.snapshot.files.get(wal_path)
        if wal_remnant is not None and wal_remnant.size > 0:
            plan.add(wal_path, [(0, wal_remnant.nblocks)], label="wal")
        manifest_paths = {sst.path for sst in self.manifest}
        for sst in sorted(self.manifest, key=lambda s: s.path):
            # Priority buffers: index (metadata) runs ahead of data runs.
            plan.add(sst.path,
                     [(0, sst.index_blocks),
                      (sst.index_blocks, sst.num_data_blocks)],
                     label=f"L{sst.level}")
        for path in sorted(self.snapshot.files):
            if path in manifest_paths or path == wal_path:
                continue
            if not path.startswith(self.prefix + "/"):
                continue
            remnant = self.snapshot.files[path]
            nblocks = (remnant.size + bs - 1) // bs
            plan.add(path, [(0, nblocks)], label="orphan")
        return plan

    def _can_prime(self) -> bool:
        return hasattr(self.runtime, "prime") \
            and hasattr(self.runtime, "workers")

    # -- passes ----------------------------------------------------------------

    def _scan_item(self, item) -> Generator:
        """Read every planned run of one file, charging verify CPU."""
        remnant = self.snapshot.files.get(item.path)
        size = remnant.size if remnant is not None else 0
        if size <= 0:
            return
        handle = yield from self.runtime.open(item.path, HINT_SEQUENTIAL)
        bs = self.block_size
        for start, count in item.runs:
            pos = start * bs
            end = min((start + count) * bs, size)
            while pos < end:
                n = min(self.scan_chunk_bytes, end - pos)
                yield from self.runtime.pread(handle, pos, n)
                nblocks = (n + bs - 1) // bs
                self.report.blocks_scanned += nblocks
                if self.verify_cpu_us_per_block > 0.0:
                    yield self.kernel.sim.timeout(
                        nblocks * self.verify_cpu_us_per_block)
                pos += n
        yield from self.runtime.close(handle)

    def _replay_wal(self) -> None:
        """Pure bookkeeping — the WAL bytes were read in the scan pass."""
        report = self.report
        wal_path = self.config.wal_path
        replayed = self.wal.replayable(
            lambda off, n: self.snapshot.covered(wal_path, off, n))
        report.wal_records = len(self.wal.records)
        report.wal_committed_seq = self.wal.committed_seq
        report.replayed_records = len(replayed)
        report.replayed_seq = replayed[-1].seq if replayed else 0
        if report.replayed_seq < self.wal.committed_seq:
            report.violations.append(
                f"WAL replay stops at seq {report.replayed_seq} but "
                f"seq {self.wal.committed_seq} was committed "
                f"(acknowledged-durable WAL bytes lost)")
        replayed_seqs = {rec.seq for rec in replayed}
        for rec in self.wal.committed_records():
            if rec.seq not in replayed_seqs:
                report.violations.append(
                    f"committed WAL record seq={rec.seq} key={rec.key} "
                    f"not replayable")
        self._replayed = replayed

    def _rebuild(self) -> Generator:
        """Write replayed keys back out as a fresh, fsync'd L0 table."""
        report = self.report
        keys = sorted({rec.key for rec in self._replayed})
        report.rebuilt_keys = len(keys)
        if not keys:
            return
        sst = FlushedSSTable(path=f"{self.prefix}/R0-recovered.sst",
                             keys=keys,
                             value_size=self.config.value_size,
                             block_size=self.block_size)
        self.kernel.create_file(sst.path, 0)
        handle = yield from self.runtime.open(sst.path, HINT_SEQUENTIAL)
        pos = 0
        unit = self.config.write_buffer_io
        while pos < sst.file_bytes:
            n = min(unit, sst.file_bytes - pos)
            yield from self.runtime.write_seq(handle, n)
            pos += n
        yield from self.runtime.fsync(handle)
        yield from self.runtime.close(handle)
        report.rebuilt_path = sst.path
        self.recovered_tables.append(sst)

    def _check_containment(self) -> None:
        """Sample the keyspace: every key must live *somewhere* healthy."""
        report = self.report
        tables = self.recovered_tables
        num_keys = self.config.num_keys
        if not num_keys:
            return
        stride = max(1, num_keys // max(1, self.keyspace_sample))
        for key in range(0, num_keys, stride):
            if not any(t.contains(key) for t in tables):
                report.violations.append(
                    f"key {key} unrecoverable: in no surviving or "
                    f"rebuilt table")

    # -- driver ----------------------------------------------------------------

    def run(self) -> Generator:
        """The whole pass; returns the :class:`RecoveryReport`."""
        report = self.report
        report.started_us = self.kernel.sim.now
        plan = self._plan = self._build_plan()
        if self._can_prime():
            from repro.crosslib.repair import RepairPrefetcher
            self._prefetcher = RepairPrefetcher(
                self.runtime, plan, lookahead_files=self.lookahead_files)
        manifest_paths = {sst.path for sst in self.manifest}
        healthy: list[SSTable] = []
        by_path = {sst.path: sst for sst in self.manifest}
        orphans: list[str] = []
        for i, item in enumerate(plan.items):
            yield from self._scan_item(item)
            if self._prefetcher is not None:
                self._prefetcher.note_scanned(i)
            remnant = self.snapshot.files.get(item.path)
            bad = remnant.invalid_blocks() if remnant is not None else 0
            report.damaged_blocks += bad
            if item.path in manifest_paths:
                report.tables_checked += 1
                sst = by_path[item.path]
                if bad:
                    report.damaged_manifest_blocks += bad
                    report.quarantined_tables += 1
                    report.violations.append(
                        f"manifest table {item.path} (L{sst.level}) has "
                        f"{bad} damaged blocks despite post-fsync install")
                else:
                    healthy.append(sst)
            elif item.label == "orphan":
                report.orphans_found += 1
                orphans.append(item.path)
        # Orphans are un-installed flush remnants: quarantine (drop).
        for path in orphans:
            self.kernel.vfs.unlink(path)
            report.orphans_removed += 1
        self.recovered_tables = healthy
        self._replay_wal()
        yield from self._rebuild()
        self._check_containment()
        if self._prefetcher is not None:
            yield from self._prefetcher.drain()
            report.primed_items = self._prefetcher.primed_items
            report.primed_blocks = self._prefetcher.primed_blocks
        report.finished_us = self.kernel.sim.now
        return report
