"""Sorted string table model.

An SSTable covers a contiguous key range.  On disk it is an index
region (one fixed-size entry per data block, packed into the leading
blocks) followed by data blocks holding ``keys_per_block`` values each.
The byte layout matters only insofar as it drives I/O offsets: a point
get reads one index block then one data block, an iterator streams data
blocks in order — the patterns the page cache and prefetchers see.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SSTable"]

INDEX_ENTRY_BYTES = 16


@dataclass
class SSTable:
    """Metadata for one on-"disk" table."""

    path: str
    level: int
    key_lo: int           # inclusive
    key_hi: int           # exclusive
    value_size: int
    block_size: int

    def __post_init__(self):
        if self.key_hi <= self.key_lo:
            raise ValueError(f"empty SSTable key range: "
                             f"[{self.key_lo}, {self.key_hi})")
        if self.value_size <= 0 or self.value_size > self.block_size:
            raise ValueError(f"bad value size: {self.value_size}")

    # -- geometry -----------------------------------------------------------

    @property
    def num_keys(self) -> int:
        return self.key_hi - self.key_lo

    @property
    def keys_per_block(self) -> int:
        return max(1, self.block_size // self.value_size)

    @property
    def num_data_blocks(self) -> int:
        kpb = self.keys_per_block
        return (self.num_keys + kpb - 1) // kpb

    @property
    def index_bytes(self) -> int:
        return self.num_data_blocks * INDEX_ENTRY_BYTES

    @property
    def index_blocks(self) -> int:
        return (self.index_bytes + self.block_size - 1) // self.block_size

    @property
    def data_start(self) -> int:
        """Byte offset of the first data block."""
        return self.index_blocks * self.block_size

    @property
    def file_bytes(self) -> int:
        return self.data_start + self.num_data_blocks * self.block_size

    # -- lookups ------------------------------------------------------------

    def contains(self, key: int) -> bool:
        return self.key_lo <= key < self.key_hi

    def data_block_of(self, key: int) -> int:
        if not self.contains(key):
            raise KeyError(key)
        return (key - self.key_lo) // self.keys_per_block

    def data_offset(self, key: int) -> int:
        """Byte offset of the data block holding ``key``."""
        return self.data_start + self.data_block_of(key) * self.block_size

    def index_offset(self, key: int) -> int:
        """Byte offset of the index block covering ``key``'s data block."""
        entry = self.data_block_of(key) * INDEX_ENTRY_BYTES
        return (entry // self.block_size) * self.block_size

    def key_at_offset(self, data_block: int) -> int:
        """First key stored in ``data_block`` (for iterators)."""
        return self.key_lo + data_block * self.keys_per_block
