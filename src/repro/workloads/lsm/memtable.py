"""The in-memory write buffer."""

from __future__ import annotations

__all__ = ["Memtable"]


class Memtable:
    """Sorted-map stand-in; tracks approximate byte footprint."""

    def __init__(self, value_size: int, flush_bytes: int):
        if flush_bytes <= 0:
            raise ValueError(f"flush_bytes must be positive: {flush_bytes}")
        self.value_size = value_size
        self.flush_bytes = flush_bytes
        self._data: dict[int, int] = {}  # key -> write sequence

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    @property
    def bytes_used(self) -> int:
        return len(self._data) * self.value_size

    @property
    def full(self) -> bool:
        return self.bytes_used >= self.flush_bytes

    def put(self, key: int, seq: int) -> None:
        self._data[key] = seq

    def get(self, key: int) -> int | None:
        return self._data.get(key)

    def sorted_keys(self) -> list[int]:
        return sorted(self._data)

    def key_range(self) -> tuple[int, int]:
        """(lo, hi_exclusive) over buffered keys."""
        if not self._data:
            raise ValueError("empty memtable has no key range")
        keys = self._data.keys()
        return min(keys), max(keys) + 1
