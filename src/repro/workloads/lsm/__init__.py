"""A compact LSM key-value store standing in for RocksDB.

The paper's RocksDB results hinge on its *I/O pattern*, not its key
encoding: per-thread file descriptors over shared SST files, an index
block lookup followed by a data block read per point get, sorted batch
gets (MultiGet), forward/backward iterators, WAL appends, memtable
flushes, and background compaction.  This package implements exactly
that surface over the simulated VFS, with no application block cache —
like the paper's setup, it leans entirely on the OS page cache.

Layout: ``LsmDb`` keeps a write path (WAL + memtable + L0) and a
compacted L1 of fixed-size, non-overlapping SSTables.  ``populate``
builds the L1 directly (files created in place, no simulated I/O) the
way db_bench's fill phase would have.
"""

from repro.workloads.lsm.db import DbConfig, LsmDb, ThreadCtx
from repro.workloads.lsm.memtable import Memtable
from repro.workloads.lsm.sstable import SSTable

__all__ = ["DbConfig", "LsmDb", "Memtable", "SSTable", "ThreadCtx"]
