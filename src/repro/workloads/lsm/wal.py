"""Write-ahead-log record tracking for the LSM store.

The simulator models I/O time, not file contents, so the WAL "records"
live here as metadata: for every put, the byte range its record
occupies in the WAL file, its sequence number, and its key.  Commit
points (``fsync`` + :meth:`WalLog.commit`) advance ``committed_seq`` —
the durable prefix the recovery invariant is phrased over: after a
crash, every put with ``seq <= committed_seq`` must be recoverable.

Replay is a coverage question: :meth:`WalLog.replayable` walks records
in append order and returns the longest prefix whose bytes all survived
the crash (per the :class:`~repro.sim.crash.CrashSnapshot`).  Because
records are appended in seq order and a commit barriers everything
written before it, a surviving prefix shorter than the committed prefix
means acknowledged-durable bytes were lost — an invariant violation
the recovery pass reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["WalLog", "WalRecord"]


@dataclass(frozen=True)
class WalRecord:
    """One put's record: ``[offset, offset+nbytes)`` in the WAL file."""

    seq: int
    key: int
    offset: int
    nbytes: int


class WalLog:
    """Append-order record log + commit-point bookkeeping."""

    def __init__(self) -> None:
        self.records: list[WalRecord] = []
        self.committed_seq = 0
        self.synced_offset = 0
        self.commits = 0

    def append(self, seq: int, key: int, offset: int,
               nbytes: int) -> None:
        self.records.append(WalRecord(seq, key, offset, nbytes))

    def commit(self, offset: int) -> None:
        """A flush barrier covered the WAL up to byte ``offset``."""
        self.commits += 1
        if offset > self.synced_offset:
            self.synced_offset = offset
        for rec in reversed(self.records):
            if rec.offset + rec.nbytes <= offset:
                if rec.seq > self.committed_seq:
                    self.committed_seq = rec.seq
                break

    def committed_records(self) -> list[WalRecord]:
        return [r for r in self.records if r.seq <= self.committed_seq]

    def replayable(self, covered: Callable[[int, int], bool]
                   ) -> list[WalRecord]:
        """Longest append-order prefix whose bytes all survived.

        ``covered(offset, nbytes)`` answers whether a byte range of the
        WAL file is intact post-crash; replay stops at the first torn
        or lost record, exactly like a checksummed WAL reader.
        """
        prefix: list[WalRecord] = []
        for rec in self.records:
            if not covered(rec.offset, rec.nbytes):
                break
            prefix.append(rec)
        return prefix
