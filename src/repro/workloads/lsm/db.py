"""The LSM database: point gets, batch gets, iterators, puts,
flushes, and background compaction over the simulated VFS.

I/O behaviour mirrors RocksDB with the paper's configuration:

* no application block cache — all reads go through the page cache;
* per-thread file descriptors on shared SSTs (:class:`ThreadCtx`);
* a point get = one index-block read + one data-block read;
* MultiGet sorts its batch, producing the "batched-but-random" forward
  strides of the paper's multireadrandom workload;
* iterators stream data blocks forward or backward;
* puts append to the WAL and buffer in a memtable; a full memtable is
  flushed to an L0 table by a background job, and L0 build-up triggers
  a compaction that merges into the dense L1 run.

The *access hints* passed at open are the application's beliefs
(RocksDB marks point-query files random, iterator/compaction files
sequential); what a hint does depends on the runtime under test.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Generator, Optional

from repro.os.kernel import Kernel
from repro.runtimes.base import (
    HINT_RANDOM,
    HINT_SEQUENTIAL,
    Handle,
    IORuntime,
)
from repro.workloads.lsm.memtable import Memtable
from repro.workloads.lsm.sstable import SSTable
from repro.workloads.lsm.wal import WalLog

__all__ = ["DbConfig", "FlushedSSTable", "LsmDb", "ThreadCtx"]

MB = 1 << 20
_sst_ids = itertools.count(1)


@dataclass
class DbConfig:
    """Database shape (sizes already scaled by the caller)."""

    num_keys: int = 500_000
    value_size: int = 1024
    sst_bytes: int = 8 * MB
    memtable_bytes: int = 2 * MB
    l0_compaction_trigger: int = 4
    write_buffer_io: int = 1 * MB    # flush/compaction I/O unit
    op_cpu_us: float = 2.0           # per-op application CPU
    wal_path: str = "/db/WAL"
    seed: int = 7
    # Group commit: fsync the WAL every N puts (0 = never during the
    # run; close() still commits).  Crash/recovery scenarios set this
    # so there is a committed prefix for the invariants to bite on.
    wal_sync_ops: int = 0


class FlushedSSTable(SSTable):
    """An L0 table holding a sparse, explicit key set."""

    def __init__(self, path: str, keys: list[int], value_size: int,
                 block_size: int):
        self.sorted_keys = sorted(keys)
        super().__init__(path=path, level=0,
                         key_lo=self.sorted_keys[0],
                         key_hi=self.sorted_keys[-1] + 1,
                         value_size=value_size, block_size=block_size)
        self._key_set = frozenset(keys)

    @property
    def num_keys(self) -> int:  # sparse: actual count, not range width
        return len(self.sorted_keys)

    def contains(self, key: int) -> bool:
        # Stands in for the bloom filter + range check.
        return key in self._key_set

    def data_block_of(self, key: int) -> int:
        rank = bisect.bisect_left(self.sorted_keys, key)
        if rank >= len(self.sorted_keys) or self.sorted_keys[rank] != key:
            raise KeyError(key)
        return rank // self.keys_per_block


class ThreadCtx:
    """Per-application-thread state: its own FDs on the shared SSTs."""

    def __init__(self, db: "LsmDb", hint: str = HINT_RANDOM):
        self.db = db
        self.hint = hint
        self._handles: dict[int, Handle] = {}  # id(sst) -> handle
        self.gets = 0
        self.sst_reads = 0

    def handle(self, sst: SSTable, hint: Optional[str] = None) -> Generator:
        key = id(sst)
        handle = self._handles.get(key)
        if handle is None:
            handle = yield from self.db.runtime.open(sst.path,
                                                     hint or self.hint)
            self._handles[key] = handle
        return handle

    def close_all(self) -> Generator:
        for handle in self._handles.values():
            yield from self.db.runtime.close(handle)
        self._handles.clear()


class LsmDb:
    """The database instance."""

    def __init__(self, kernel: Kernel, runtime: IORuntime,
                 config: Optional[DbConfig] = None, prefix: str = "/db"):
        self.kernel = kernel
        self.runtime = runtime
        self.config = config or DbConfig()
        self.prefix = prefix
        self.block_size = kernel.config.block_size
        self.l0: list[SSTable] = []      # newest first
        self.l1: list[SSTable] = []      # sorted, non-overlapping
        self._l1_lo_keys: list[int] = []
        self.memtable = Memtable(self.config.value_size,
                                 self.config.memtable_bytes)
        self._imm: Optional[Memtable] = None
        self._seq = 0
        self._wal_handle: Optional[Handle] = None
        self.wal = WalLog()
        self._puts_since_sync = 0
        self._compacting = False
        self._flushing = False
        self.stats = {"gets": 0, "puts": 0, "scans": 0, "flushes": 0,
                      "compactions": 0, "memtable_hits": 0}
        self.rng = random.Random(self.config.seed)

    # -- setup -----------------------------------------------------------------

    def populate(self) -> None:
        """Materialise a fully compacted L1 covering the keyspace.

        Files appear on the device without simulated I/O — this is the
        pre-experiment fill phase the paper excludes from timing.
        """
        cfg = self.config
        probe = SSTable(path="probe", level=1, key_lo=0, key_hi=1,
                        value_size=cfg.value_size,
                        block_size=self.block_size)
        keys_per_block = probe.keys_per_block
        data_bytes_per_key = cfg.value_size
        keys_per_sst = max(keys_per_block,
                           (cfg.sst_bytes // data_bytes_per_key)
                           // keys_per_block * keys_per_block)
        lo = 0
        while lo < cfg.num_keys:
            hi = min(cfg.num_keys, lo + keys_per_sst)
            sst = SSTable(path=f"{self.prefix}/L1-{next(_sst_ids):06d}.sst",
                          level=1, key_lo=lo, key_hi=hi,
                          value_size=cfg.value_size,
                          block_size=self.block_size)
            self.kernel.create_file(sst.path, sst.file_bytes)
            self.l1.append(sst)
            lo = hi
        self._l1_lo_keys = [sst.key_lo for sst in self.l1]
        self.kernel.create_file(cfg.wal_path, 0)

    @property
    def db_bytes(self) -> int:
        return sum(sst.file_bytes for sst in self.l1 + self.l0)

    def new_thread(self, hint: str = HINT_RANDOM) -> ThreadCtx:
        return ThreadCtx(self, hint)

    # -- read path ---------------------------------------------------------------

    def _l1_for(self, key: int) -> Optional[SSTable]:
        idx = bisect.bisect_right(self._l1_lo_keys, key) - 1
        if idx < 0:
            return None
        sst = self.l1[idx]
        return sst if sst.contains(key) else None

    def get(self, ctx: ThreadCtx, key: int) -> Generator:
        """Point lookup; returns True when found."""
        yield self.kernel.sim.timeout(self.config.op_cpu_us)
        self.stats["gets"] += 1
        ctx.gets += 1
        if key in self.memtable or (self._imm and key in self._imm):
            self.stats["memtable_hits"] += 1
            return True
        for sst in self.l0:
            if sst.contains(key):
                yield from self._read_key(ctx, sst, key)
                return True
        sst = self._l1_for(key)
        if sst is None:
            return False
        yield from self._read_key(ctx, sst, key)
        return True

    def _read_key(self, ctx: ThreadCtx, sst: SSTable,
                  key: int) -> Generator:
        handle = yield from ctx.handle(sst)
        yield from self.runtime.pread(handle, sst.index_offset(key),
                                      self.block_size)
        yield from self.runtime.pread(handle, sst.data_offset(key),
                                      self.block_size)
        ctx.sst_reads += 1

    def multiget(self, ctx: ThreadCtx, keys: list[int]) -> Generator:
        """Sorted batch get (RocksDB MultiGet): ascending per-SST reads."""
        yield self.kernel.sim.timeout(self.config.op_cpu_us)
        found = 0
        for key in sorted(keys):
            hit = yield from self.get(ctx, key)
            found += bool(hit)
        return found

    def scan(self, ctx: ThreadCtx, start_key: int, nkeys: int,
             reverse: bool = False) -> Generator:
        """Iterator over ``nkeys`` keys from ``start_key``."""
        yield self.kernel.sim.timeout(self.config.op_cpu_us)
        self.stats["scans"] += 1
        remaining = nkeys
        key = start_key
        while remaining > 0 and 0 <= key < self.config.num_keys:
            sst = self._l1_for(key)
            if sst is None:
                break
            handle = yield from ctx.handle(sst, HINT_SEQUENTIAL)
            yield from self.runtime.pread(handle, sst.index_offset(key),
                                          self.block_size)
            block = sst.data_block_of(key)
            step = -1 if reverse else 1
            while 0 <= block < sst.num_data_blocks and remaining > 0:
                yield from self.runtime.pread(
                    handle, sst.data_start + block * self.block_size,
                    self.block_size)
                remaining -= sst.keys_per_block
                block += step
            key = sst.key_lo - 1 if reverse else sst.key_hi
        return nkeys - max(0, remaining)

    # -- write path ----------------------------------------------------------------

    def _wal(self) -> Generator:
        if self._wal_handle is None:
            self._wal_handle = yield from self.runtime.open(
                self.config.wal_path, HINT_SEQUENTIAL)
        return self._wal_handle

    def put(self, ctx: ThreadCtx, key: int) -> Generator:
        yield self.kernel.sim.timeout(self.config.op_cpu_us)
        self.stats["puts"] += 1
        self._seq += 1
        seq = self._seq
        wal = yield from self._wal()
        offset = wal.pos
        nbytes = self.config.value_size + 12
        yield from self.runtime.write_seq(wal, nbytes)
        self.wal.append(seq, key, offset, nbytes)
        if self.config.wal_sync_ops > 0:
            self._puts_since_sync += 1
            if self._puts_since_sync >= self.config.wal_sync_ops:
                # Group commit: barrier the WAL, acknowledging every
                # record written so far as durable.
                self._puts_since_sync = 0
                yield from self.runtime.fsync(wal)
                self.wal.commit(wal.pos)
        self.memtable.put(key, seq)
        if self.memtable.full and not self._flushing:
            self._rotate_memtable()
        return True

    def _rotate_memtable(self) -> None:
        self._imm = self.memtable
        self.memtable = Memtable(self.config.value_size,
                                 self.config.memtable_bytes)
        self._flushing = True
        self.kernel.sim.process(self._flush_job(), name="lsm_flush")

    def _flush_job(self) -> Generator:
        """Background flush: write the immutable memtable as an L0 SST."""
        imm = self._imm
        assert imm is not None and len(imm) > 0
        sst = FlushedSSTable(
            path=f"{self.prefix}/L0-{next(_sst_ids):06d}.sst",
            keys=imm.sorted_keys(),
            value_size=self.config.value_size,
            block_size=self.block_size)
        self.kernel.create_file(sst.path, 0)
        handle = yield from self.runtime.open(sst.path, HINT_SEQUENTIAL)
        yield from self._write_out(handle, sst.file_bytes)
        yield from self.runtime.fsync(handle)
        yield from self.runtime.close(handle)
        self.l0.insert(0, sst)
        self.stats["flushes"] += 1
        self._imm = None
        self._flushing = False
        if len(self.l0) >= self.config.l0_compaction_trigger \
                and not self._compacting:
            self._compacting = True
            self.kernel.sim.process(self._compact_job(),
                                    name="lsm_compact")

    def _write_out(self, handle: Handle, nbytes: int) -> Generator:
        unit = self.config.write_buffer_io
        written = 0
        while written < nbytes:
            n = min(unit, nbytes - written)
            yield from self.runtime.write_seq(handle, n)
            written += n

    def _compact_job(self) -> Generator:
        """Merge all L0 tables plus the overlapping L1 range."""
        victims = list(self.l0)
        lo = min(s.key_lo for s in victims)
        hi = max(s.key_hi for s in victims)
        overlap = [s for s in self.l1
                   if s.key_hi > lo and s.key_lo < hi]
        ctx = self.new_thread(HINT_SEQUENTIAL)
        # Read every input sequentially...
        for sst in victims + overlap:
            handle = yield from ctx.handle(sst, HINT_SEQUENTIAL)
            pos = 0
            while pos < sst.file_bytes:
                n = min(self.config.write_buffer_io, sst.file_bytes - pos)
                yield from self.runtime.pread(handle, pos, n)
                pos += n
        # ...and write the merged run back as fresh L1 tables.
        out_lo = min(lo, overlap[0].key_lo) if overlap else lo
        out_hi = max(hi, overlap[-1].key_hi) if overlap else hi
        keys_per_sst = max(1, (self.config.sst_bytes
                               // self.config.value_size))
        new_tables: list[SSTable] = []
        pos = out_lo
        while pos < out_hi:
            end = min(out_hi, pos + keys_per_sst)
            sst = SSTable(path=f"{self.prefix}/L1-{next(_sst_ids):06d}.sst",
                          level=1, key_lo=pos, key_hi=end,
                          value_size=self.config.value_size,
                          block_size=self.block_size)
            self.kernel.create_file(sst.path, 0)
            handle = yield from self.runtime.open(sst.path,
                                                  HINT_SEQUENTIAL)
            yield from self._write_out(handle, sst.file_bytes)
            yield from self.runtime.fsync(handle)
            yield from self.runtime.close(handle)
            new_tables.append(sst)
            pos = end
        yield from ctx.close_all()
        # Swap metadata, then drop the inputs.
        keep = [s for s in self.l1 if s not in overlap]
        self.l1 = sorted(keep + new_tables, key=lambda s: s.key_lo)
        self._l1_lo_keys = [s.key_lo for s in self.l1]
        for sst in victims:
            if sst in self.l0:
                self.l0.remove(sst)
        for sst in victims + overlap:
            self.kernel.vfs.unlink(sst.path)
        self.stats["compactions"] += 1
        self._compacting = False

    # -- teardown ----------------------------------------------------------------

    def manifest(self) -> list[SSTable]:
        """The installed tables — the durable MANIFEST a real LSM
        persists.  Installation points (post-fsync for L0 flushes, the
        metadata swap for compactions) are synchronous, so the manifest
        is consistent at any crash instant: every listed table was
        fully written and fsync'd before it appeared here."""
        return list(self.l0) + list(self.l1)

    def close(self) -> Generator:
        if self._wal_handle is not None:
            yield from self.runtime.fsync(self._wal_handle)
            self.wal.commit(self._wal_handle.pos)
            yield from self.runtime.close(self._wal_handle)
            self._wal_handle = None
