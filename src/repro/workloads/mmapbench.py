"""mmap workloads for Table 4 (readseq / readrandom over mappings)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.os.kernel import Kernel
from repro.runtimes.base import HINT_RANDOM, IORuntime

__all__ = ["MmapBenchConfig", "run_mmapbench"]

KB = 1 << 10
MB = 1 << 20


@dataclass
class MmapBenchConfig:
    pattern: str = "readseq"        # "readseq" | "readrandom"
    nthreads: int = 8
    bytes_per_thread: int = 64 * MB
    access_size: int = 16 * KB
    seed: int = 3

    def __post_init__(self):
        if self.pattern not in ("readseq", "readrandom"):
            raise ValueError(f"bad mmap pattern {self.pattern!r}")


def run_mmapbench(kernel: Kernel, runtime: IORuntime,
                  config: MmapBenchConfig) -> ApproachMetrics:
    paths = []
    for tid in range(config.nthreads):
        path = f"/mmap/f{tid}"
        kernel.create_file(path, config.bytes_per_thread)
        paths.append(path)

    # The application under test distrusts mmap prefetching outright
    # (Table 4: "APPonly turns off prefetching using madvice" for both
    # patterns, the stock RocksDB mmap_reads behaviour), so its belief
    # is always "random"; what a runtime does with that is the policy.
    hint = HINT_RANDOM
    done: list[tuple[int, int, int, float]] = []

    def accessor(tid: int) -> Generator:
        rng = random.Random(config.seed * 71 + tid)
        mh = yield from runtime.mmap_open(paths[tid], hint)
        t0 = kernel.now
        total = hits = faults = 0
        naccesses = config.bytes_per_thread // config.access_size
        for i in range(naccesses):
            if config.pattern == "readseq":
                off = i * config.access_size
            else:
                off = rng.randrange(
                    0, config.bytes_per_thread - config.access_size)
                off = (off // 4096) * 4096
            h, f = yield from runtime.mmap_access(mh, off,
                                                  config.access_size)
            total += config.access_size
            hits += h
            faults += f
        done.append((total, hits, faults, kernel.now - t0))

    for tid in range(config.nthreads):
        kernel.sim.process(accessor(tid), name=f"mmap[{tid}]")
    kernel.run()

    duration = max(d[3] for d in done)
    return collect_metrics(
        runtime.name, kernel,
        duration_us=duration,
        bytes_read=sum(d[0] for d in done),
        ops=sum(d[0] // config.access_size for d in done),
        hit_pages=sum(d[1] for d in done),
        miss_pages=sum(d[2] for d in done),
        nthreads=config.nthreads,
        extra={"pattern": config.pattern},
    )
