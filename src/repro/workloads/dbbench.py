"""db_bench-style drivers over :class:`~repro.workloads.lsm.LsmDb`.

The paper's RocksDB experiments (Figs. 2, 7, 10, Table 5) use these
access patterns:

* ``readrandom`` — uniform point gets;
* ``multireadrandom`` — batched-but-random: each op draws a batch of
  keys and MultiGets them (sorted inside the batch);
* ``readseq`` / ``readreverse`` — full iterators, each thread scanning
  its keyspace partition forward / backward;
* ``readwhilescanning`` — one full-scan thread while the rest issue
  random gets.

RocksDB's application-side belief, which APPonly acts on: point-query
files are random (prefetching off), iterator files sequential.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.os.kernel import Kernel
from repro.runtimes.base import HINT_RANDOM, HINT_SEQUENTIAL, IORuntime
from repro.workloads.lsm import DbConfig, LsmDb

__all__ = ["DbBenchConfig", "PATTERNS", "run_dbbench"]

PATTERNS = ("readseq", "readreverse", "readrandom", "multireadrandom",
            "readwhilescanning")


@dataclass
class DbBenchConfig:
    """One db_bench invocation (sizes already scaled)."""

    pattern: str = "multireadrandom"
    nthreads: int = 8
    ops_per_thread: int = 1000
    batch_size: int = 8              # multireadrandom keys per op
    scan_fraction: float = 1.0       # portion of keyspace a scan covers
    db: DbConfig = None              # type: ignore[assignment]
    seed: int = 11

    def __post_init__(self):
        if self.pattern not in PATTERNS:
            raise ValueError(f"bad pattern {self.pattern!r}; "
                             f"choose from {PATTERNS}")
        if self.db is None:
            self.db = DbConfig()


def run_dbbench(kernel: Kernel, runtime: IORuntime,
                config: DbBenchConfig) -> ApproachMetrics:
    db = LsmDb(kernel, runtime, config.db)
    db.populate()
    done: list[tuple[int, float]] = []

    def getter(tid: int, multiget: bool) -> Generator:
        rng = random.Random(config.seed * 131 + tid)
        ctx = db.new_thread(HINT_RANDOM)
        t0 = kernel.now
        ops = 0
        for _ in range(config.ops_per_thread):
            if multiget:
                keys = [rng.randrange(config.db.num_keys)
                        for _ in range(config.batch_size)]
                yield from db.multiget(ctx, keys)
                ops += config.batch_size
            else:
                yield from db.get(ctx, rng.randrange(config.db.num_keys))
                ops += 1
        yield from ctx.close_all()
        done.append((ops, kernel.now - t0))

    def scanner(tid: int, reverse: bool) -> Generator:
        ctx = db.new_thread(HINT_SEQUENTIAL)
        t0 = kernel.now
        part = config.db.num_keys // config.nthreads
        span = max(1, int(part * config.scan_fraction))
        start = tid * part + (span - 1 if reverse else 0)
        nkeys = yield from db.scan(ctx, start, span, reverse=reverse)
        yield from ctx.close_all()
        done.append((nkeys, kernel.now - t0))

    pattern = config.pattern
    for tid in range(config.nthreads):
        if pattern == "readseq":
            kernel.sim.process(scanner(tid, False), name=f"scan[{tid}]")
        elif pattern == "readreverse":
            kernel.sim.process(scanner(tid, True), name=f"rscan[{tid}]")
        elif pattern == "readrandom":
            kernel.sim.process(getter(tid, False), name=f"get[{tid}]")
        elif pattern == "multireadrandom":
            kernel.sim.process(getter(tid, True), name=f"mget[{tid}]")
        elif pattern == "readwhilescanning":
            if tid == 0:
                kernel.sim.process(scanner(tid, False),
                                   name=f"scan[{tid}]")
            else:
                kernel.sim.process(getter(tid, False), name=f"get[{tid}]")
    kernel.run()

    duration = max(d[1] for d in done)
    ops = sum(d[0] for d in done)
    registry = kernel.registry
    return collect_metrics(
        runtime.name, kernel,
        duration_us=duration,
        bytes_read=int(registry.get("device.read_bytes")),
        ops=ops,
        hit_pages=int(registry.get("cache.demand_hits")),
        miss_pages=int(registry.get("cache.demand_misses")),
        nthreads=config.nthreads,
        extra={"pattern": pattern, "db_bytes": db.db_bytes},
    )
