"""Filebench personalities for the Fig. 8b multi-instance experiment.

The paper runs 16 instances each of four personalities (160 GB total):

* ``seqread`` — threads stream large files sequentially;
* ``randread`` — threads issue small random reads over a large file;
* ``mongodb`` — metadata-intensive: thousands of small files opened,
  read whole, and closed;
* ``videoserver`` — many concurrent streams reading large media files
  at a paced rate.

An *instance* is a separate process: its own runtime (own CROSS-LIB
state, own FDs) on the shared kernel.  ``run_filebench`` therefore takes
a runtime *factory* rather than a runtime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator

from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.os.kernel import Kernel
from repro.runtimes.base import (
    HINT_NORMAL,
    HINT_RANDOM,
    HINT_SEQUENTIAL,
    IORuntime,
)

__all__ = ["FilebenchConfig", "PERSONALITIES", "run_filebench"]

KB = 1 << 10
MB = 1 << 20

PERSONALITIES = ("seqread", "randread", "mongodb", "videoserver")


@dataclass
class FilebenchConfig:
    personality: str = "seqread"
    instances: int = 4
    threads_per_instance: int = 2
    bytes_per_instance: int = 64 * MB
    io_size: int = 64 * KB
    small_file_bytes: int = 128 * KB     # mongodb file size
    frame_bytes: int = 256 * KB          # videoserver frame
    frame_interval_us: float = 2_000.0   # pacing between frames
    seed: int = 17

    def __post_init__(self):
        if self.personality not in PERSONALITIES:
            raise ValueError(f"bad personality {self.personality!r}")


def run_filebench(kernel: Kernel,
                  runtime_factory: Callable[[], IORuntime],
                  config: FilebenchConfig) -> ApproachMetrics:
    done: list[tuple[int, int, int, float]] = []
    runtimes: list[IORuntime] = []

    for inst in range(config.instances):
        runtime = runtime_factory()
        runtimes.append(runtime)
        _spawn_instance(kernel, runtime, config, inst, done)
    kernel.run()
    for runtime in runtimes:
        runtime.teardown()

    duration = max(d[3] for d in done)
    metrics = collect_metrics(
        runtimes[0].name, kernel,
        duration_us=duration,
        bytes_read=sum(d[0] for d in done),
        ops=sum(d[1] for d in done),
        hit_pages=sum(d[1] for d in done),
        miss_pages=sum(d[2] for d in done),
        nthreads=config.instances * config.threads_per_instance,
    )
    # ops above double-counted hits; rebuild cleanly.
    metrics.ops = len(done)
    metrics.hit_pages = sum(d[1] for d in done)
    metrics.miss_pages = sum(d[2] for d in done)
    return metrics


def _spawn_instance(kernel: Kernel, runtime: IORuntime,
                    config: FilebenchConfig, inst: int,
                    done: list) -> None:
    personality = config.personality
    per_thread = config.bytes_per_instance // config.threads_per_instance

    if personality in ("seqread", "randread", "videoserver"):
        paths = []
        for t in range(config.threads_per_instance):
            path = f"/fb/{personality}{inst}/big{t}"
            kernel.create_file(path, per_thread)
            paths.append(path)
    else:  # mongodb: many small files per instance
        nfiles = max(8, config.bytes_per_instance
                     // config.small_file_bytes)
        paths = [f"/fb/mongo{inst}/f{i:05d}" for i in range(nfiles)]
        for path in paths:
            kernel.create_file(path, config.small_file_bytes)

    def seq_thread(tid: int) -> Generator:
        handle = yield from runtime.open(paths[tid], HINT_SEQUENTIAL)
        t0 = kernel.now
        total = hits = misses = 0
        pos = 0
        while pos < per_thread:
            r = yield from runtime.pread(handle, pos, config.io_size)
            total += r.nbytes
            hits += r.hit_pages
            misses += r.miss_pages
            pos += config.io_size
        yield from runtime.close(handle)
        done.append((total, hits, misses, kernel.now - t0))

    def rand_thread(tid: int) -> Generator:
        rng = random.Random(config.seed + inst * 100 + tid)
        handle = yield from runtime.open(paths[tid], HINT_RANDOM)
        t0 = kernel.now
        total = hits = misses = 0
        nops = per_thread // config.io_size
        for _ in range(nops):
            off = rng.randrange(0, max(1, per_thread - config.io_size))
            off = (off // 4096) * 4096
            r = yield from runtime.pread(handle, off, config.io_size)
            total += r.nbytes
            hits += r.hit_pages
            misses += r.miss_pages
        yield from runtime.close(handle)
        done.append((total, hits, misses, kernel.now - t0))

    def mongo_thread(tid: int) -> Generator:
        rng = random.Random(config.seed + inst * 100 + tid)
        t0 = kernel.now
        total = hits = misses = 0
        nops = per_thread // config.small_file_bytes
        for _ in range(max(1, nops)):
            path = paths[rng.randrange(len(paths))]
            handle = yield from runtime.open(path, HINT_NORMAL)
            pos = 0
            while pos < config.small_file_bytes:
                r = yield from runtime.pread(handle, pos, 16 * KB)
                total += r.nbytes
                hits += r.hit_pages
                misses += r.miss_pages
                pos += 16 * KB
            yield from runtime.close(handle)
        done.append((total, hits, misses, kernel.now - t0))

    def video_thread(tid: int) -> Generator:
        handle = yield from runtime.open(paths[tid], HINT_SEQUENTIAL)
        t0 = kernel.now
        total = hits = misses = 0
        pos = 0
        while pos < per_thread:
            r = yield from runtime.pread(handle, pos, config.frame_bytes)
            total += r.nbytes
            hits += r.hit_pages
            misses += r.miss_pages
            pos += config.frame_bytes
            # Pacing: a streaming server sends at media rate.
            yield kernel.sim.timeout(config.frame_interval_us)
        yield from runtime.close(handle)
        done.append((total, hits, misses, kernel.now - t0))

    body = {"seqread": seq_thread, "randread": rand_thread,
            "mongodb": mongo_thread, "videoserver": video_thread}
    for tid in range(config.threads_per_instance):
        kernel.sim.process(body[personality](tid),
                           name=f"fb_{personality}[{inst}:{tid}]")
