"""User-level file-descriptor structures (§4.3 step 1, §4.5).

CROSS-LIB keeps two layers of state:

* :class:`UserFileState` — one per inode per runtime: the user-space
  cache bitmap (held in the range tree's per-node windows), the
  dedicated FD used for prefetch syscalls, LRU bookkeeping for the
  aggressive evictor, and an open count.
* :class:`UserFd` — one per application open: the OS file description
  plus this FD's own :class:`~repro.crosslib.predictor.PatternPredictor`
  (per-FD prediction is what enables the Fig. 4 shared-file behaviour).
"""

from __future__ import annotations

from typing import Optional

from repro.crosslib.config import CrossLibConfig
from repro.crosslib.rangetree import RangeTree
from repro.os.inode import Inode
from repro.os.vfs import File
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

__all__ = ["UserFd", "UserFileState"]


class UserFileState:
    """Per-inode runtime state shared by all of the process's FDs."""

    def __init__(self, sim: Simulator, registry: StatsRegistry,
                 inode: Inode, prefetch_file: File,
                 config: CrossLibConfig):
        self.inode = inode
        # The FD CROSS-LIB's workers use for readahead_info calls.
        self.prefetch_file = prefetch_file
        self.config = config
        if config.range_tree:
            node_blocks = config.node_blocks
            category = "crosslib_range"
        else:
            # Degenerate tree: one node spanning the file = one big
            # user-level bitmap lock (the pre-range-tree design).
            node_blocks = max(1, inode.nblocks)
            category = "crosslib_file"
        self.tree = RangeTree(sim, registry, inode.nblocks, node_blocks,
                              category=category)
        self.open_count = 0
        self.last_access = sim.now
        # Most recent access position (blocks) — the evictor avoids the
        # region around it and prefers long-consumed blocks behind it.
        self.last_block = 0
        self.opened_at = sim.now
        self.closed_at: Optional[float] = None
        self.fetchall_done = False
        self.initial_prefetch_done = False
        # Aggressive bulk-load frontier (blocks below it have been
        # requested); fetchall sets it to the end immediately.
        self.bulk_cursor = 0

    @property
    def nblocks(self) -> int:
        return self.inode.nblocks

    def note_access(self, now: float) -> None:
        self.last_access = now

    def note_open(self, now: float) -> None:
        self.open_count += 1
        self.closed_at = None
        self.last_access = now

    def note_close(self, now: float) -> None:
        self.open_count = max(0, self.open_count - 1)
        if self.open_count == 0:
            self.closed_at = now

    def idle_for(self, now: float) -> float:
        return now - self.last_access


class UserFd:
    """One application open of a file through CROSS-LIB."""

    def __init__(self, state: UserFileState, file: File,
                 config: CrossLibConfig):
        # Imported here to avoid a module cycle (markov imports the
        # predictor types from predictor.py).
        from repro.crosslib.markov import build_predictor
        self.state = state
        self.file = file
        self.predictor = build_predictor(config)
        self.hint: Optional[str] = None
        # Prefetch frontier hysteresis: the runtime only re-issues a
        # prefetch once the remaining runway drops below half a window,
        # instead of on every read.
        self.frontier_fwd = 0
        self.frontier_bwd: Optional[int] = None

    @property
    def fd(self) -> int:
        return self.file.fd

    @property
    def inode(self) -> Inode:
        return self.state.inode
