"""A Lynx-style Markov region predictor (optional CROSS-LIB predictor).

The paper's future work calls for "sophisticated domain-specific
predictors"; its related work discusses Lynx (Laga et al., NVMSA '16),
which captures *random-looking but repeating* access sequences with a
Markov chain.  This module provides such a predictor behind the same
observe/plan interface as the default n-bit counter, selectable through
``CrossLibConfig.predictor_kind``:

* the file is divided into fixed-size *regions*;
* a first-order transition table counts region follow-ups;
* when the current region has a sufficiently confident successor, the
  predictor plans a prefetch of that successor region.

A hybrid mode layers it under the counter predictor: sequential runs use
the counter's windows, and on pattern breaks the Markov table gets a
chance to predict the jump target.

Both predictors expose the same surface the adaptive policy layer
shapes (:mod:`repro.crosslib.adaptive`, ``docs/prefetching.md``):
every plan they emit still flows through ``AdaptivePolicy.gate_plan``
when the learned layer is attached, so per-class clamps and the
perceptron admission gate apply regardless of ``predictor_kind``.

Invariants:

* transition counts only grow, and only by observed region follow-ups
  — a prediction never mutates the table;
* a successor is planned only when the current region has at least
  ``markov_min_samples`` observed follow-ups and the top successor
  holds at least the ``markov_confidence`` fraction of them;
* planned windows never cross a region boundary or the end of file.

Determinism/threading: pure table arithmetic — no simulation events,
no randomness, no locks.  Identical observation streams yield
identical transition tables and plans; iteration happens over
insertion-ordered dicts, so tie-breaks are deterministic too.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Optional

from repro.crosslib.config import CrossLibConfig
from repro.crosslib.predictor import (
    PatternPredictor,
    PatternState,
    PrefetchPlan,
)

__all__ = ["HybridPredictor", "MarkovPredictor"]


class MarkovPredictor:
    """First-order Markov chain over file regions."""

    def __init__(self, config: Optional[CrossLibConfig] = None):
        self.config = config or CrossLibConfig()
        self.region_blocks = self.config.markov_region_blocks
        self._transitions: dict[int, Counter] = defaultdict(Counter)
        self._last_region: Optional[int] = None
        self.observations = 0
        self.table_hits = 0

    # -- the predictor interface -------------------------------------------

    @property
    def state(self) -> PatternState:
        # Markov mode treats everything as (structured) random.
        return PatternState.RANDOM

    def observe(self, start: int, count: int) -> PatternState:
        self.observations += 1
        region = start // self.region_blocks
        if self._last_region is not None \
                and region != self._last_region:
            self._transitions[self._last_region][region] += 1
        self._last_region = region
        return self.state

    def plan(self, nblocks: int, relaxed: bool) -> Optional[PrefetchPlan]:
        if self._last_region is None:
            return None
        followers = self._transitions.get(self._last_region)
        if not followers:
            return None
        successor, hits = followers.most_common(1)[0]
        total = sum(followers.values())
        if total < self.config.markov_min_samples \
                or hits / total < self.config.markov_confidence:
            return None
        self.table_hits += 1
        start = successor * self.region_blocks
        count = min(self.region_blocks, max(0, nblocks - start))
        if count <= 0:
            return None
        return PrefetchPlan(start, count, backward=False)

    # introspection helpers ---------------------------------------------------

    def transition_count(self) -> int:
        return sum(sum(c.values()) for c in self._transitions.values())


class HybridPredictor:
    """Counter predictor for runs, Markov table for the jumps between
    them — the composition the Lynx comparison suggests."""

    def __init__(self, config: Optional[CrossLibConfig] = None):
        self.config = config or CrossLibConfig()
        self.counter = PatternPredictor(self.config)
        self.markov = MarkovPredictor(self.config)

    @property
    def state(self) -> PatternState:
        return self.counter.state

    @property
    def observations(self) -> int:
        return self.counter.observations

    def observe(self, start: int, count: int) -> PatternState:
        self.markov.observe(start, count)
        return self.counter.observe(start, count)

    def plan(self, nblocks: int, relaxed: bool) -> Optional[PrefetchPlan]:
        plan = self.counter.plan(nblocks, relaxed)
        if plan is not None:
            return plan
        # The run looks random to the counter: ask the Markov table
        # whether this "random" jump is actually a repeating sequence.
        return self.markov.plan(nblocks, relaxed)


def build_predictor(config: CrossLibConfig):
    """Predictor factory honouring ``config.predictor_kind``."""
    kind = config.predictor_kind
    if kind == "counter":
        return PatternPredictor(config)
    if kind == "markov":
        return MarkovPredictor(config)
    if kind == "hybrid":
        return HybridPredictor(config)
    raise ValueError(f"unknown predictor kind {kind!r}; "
                     "choose counter, markov, or hybrid")
