"""Concurrent per-file range tree (§4.5).

Threads sharing a file contend on the user-level bitmap lock as file
size and thread count grow.  The range tree splits the file's block
space into fixed-span nodes, each with its own rw-lock and its own
embedded bitmap window, so threads touching disjoint regions proceed
concurrently while threads touching the same region share cache
awareness.

Multi-node operations acquire node locks in index order, which makes
lock ordering global and deadlock-free.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional

from repro.os.bitmap import BlockBitmap
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.sync import RwLock

__all__ = ["RangeNode", "RangeTree"]


class RangeNode:
    """One contiguous block range with its own lock and bitmap."""

    def __init__(self, sim: Simulator, registry: StatsRegistry,
                 index: int, start: int, span: int,
                 category: str = "crosslib_range"):
        self.index = index
        self.start = start
        self.span = span
        self.lock = RwLock(sim, name=f"range[{index}]",
                           stats=registry.lock_stats(category))
        # Blocks cached according to the imported OS bitmap.
        self.cached = BlockBitmap(span)
        # Blocks already handed to a prefetch worker (dedup).
        self.requested = BlockBitmap(span)


class RangeTree:
    """Lazy map of node index -> :class:`RangeNode` for one file."""

    def __init__(self, sim: Simulator, registry: StatsRegistry,
                 nblocks: int, node_blocks: int,
                 category: str = "crosslib_range"):
        if node_blocks <= 0:
            raise ValueError(f"node_blocks must be positive: {node_blocks}")
        self.sim = sim
        self.registry = registry
        self.nblocks = nblocks
        self.node_blocks = node_blocks
        self.category = category
        self._nodes: dict[int, RangeNode] = {}

    def resize(self, nblocks: int) -> None:
        self.nblocks = max(self.nblocks, nblocks)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def node(self, index: int) -> RangeNode:
        node = self._nodes.get(index)
        if node is None:
            node = RangeNode(self.sim, self.registry, index,
                             index * self.node_blocks, self.node_blocks,
                             category=self.category)
            self._nodes[index] = node
        return node

    def nodes_for(self, start: int, count: int) -> list[RangeNode]:
        """Nodes covering [start, start+count), in lock order."""
        if count <= 0:
            return []
        first = start // self.node_blocks
        last = (start + count - 1) // self.node_blocks
        return [self.node(i) for i in range(first, last + 1)]

    # -- locked section helpers -------------------------------------------------

    def read_locked(self, start: int, count: int) -> "_LockedRange":
        return _LockedRange(self, start, count, write=False)

    def write_locked(self, start: int, count: int) -> "_LockedRange":
        return _LockedRange(self, start, count, write=True)

    def note_cached_fast(self, start: int, count: int
                         ) -> Optional[Generator]:
        """Mark [start, start+count) cached without suspending when the
        covering node's lock is free.

        Returns ``None`` when the update completed inline (the dominant
        case: one node, uncontended — no generator object, no send round
        trip per pread), else a generator the caller must ``yield from``
        to wait out the contention.  Identical lock and event behavior
        to :meth:`note_cached`.
        """
        if count <= 0:
            return None
        nb = self.node_blocks
        first = start // nb
        if first != (start + count - 1) // nb:
            return self.note_cached(start, count)
        node = self.node(first)
        lock = node.lock
        ev = lock.acquire_write()
        if ev is not None:
            return self._note_cached_contended(node, ev, start, count)
        ns = node.start
        lo = start if start > ns else ns
        hi = start + count
        node_end = ns + node.span
        if hi > node_end:
            hi = node_end
        node.cached.set_range(lo - ns, hi - lo)
        lock.release_write()
        return None

    def _note_cached_contended(self, node: RangeNode, ev,
                               start: int, count: int) -> Generator:
        """Finish a single-node note_cached whose lock was contended
        (``ev`` is the already-enqueued grant event)."""
        yield ev
        ns = node.start
        lo = start if start > ns else ns
        hi = start + count
        node_end = ns + node.span
        if hi > node_end:
            hi = node_end
        node.cached.set_range(lo - ns, hi - lo)
        node.lock.release_write()

    def note_cached(self, start: int, count: int) -> Generator:
        """Lock the covering nodes, mark [start, start+count) cached,
        release.  Prefer :meth:`note_cached_fast` on hot paths."""
        if count <= 0:
            return
        first = start // self.node_blocks
        last = (start + count - 1) // self.node_blocks
        if first == last:
            node = self.node(first)
            lock = node.lock
            ev = lock.acquire_write()
            if ev is not None:
                yield ev
            ns = node.start
            lo = start if start > ns else ns
            hi = start + count
            node_end = ns + node.span
            if hi > node_end:
                hi = node_end
            node.cached.set_range(lo - ns, hi - lo)
            lock.release_write()
            return
        nodes = [self.node(i) for i in range(first, last + 1)]
        for node in nodes:
            ev = node.lock.acquire_write()
            if ev is not None:
                yield ev
        for node in nodes:
            lo = max(start, node.start)
            hi = min(start + count, node.start + node.span)
            node.cached.set_range(lo - node.start, hi - lo)
        for node in reversed(nodes):
            node.lock.release_write()

    # -- bitmap views (caller must hold the relevant node locks) -------------------

    def missing_runs(self, start: int,
                     count: int) -> list[tuple[int, int]]:
        """Runs in [start, start+count) neither cached nor requested."""
        runs: list[tuple[int, int]] = []
        for node in self.nodes_for(start, count):
            lo = max(start, node.start)
            hi = min(start + count, node.start + node.span)
            for run_s, run_n in node.cached.missing_runs(lo - node.start,
                                                         hi - lo):
                for sub_s, sub_n in node.requested.missing_runs(run_s,
                                                                run_n):
                    runs.append((node.start + sub_s, sub_n))
        return _merge_adjacent(runs)

    def cached_count(self, start: int, count: int) -> int:
        total = 0
        for node in self.nodes_for(start, count):
            lo = max(start, node.start)
            hi = min(start + count, node.start + node.span)
            total += node.cached.count_set(lo - node.start, hi - lo)
        return total

    def mark_cached(self, start: int, count: int) -> None:
        self._mark(start, count, cached=True)

    def mark_requested(self, start: int, count: int) -> None:
        self._mark(start, count, cached=False)

    def clear_requested(self, start: int, count: int) -> None:
        for node in self.nodes_for(start, count):
            lo = max(start, node.start)
            hi = min(start + count, node.start + node.span)
            node.requested.clear_range(lo - node.start, hi - lo)

    def clear_cached(self, start: int, count: int) -> None:
        for node in self.nodes_for(start, count):
            lo = max(start, node.start)
            hi = min(start + count, node.start + node.span)
            node.cached.clear_range(lo - node.start, hi - lo)

    def load_window(self, start: int, count: int, bits: int) -> None:
        """Import an OS bitmap window into the per-node cached bitmaps."""
        for node in self.nodes_for(start, count):
            lo = max(start, node.start)
            hi = min(start + count, node.start + node.span)
            node.cached.load_window(lo - node.start, hi - lo,
                                    bits >> (lo - start))

    def cached_runs(self, start: int, count: int) -> list[tuple[int, int]]:
        runs: list[tuple[int, int]] = []
        for node in self.nodes_for(start, count):
            lo = max(start, node.start)
            hi = min(start + count, node.start + node.span)
            for run_s, run_n in node.cached.set_runs(lo - node.start,
                                                     hi - lo):
                runs.append((node.start + run_s, run_n))
        return _merge_adjacent(runs)

    def _mark(self, start: int, count: int, cached: bool) -> None:
        for node in self.nodes_for(start, count):
            lo = max(start, node.start)
            hi = min(start + count, node.start + node.span)
            target = node.cached if cached else node.requested
            target.set_range(lo - node.start, hi - lo)


class _LockedRange:
    """Acquire/release node locks spanning a range, in index order.

    Used as::

        section = tree.write_locked(start, count)
        yield from section.acquire()
        try:
            ...
        finally:
            section.release()
    """

    def __init__(self, tree: RangeTree, start: int, count: int,
                 write: bool):
        self.nodes = tree.nodes_for(start, count)
        self.write = write

    def acquire(self) -> Generator:
        # Yield only when the acquire actually blocks: an uncontended
        # section costs no generator suspensions at all.
        if self.write:
            for node in self.nodes:
                ev = node.lock.acquire_write()
                if ev is not None:
                    yield ev
        else:
            for node in self.nodes:
                ev = node.lock.acquire_read()
                if ev is not None:
                    yield ev

    def release(self) -> None:
        for node in reversed(self.nodes):
            if self.write:
                node.lock.release_write()
            else:
                node.lock.release_read()


def _merge_adjacent(runs: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    merged: list[tuple[int, int]] = []
    for start, count in runs:
        if merged and merged[-1][0] + merged[-1][1] == start:
            merged[-1] = (merged[-1][0], merged[-1][1] + count)
        else:
            merged.append((start, count))
    return merged
