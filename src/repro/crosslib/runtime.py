"""The CROSS-LIB runtime facade (§4.3).

Applications link against this the way the paper's artifact LD_PRELOADs
its shim: every POSIX call goes through here.  On each read/write the
runtime feeds the per-FD predictor, consults the user-space bitmap (via
the range tree) to decide whether anything actually needs prefetching,
and enqueues block ranges to the background worker pool — which is the
whole point: the expensive syscall (``readahead_info``) happens off the
application thread, and only for blocks the user-space bitmap says are
not already cached or requested.
"""

from __future__ import annotations

from typing import Generator, Iterator, Optional

from repro.crosslib.config import CrossLibConfig
from repro.crosslib.fdtable import UserFd, UserFileState
from repro.crosslib.membudget import MemoryBudget
from repro.crosslib.predictor import PrefetchPlan
from repro.crosslib.workers import PrefetchRequest, WorkerPool
from repro.os.crossos import CacheInfo
from repro.os.kernel import Kernel
from repro.runtimes.base import Handle, IORuntime, MmapHandle
from repro.sim.sync import Condition

__all__ = ["CrossLibRuntime"]


class CrossLibRuntime(IORuntime):
    name = "CrossPrefetch"

    def __init__(self, kernel: Kernel,
                 config: Optional[CrossLibConfig] = None):
        super().__init__(kernel)
        if kernel.cross is None:
            raise ValueError(
                "CrossLibRuntime needs a kernel with cross_enabled=True")
        self.crossos = kernel.cross
        self.config = config or CrossLibConfig()
        self.registry = kernel.registry
        self._states: dict[int, UserFileState] = {}
        self.budget = MemoryBudget(self, self.config)
        self.budget.update(kernel.mem.free_pages, kernel.mem.total_pages)
        self.workers = WorkerPool(self)
        self._watchers: list = []
        self._budget_tick = 0
        # Span observer snapshot (same wiring contract as the VFS: the
        # kernel attaches it before runtimes are constructed).
        self._observer = kernel.registry.observer
        # Config flags are fixed after construction; snapshot the ones
        # the pread hot path branches on.
        self._predict = self.config.predict
        self._aggressive = self.config.aggressive
        self._bulk_eligible = self.config.aggressive \
            and not self.config.fetchall
        # Fault-pressure controller (None on a healthy device): while it
        # is throttled the library stops asking for relaxed windows and
        # suspends opportunistic bulk loading.  With a QoS manager the
        # check is per-tenant (only the faulted tenant's streams are
        # throttled); otherwise the device-global controller applies.
        self._degrade = kernel.device.degrade
        self._qos = kernel.device.qos
        # Learned adaptive policy (None unless Kernel(adaptive=...)):
        # pattern classification, plan shaping/admission, and hit/miss
        # training feedback all hang off the pread path below.
        self._adaptive = kernel.device.adaptive

    # -- helpers ----------------------------------------------------------------

    @property
    def block_size(self) -> int:
        return self.kernel.config.block_size

    def iter_states(self) -> Iterator[UserFileState]:
        return iter(self._states.values())

    def _state_for(self, handle_file) -> UserFileState:
        return self._state_for_inode(handle_file.inode)

    def _state_for_inode(self, inode) -> UserFileState:
        state = self._states.get(inode.id)
        if state is None:
            prefetch_file = self.vfs.open_sync(inode.path)
            prefetch_file.ra.enabled = False
            state = UserFileState(self.sim, self.registry, inode,
                                  prefetch_file, self.config)
            self._states[inode.id] = state
        return state

    def prime(self, path: str, start: int, count: int,
              chunk_bytes: Optional[int] = None) -> Generator:
        """Queue a block range of ``path`` for background prefetch.

        The public priming entry point used by repair/recovery scans
        (:mod:`repro.crosslib.repair`): no open FD or predictor state is
        needed — the range goes straight through the user bitmap check
        to the worker pool, so only uncached, unrequested runs generate
        ``readahead_info`` syscalls.
        """
        inode = self.vfs.lookup(path)
        state = self._state_for_inode(inode)
        yield from self._enqueue_range(state, start, count,
                                       chunk_bytes=chunk_bytes)

    # -- policy hooks ----------------------------------------------------------------

    def _on_open(self, handle: Handle) -> Generator:
        # CROSS-LIB owns prefetching for this FD; stock readahead off.
        handle.file.ra.enabled = False
        state = self._state_for(handle.file)
        state.note_open(self.sim.now)
        handle.ufd = UserFd(state, handle.file, self.config)
        cfg = self.config
        if cfg.fetchall and not state.fetchall_done:
            state.fetchall_done = True
            state.bulk_cursor = state.nblocks
            yield from self._enqueue_range(state, 0, state.nblocks,
                                           chunk_bytes=cfg.fetchall_chunk_bytes)
        elif cfg.aggressive and not state.initial_prefetch_done \
                and self.budget.allow_aggressive:
            # Optimistic open-time prefetch (§4.6): assume sequential.
            state.initial_prefetch_done = True
            blocks = cfg.aggressive_initial_bytes // self.block_size
            yield from self._enqueue_range(state, 0,
                                           min(blocks, state.nblocks))

    def _on_close(self, handle: Handle) -> Generator:
        ufd: UserFd = handle.ufd
        ufd.state.note_close(self.sim.now)
        return
        yield  # pragma: no cover - generator marker

    # -- data path ----------------------------------------------------------------------

    def pread(self, handle: Handle, offset: int,
              nbytes: int) -> Generator:
        ufd: UserFd = handle.ufd
        state = ufd.state
        state.last_access = self.sim.now
        if self._aggressive:
            self._budget_pulse()
        bs = self.block_size
        b0 = offset // bs
        state.last_block = b0
        inode = state.inode
        end = offset + nbytes
        if end > inode.size:
            end = inode.size
        count = (end + bs - 1) // bs - b0 if end > 0 else 0
        if count < 1:
            count = 1
        obs = self._observer
        span = obs.begin("crosslib", "pread", inode=inode.id,
                         block=b0, count=count) if obs is not None else None

        adaptive = self._adaptive
        if self._predict:
            ufd.predictor.observe(b0, count)
            if adaptive is not None:
                cfg = self.config
                adaptive.observe(inode.id, b0, count,
                                 ufd.predictor.counter, cfg.counter_max)
                # Classified-sequential streams earn the relaxed window
                # scaling sooner than the static streak threshold.
                ufd.predictor.streak_override = adaptive.relax_streak(
                    inode.id, cfg.streak_threshold)
            # §4.6: prefetch aggressiveness adapts to the budget — under
            # memory pressure the relaxed (beyond-128KB) window scaling
            # is withheld, not just the on/off switch.
            relaxed = self.config.relax_limits and (
                not self._aggressive
                or self.budget.allow_aggressive)
            if relaxed:
                if self._qos is not None:
                    if self._qos.level_of(inode.id, self.sim.now) >= 1:
                        # This stream's tenant is absorbing faults: fall
                        # back to conservative windows until it recovers
                        # (co-tenants keep their relaxed windows).
                        relaxed = False
                elif self._degrade is not None \
                        and self._degrade.current_level(self.sim.now) >= 1:
                    # Device under fault pressure: fall back to
                    # conservative windows until the controller recovers.
                    relaxed = False
            plan = ufd.predictor.plan(state.nblocks, relaxed)
            if plan is not None and adaptive is not None:
                # Per-class sizing (boost sequential, clamp temporal/
                # random) + the perceptron issue gate.
                plan = adaptive.gate_plan(inode.id, plan, state.nblocks)
            if plan is not None and self._plan_due(ufd, plan, b0, count):
                yield from self._maybe_enqueue(state, plan)
        # Guard repeated in-line: _maybe_bulk_load's first two early
        # returns, checked here to skip the generator frame per pread
        # when bulk loading cannot apply.
        if self._bulk_eligible and state.bulk_cursor < state.nblocks:
            yield from self._maybe_bulk_load(state, ufd)

        result = yield from self.vfs.read(handle.file, offset, nbytes,
                                          parent=span)
        if adaptive is not None:
            # Demand hit/miss feedback: the training label for the most
            # recent gate decision on this stream.
            adaptive.note_outcome(inode.id, result.hit_pages,
                                  result.miss_pages)

        # The blocks we just read are resident now: remember that in the
        # user bitmap so nobody prefetches them again.  (The bitmap
        # update itself is sub-0.1 µs; the lock round-trip is the cost
        # that matters and the fast path makes it free when uncontended.)
        pending = state.tree.note_cached_fast(b0, count)
        if pending is not None:
            yield from pending
        if span is not None:
            span.end(bytes=result.nbytes, hits=result.hit_pages,
                     misses=result.miss_pages)
        return result

    def pwrite(self, handle: Handle, offset: int,
               nbytes: int) -> Generator:
        ufd: UserFd = handle.ufd
        state = ufd.state
        state.note_access(self.sim.now)
        bs = self.block_size
        b0 = offset // bs
        if self.config.predict:
            count_hint = max(1, (nbytes + bs - 1) // bs)
            ufd.predictor.observe(b0, count_hint)
        written = yield from self.vfs.write(handle.file, offset, nbytes)
        count = max(1, (written + bs - 1) // bs)
        state.tree.resize(state.inode.nblocks)
        pending = state.tree.note_cached_fast(b0, count)
        if pending is not None:
            yield from pending
        return written

    # -- prefetch decisions -------------------------------------------------------------

    def _plan_due(self, ufd: UserFd, plan: PrefetchPlan, b0: int,
                  count: int) -> bool:
        """Frontier hysteresis: re-issue only when the prefetched runway
        ahead of the stream has shrunk below half a window (or looks
        stale after a jump)."""
        window = max(1, plan.count)
        if not plan.backward:
            cur = b0 + count
            runway = ufd.frontier_fwd - cur
            if 0 <= runway < 4 * window and runway >= window // 2:
                return False
            ufd.frontier_fwd = plan.start + plan.count
            return True
        cur = b0
        if ufd.frontier_bwd is not None:
            runway = cur - ufd.frontier_bwd
            if 0 <= runway < 4 * window and runway >= window // 2:
                return False
        ufd.frontier_bwd = plan.start
        return True

    def _maybe_enqueue(self, state: UserFileState,
                       plan: PrefetchPlan) -> Generator:
        """Check the user bitmap; enqueue only uncached, unrequested runs.

        This is the syscall-elision at the heart of the design: when the
        bitmap says everything is already cached (or already on its way),
        no syscall happens at all.
        """
        if not self.budget.allow_prefetch:
            return
        cfg = self.config
        section = state.tree.write_locked(plan.start, plan.count)
        yield from section.acquire()
        yield self.sim.timeout(cfg.user_op)
        missing = state.tree.missing_runs(plan.start, plan.count)
        for run_start, run_len in missing:
            state.tree.mark_requested(run_start, run_len)
        section.release()
        if not missing:
            self.registry.count("cross.elided_prefetch")
            obs = self._observer
            if obs is not None:
                obs.instant("crosslib", "elide", inode=state.inode.id,
                            start=plan.start, count=plan.count)
            return
        self._submit_runs(state, missing)

    def _budget_pulse(self) -> None:
        """Periodic memory monitoring from the application threads
        (§4.6: "CROSS-LIB continually monitors memory usage").  Keeps
        the evictor alive even when no prefetch workers are running —
        otherwise low memory stops prefetch, idles the workers, and
        nothing ever frees memory again."""
        if not self.config.aggressive:
            return
        self._budget_tick += 1
        if self._budget_tick & 31:
            return
        self.budget.refresh()
        if self.budget.free_fraction <= self.config.evict_watermark \
                and not self.budget._evicting:
            self.sim.process(self.budget.maybe_evict(),
                             name="cross_evictor")

    def _maybe_bulk_load(self, state: UserFileState,
                         ufd: Optional[UserFd] = None) -> Generator:
        """Aggressive compulsory-miss elimination: while memory is
        plentiful, keep bulk-loading files the application is actively
        reading *randomly* (§4.6).  Sequential streams are excluded —
        the predictor's windows already cover them, and a deep bulk
        backlog would only stall the stream behind its own prefetch."""
        cfg = self.config
        if not cfg.aggressive or cfg.fetchall:
            return
        if ufd is not None and cfg.predict \
                and ufd.predictor.state.value >= cfg.prefetch_threshold:
            return
        if state.bulk_cursor >= state.nblocks:
            return
        if not self.budget.allow_bulk:
            return
        # Bulk loading is pure opportunism — first thing to go when the
        # device (or, under QoS, this stream's tenant) absorbs faults.
        if self._qos is not None:
            if self._qos.level_of(state.inode.id, self.sim.now) >= 1:
                return
        elif self._degrade is not None \
                and self._degrade.current_level(self.sim.now) >= 1:
            return
        if self._adaptive is not None \
                and not self._adaptive.admit_bulk(state.inode.id):
            return
        if self.workers.backlog >= cfg.nr_workers:
            return
        start = state.bulk_cursor
        chunk = max(1, cfg.aggressive_bulk_bytes // self.block_size)
        state.bulk_cursor = min(state.nblocks, start + chunk)
        yield from self._enqueue_range(state, start,
                                       state.bulk_cursor - start)

    def _enqueue_range(self, state: UserFileState, start: int,
                       count: int,
                       chunk_bytes: Optional[int] = None) -> Generator:
        if count <= 0:
            return
        section = state.tree.write_locked(start, count)
        yield from section.acquire()
        missing = state.tree.missing_runs(start, count)
        for run_start, run_len in missing:
            state.tree.mark_requested(run_start, run_len)
        section.release()
        self._submit_runs(state, missing, chunk_bytes=chunk_bytes)

    def _submit_runs(self, state: UserFileState,
                     runs: list[tuple[int, int]],
                     chunk_bytes: Optional[int] = None) -> None:
        cfg = self.config
        bs = self.block_size
        cap_bytes = chunk_bytes or (cfg.max_request_bytes if cfg.relax_limits
                                    else cfg.capped_request_bytes)
        cap = max(1, cap_bytes // bs)
        for run_start, run_len in runs:
            pos = run_start
            while pos < run_start + run_len:
                n = min(cap, run_start + run_len - pos)
                self.workers.submit(PrefetchRequest(state, pos, n))
                pos += n

    # -- mmap -------------------------------------------------------------------------------

    def _on_mmap_open(self, mh: MmapHandle) -> Generator:
        # The OS fault path keeps fault-around, but CROSS-LIB drives the
        # readahead through its watcher instead of the stock engine.
        mh.region.file.ra.enabled = False
        state = self._state_for(mh.region.file)
        state.note_open(self.sim.now)
        watcher = _MmapWatcher(self, state)
        mh.watcher = watcher
        self._watchers.append(watcher)
        return
        yield  # pragma: no cover - generator marker

    def mmap_access(self, mh: MmapHandle, offset: int,
                    nbytes: int) -> Generator:
        mh.watcher.kick()
        result = yield from mh.region.access(offset, nbytes)
        return result

    # -- lifecycle -------------------------------------------------------------------------

    def teardown(self) -> None:
        self.workers.teardown()
        for watcher in self._watchers:
            watcher.teardown()


class _MmapWatcher:
    """Bitmap-delta pattern detection for memory-mapped files (§4.6).

    mmap loads/stores make no syscalls, so CROSS-LIB cannot observe them
    directly.  Instead a background thread periodically imports the
    file's cache bitmap (``readahead_info`` with ``fetch_bitmap_only``),
    diffs it against the previous snapshot to find the fault frontier,
    and prefetches a window ahead of it.  As §4.6 admits, this resembles
    OS readahead in accuracy — the Table-4 gains come from the larger,
    budget-aware windows.
    """

    def __init__(self, runtime: CrossLibRuntime, state: UserFileState):
        self.runtime = runtime
        self.state = state
        self._kick = Condition(runtime.sim, "mmap_watch_kick")
        self._snapshot = None
        self._frontier = 0
        self._window = max(
            32, runtime.config.aggressive_initial_bytes
            // runtime.block_size)
        self._proc = runtime.sim.process(self._loop(), name="mmap_watcher")

    def kick(self) -> None:
        self._kick.notify_all()

    def _loop(self) -> Generator:
        runtime = self.runtime
        state = self.state
        bs = runtime.block_size
        while True:
            yield self._kick.wait()
            info = CacheInfo(offset=0, nbytes=state.inode.size,
                             fetch_bitmap_only=True,
                             bitmap_window=(0, state.nblocks))
            info = yield from runtime.crossos.readahead_info(
                state.prefetch_file, info)
            bits = info.bitmap_bits
            if self._snapshot is not None:
                delta = bits & ~self._snapshot
            else:
                delta = bits
            self._snapshot = bits
            runtime.budget.update(info.free_pages, info.total_pages)
            if delta == 0:
                continue
            frontier = delta.bit_length()  # one past highest new block
            sequentialish = frontier >= self._frontier
            self._frontier = frontier
            if not sequentialish or not runtime.budget.allow_prefetch:
                continue
            count = min(self._window, max(0, state.nblocks - frontier))
            if count > 0:
                yield from runtime._enqueue_range(state, frontier, count)
                # Grow the window while the pattern holds.
                self._window = min(self._window * 2,
                                   runtime.config.max_request_bytes // bs)

    def teardown(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("teardown")
