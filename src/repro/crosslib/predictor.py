"""The CROSS-LIB access-pattern predictor (§4.6).

A per-file-descriptor n-bit saturating counter tracks how sequential the
FD's accesses are.  With the default 3 bits the counter ranges over the
paper's seven states, from HIGHLY_RANDOM (0) to DEFINITELY_SEQUENTIAL
(6).  Sequential and short-stride accesses (forward or backward)
increment it; nearby random accesses decrement it; far jumps decrement
it twice.  The prefetch window grows exponentially with the counter —
``base << counter`` blocks — and prefetching only engages once the
counter crosses the threshold state (PARTIALLY_RANDOM by default).

Once the counter saturates at either end the predictor enters a steady
state and skips bookkeeping for a while (the paper's prediction-damping
optimisation); this is a CPU-cost detail, so the model simply keeps the
counter pinned until contrary evidence arrives.

Beyond the counter, three refinements shape the window:

* **stride & direction detection** — constant short strides (forward
  or backward) count as sequential, and backward runs plan backward
  windows;
* **run-length clamping** — windows are clamped to the observed
  typical run length ("fine-grained prediction"), so a workload of
  short sequential bursts never over-fetches past where runs end;
* **relaxed scaling** (§4.7) — after a sustained sequential streak
  (``streak_threshold`` accesses, overridable per stream by the
  adaptive layer via ``streak_override`` — see
  :mod:`repro.crosslib.adaptive` and ``docs/prefetching.md``), relaxed
  windows scale a further ``opt_window_scale``×.

Invariants:

* the counter stays in ``[0, counter_max]`` (saturating at both ends);
* a plan is only produced at/above ``prefetch_threshold``
  (PARTIALLY_RANDOM), and ``plan.count`` never exceeds the relaxed or
  conservative window for the current counter, the run-length clamp,
  or the end of the file;
* ``streak`` resets to zero on any non-sequential observation, so
  relaxed scaling always reflects the *current* run.

Determinism/threading: pure per-FD state-machine arithmetic — no
simulation events, no randomness, no locks; all mutation happens
inline on the calling (simulated) thread's read path, so identical
observation streams yield identical plans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.crosslib.config import CrossLibConfig

__all__ = ["PatternPredictor", "PatternState", "PrefetchPlan"]


class PatternState(enum.IntEnum):
    """The seven predictor states of §4.6."""

    HIGHLY_RANDOM = 0
    RANDOM = 1
    PARTIALLY_RANDOM = 2
    LIKELY_SEQUENTIAL = 3
    SEQUENTIAL = 4
    MOSTLY_SEQUENTIAL = 5
    DEFINITELY_SEQUENTIAL = 6


# Counter-value -> state lookup; the enum's value->member call is a
# measurable cost on the per-read observe() path.
_STATES = tuple(PatternState(i) for i in range(7))


@dataclass
class PrefetchPlan:
    """A prefetch the predictor wants: block range plus direction."""

    start: int
    count: int
    backward: bool = False


class PatternPredictor:
    """Per-FD sequentiality counter with stride and direction tracking."""

    def __init__(self, config: Optional[CrossLibConfig] = None):
        self.config = config or CrossLibConfig()
        self.counter = 0  # files open in "definitely random" (§4.6)
        self.last_start: Optional[int] = None
        self.last_end: Optional[int] = None
        self.last_gap: Optional[int] = None
        self.direction = 1  # +1 forward, -1 backward
        self.observations = 0
        # Run-length tracking: the window is clamped to a small multiple
        # of the typical sequential run, so a partially-random stream
        # ("likely sequential" state) gets burst-sized prefetches while a
        # long pure stream gets ever-larger ones.
        self.run_blocks = 0          # current contiguous/stride run
        self.avg_run_blocks = 0.0    # EMA of completed run lengths
        self.streak = 0              # consecutive sequential accesses
        self._prev_fwd_gap: Optional[int] = None  # for long-stride match
        # Adaptive-policy override of config.streak_threshold (None =
        # static threshold).  Set per read by the CROSS-LIB runtime
        # when repro.crosslib.adaptive classifies the stream.
        self.streak_override: Optional[int] = None

    @property
    def state(self) -> PatternState:
        c = self.counter
        return _STATES[c if c < 6 else 6]

    # -- observation ----------------------------------------------------------

    def observe(self, start: int, count: int) -> PatternState:
        """Feed one access (block start, block count); returns new state."""
        cfg = self.config
        self.observations += 1
        if self.last_end is None:
            # First access: sequential files almost always start at 0.
            delta = 1 if start == 0 else 0
            self.direction = 1
        else:
            fwd_gap = start - self.last_end
            bwd_gap = self.last_start - (start + count)
            if fwd_gap == 0 or (start > self.last_start
                                and start < self.last_end
                                and start + count >= self.last_end):
                # Contiguous, or an overlapping forward extension
                # (unaligned I/O re-touching the previous tail block).
                delta = 1
                self.direction = 1
                self.last_gap = 0
            elif bwd_gap == 0 or (start + count < self.last_end
                                  and start + count > self.last_start
                                  and start <= self.last_start):
                delta = 1
                self.direction = -1
                self.last_gap = 0
            elif 0 < fwd_gap <= cfg.stride_blocks:
                delta = 1
                self.direction = 1
                self.last_gap = fwd_gap
            elif 0 < bwd_gap <= cfg.stride_blocks:
                delta = 1
                self.direction = -1
                self.last_gap = -bwd_gap
            elif fwd_gap > 0 and fwd_gap == self._prev_fwd_gap:
                # A consistent long forward stride is still predictable.
                delta = 1
                self.direction = 1
                self.last_gap = fwd_gap
            elif abs(fwd_gap) <= cfg.near_random_blocks:
                delta = -1
            else:
                delta = -2
            self._prev_fwd_gap = fwd_gap
        if delta > 0:
            self.streak += 1
            self.run_blocks += count + abs(self.last_gap or 0)
        else:
            self.streak = 0
            # Only meaningful runs feed the estimate; a stray one-block
            # access (e.g. an interleaved index read) must not poison it.
            if self.run_blocks >= self.config.base_prefetch_blocks:
                if self.avg_run_blocks <= 0:
                    self.avg_run_blocks = float(self.run_blocks)
                else:
                    self.avg_run_blocks = (0.75 * self.avg_run_blocks
                                           + 0.25 * self.run_blocks)
            self.run_blocks = count
        c = self.counter + delta
        if c > cfg.counter_max:
            c = cfg.counter_max
        elif c < 0:
            c = 0
        self.counter = c
        self.last_start = start
        self.last_end = start + count
        return _STATES[c if c < 6 else 6]

    # -- planning --------------------------------------------------------------

    def window_blocks(self, relaxed: bool) -> int:
        """Current prefetch window: base << counter (2^n growth).

        Relaxed (no-OS-limit) scaling only engages after a sustained
        sequential streak — "definitely sequential" needs evidence — and
        the window never exceeds a small multiple of the typical run
        length, so partially-random streams get burst-sized prefetches.
        """
        cfg = self.config
        if self.counter < cfg.prefetch_threshold:
            return 0
        window = cfg.base_prefetch_blocks << self.counter
        streak_needed = cfg.streak_threshold \
            if self.streak_override is None else self.streak_override
        if relaxed and self.streak >= streak_needed \
                and self.counter >= cfg.counter_max:
            window *= cfg.opt_window_scale
        avg = self.avg_run_blocks
        if avg > 0:
            # Fine-grained sizing: don't prefetch past where the typical
            # run would end.  A pure sequential stream never completes a
            # run, leaves avg at 0, and stays unclamped.
            if self.run_blocks < avg:
                remaining = int(avg) - self.run_blocks
                window = min(window, max(cfg.base_prefetch_blocks,
                                         remaining))
            elif self.run_blocks < 2 * avg:
                # Past the estimate but not absurdly so: small probes.
                window = min(window, cfg.base_prefetch_blocks * 4)
            # Far past the estimate: the run is clearly longer than the
            # history suggests — leave the counter window unclamped.
        return window

    def plan(self, nblocks: int, relaxed: bool) -> Optional[PrefetchPlan]:
        """Where to prefetch next, or None while the FD looks random."""
        window = self.window_blocks(relaxed)
        if window <= 0 or self.last_end is None:
            return None
        stride = self.last_gap or 0
        if self.direction >= 0:
            start = self.last_end + max(0, stride)
            count = min(window, max(0, nblocks - start))
            if count <= 0:
                return None
            return PrefetchPlan(start, count, backward=False)
        end = (self.last_start or 0) + min(0, stride)
        start = max(0, end - window)
        count = end - start
        if count <= 0:
            return None
        return PrefetchPlan(start, count, backward=True)
