"""CROSS-LIB: the user-level half of CrossPrefetch.

The runtime intercepts POSIX I/O (here: it *is* the I/O facade the
workloads call), detects per-FD access patterns, keeps a user-space copy
of each file's cache bitmap imported via ``readahead_info``, and issues
prefetch requests from background worker threads.  Its pieces:

* :mod:`repro.crosslib.config` — every CROSS-LIB knob (the artifact's
  ``PREFETCH_SIZE_VAR``, ``NR_WORKERS_VAR``, watermarks, …).
* :mod:`repro.crosslib.predictor` — the n-bit sequentiality counter
  (7 states, exponential 2^n window growth, backward-stride support).
* :mod:`repro.crosslib.rangetree` — the concurrent per-file range tree
  with per-node locks and embedded bitmaps (§4.5).
* :mod:`repro.crosslib.fdtable` — per-inode and per-FD user-level state.
* :mod:`repro.crosslib.workers` — background prefetch threads feeding
  ``readahead_info``.
* :mod:`repro.crosslib.membudget` — memory-budget tracking, aggressive
  prefetching and aggressive reclamation (§4.6).
* :mod:`repro.crosslib.runtime` — the :class:`CrossLibRuntime` facade
  applications (workloads) link against.
"""

from repro.crosslib.config import CrossLibConfig
from repro.crosslib.predictor import PatternPredictor, PatternState
from repro.crosslib.rangetree import RangeTree
from repro.crosslib.runtime import CrossLibRuntime

__all__ = [
    "CrossLibConfig",
    "CrossLibRuntime",
    "PatternPredictor",
    "PatternState",
    "RangeTree",
]
