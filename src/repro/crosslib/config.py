"""CROSS-LIB configuration (the artifact's ``compiler.sh`` knobs)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CrossLibConfig"]

KB = 1 << 10
MB = 1 << 20


@dataclass
class CrossLibConfig:
    """Every knob the runtime exposes.

    The Table-2 comparison approaches are particular settings of these
    flags; see :mod:`repro.runtimes.factory`.
    """

    # -- feature flags (Table 2 / Table 5 ablation axes) -----------------------
    # Use the per-FD pattern predictor (off for pure fetchall).
    predict: bool = True
    # Prefetch whole files on open, ignoring memory (CrossP[+fetchall]).
    fetchall: bool = False
    # Concurrent per-file range tree; when off, a single user-level
    # rw-lock guards each file's bitmap (the +range tree ablation step).
    range_tree: bool = True
    # Remove OS prefetch limits via readahead_info's relaxed cap (+opt).
    relax_limits: bool = True
    # Memory-budget-aware aggressive prefetching and eviction (+opt).
    aggressive: bool = True

    # -- prefetching ------------------------------------------------------------
    nr_workers: int = 8                  # NR_WORKERS_VAR
    base_prefetch_blocks: int = 4        # window seed; grows as base << counter
    # Scale applied to the predictor window when limits are relaxed.
    opt_window_scale: int = 8
    # Per-readahead_info request cap when limits are NOT relaxed
    # (mirrors the kernel's 128 KB syscall clamp).
    capped_request_bytes: int = 128 * KB
    # Per-request cap when relaxed (§4.7: requests do not exceed 64 MB).
    max_request_bytes: int = 64 * MB
    # Optimistic prefetch issued at open under aggressive mode (§4.6).
    aggressive_initial_bytes: int = 2 * MB
    # While memory stays above the high watermark, actively-read files
    # are bulk-loaded in increments of this size to cut compulsory
    # misses ("utilize the available memory to aggressively prefetch
    # from the start of an application", §4.6).
    aggressive_bulk_bytes: int = 4 * MB
    # fetchall enqueues the file in chunks of this size.
    fetchall_chunk_bytes: int = 16 * MB

    # -- memory budget (free-memory fractions) -------------------------------------
    # Above this much free memory: aggressive prefetching allowed.
    high_watermark: float = 0.25
    # Below this much free memory: all prefetching stops.
    low_watermark: float = 0.08
    # Below this much free memory: the evictor starts reclaiming.
    evict_watermark: float = 0.18
    # A closed/idle file becomes eviction-eligible after this long (µs);
    # the paper uses 30 s — experiments scale it with their duration.
    inactive_file_us: float = 30e6
    # Eviction granularity per pass.
    evict_batch_bytes: int = 32 * MB

    # -- prediction ----------------------------------------------------------------
    counter_bits: int = 3                # 3-bit counter -> states 0..6
    stride_blocks: int = 32              # jumps within this are sequential-ish
    near_random_blocks: int = 8192       # jumps within this are "random",
    #                                      beyond it "highly random" (-2)
    # Enqueue a prefetch only when the counter reaches this state.
    prefetch_threshold: int = 3
    # Consecutive sequential accesses before the relaxed window scaling
    # (opt_window_scale) engages — "definitely sequential" needs proof.
    streak_threshold: int = 24

    # -- predictor selection (extension: §4.6 future work) -----------------------------
    # "counter" (the paper's n-bit counter), "markov" (Lynx-style region
    # transition table), or "hybrid" (counter for runs, Markov for jumps).
    predictor_kind: str = "counter"
    markov_region_blocks: int = 256      # Markov region granularity (1 MB)
    markov_min_samples: int = 3          # evidence before trusting an edge
    markov_confidence: float = 0.5       # follower share required

    # -- range tree -------------------------------------------------------------------
    node_blocks: int = 1024              # blocks per range-tree node (4 MB)

    # -- user-level costs (µs) ------------------------------------------------------
    user_op: float = 0.08                # one bitmap/table manipulation

    @property
    def counter_max(self) -> int:
        return (1 << self.counter_bits) - 2  # 3 bits -> 6 ("definitely seq")
