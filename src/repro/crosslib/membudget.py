"""Memory-budget tracking and aggressive reclamation (§4.6).

CROSS-LIB learns free-memory telemetry from every ``readahead_info``
reply and positions itself in one of three modes:

* **aggressive** — plenty of free memory: optimistic open-time prefetch,
  full predictor windows;
* **normal** — between the watermarks: predictor windows only;
* **off** — below the low watermark: all prefetching stops.

Below the eviction watermark the budget manager reclaims on the user's
terms rather than waiting for kernel LRU churn: inactive files first
(open count zero / idle past the 30 s threshold), then cold ranges of
the least-recently-used active file, all via ``fadvise(DONTNEED)``.

Public entry points: :meth:`MemoryBudget.update` /
:meth:`MemoryBudget.refresh` feed free-memory telemetry;
``allow_prefetch`` / ``allow_aggressive`` / ``allow_bulk`` are the
gates the runtime and workers consult; :meth:`MemoryBudget.maybe_evict`
is the reclamation pass (a simulation process — re-entry is guarded by
``_evicting``, so concurrent callers cannot run two passes).

With a QoS manager attached (``kernel.qos``) victim selection prefers
files of *degraded* tenants: a throttled/paused tenant is not filling
its cache anyway, so its pages are the cheapest to re-lease to healthy
tenants.  With the adaptive policy attached (``Kernel(adaptive=)``)
the next tiebreak prefers *random-pattern* streams — their reads would
mostly miss regardless, so their pages protect nothing
(:meth:`repro.crosslib.adaptive.AdaptivePolicy.victim_bias`).  Ties
(and every run without either subsystem) fall back to the stock
oldest-``last_access`` order, so healthy runs pick identical victims.

Auditor invariants touched here: eviction goes through
``fadvise(DONTNEED)``, so page-cache residency, the Cross-OS mirror
bitmap, and the user-space range tree stay consistent
(``repro.sim.audit`` checks all three); ``evicted_pages`` feeds the
``cross.evicted_pages`` counter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.crosslib.config import CrossLibConfig
from repro.crosslib.fdtable import UserFileState
from repro.os.vfs import FADV_DONTNEED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crosslib.runtime import CrossLibRuntime

__all__ = ["MemoryBudget"]

MODE_AGGRESSIVE = "aggressive"
MODE_NORMAL = "normal"
MODE_OFF = "off"


class MemoryBudget:
    """Watermark logic + the aggressive evictor."""

    def __init__(self, runtime: "CrossLibRuntime",
                 config: CrossLibConfig):
        self.runtime = runtime
        self.config = config
        self.free_fraction = 1.0
        self.evictions = 0
        self.evicted_pages = 0
        self._evicting = False
        # Latched once the evictor has had to run: the dataset exceeds
        # the budget, so opportunistic bulk-loading would only thrash
        # (evictor frees -> bulk refills -> evictor frees ...).
        self.saw_pressure = False

    # -- telemetry ---------------------------------------------------------

    def update(self, free_pages: int, total_pages: int) -> None:
        if total_pages > 0:
            self.free_fraction = free_pages / total_pages

    def refresh(self) -> None:
        """Re-read free memory directly (the /proc/meminfo poll the
        runtime performs between readahead_info telemetry updates)."""
        mem = self.runtime.kernel.mem
        self.update(mem.free_pages, mem.total_pages)

    @property
    def mode(self) -> str:
        if not self.config.aggressive:
            return MODE_NORMAL
        if self.free_fraction <= self.config.low_watermark:
            return MODE_OFF
        if self.free_fraction >= self.config.high_watermark:
            return MODE_AGGRESSIVE
        return MODE_NORMAL

    @property
    def allow_prefetch(self) -> bool:
        if self.config.fetchall and not self.config.aggressive:
            # Memory-insensitive fetchall keeps prefetching regardless.
            return True
        return self.mode != MODE_OFF

    @property
    def allow_aggressive(self) -> bool:
        return self.config.aggressive and self.mode == MODE_AGGRESSIVE

    @property
    def allow_bulk(self) -> bool:
        """Compulsory-miss bulk-loading: only while the whole budget
        has never been under pressure."""
        return self.allow_aggressive and not self.saw_pressure

    # -- aggressive reclamation -----------------------------------------------

    def maybe_evict(self) -> Generator:
        """Reclaim cold cache if we're under the eviction watermark."""
        cfg = self.config
        if not cfg.aggressive or self._evicting:
            return 0
        if self.free_fraction > cfg.evict_watermark:
            return 0
        self.saw_pressure = True
        self._evicting = True
        try:
            freed = yield from self._evict_pass()
        finally:
            self._evicting = False
        return freed

    def _evict_pass(self) -> Generator:
        cfg = self.config
        runtime = self.runtime
        now = runtime.sim.now
        batch_blocks = cfg.evict_batch_bytes // runtime.block_size
        freed = 0
        victim = self._pick_inactive(now)
        if victim is None and self.free_fraction <= cfg.low_watermark:
            # Persistent pressure: walk the LRU files list (§4.6).
            victim = self._pick_lru_active()
        if victim is None:
            return 0
        freed = yield from self._evict_from(victim, batch_blocks)
        self.evictions += 1
        self.evicted_pages += freed
        # Refresh telemetry from the kernel counters the next
        # readahead_info reply would carry.
        mem = runtime.kernel.mem
        self.update(mem.free_pages, mem.total_pages)
        return freed

    def _victim_key(self, state: UserFileState,
                    now: float) -> tuple[int, int, float]:
        """Victim preference: degraded tenants' files first (their
        prefetch is throttled anyway), then random-pattern streams (the
        adaptive policy's bias: their reads would mostly miss anyway),
        then oldest access.  Without QoS or the adaptive policy every
        level/bias is 0 and the order is the stock LRU."""
        device = self.runtime.kernel.device
        qos = device.qos
        level = 0 if qos is None \
            else qos.level_of(state.inode.id, now)
        adaptive = device.adaptive
        bias = 0 if adaptive is None \
            else adaptive.victim_bias(state.inode.id, now)
        return (level, bias, -state.last_access)

    def _pick_inactive(self, now: float) -> Optional[UserFileState]:
        """Best inactive file with cached pages, if any."""
        best: Optional[UserFileState] = None
        best_key: Optional[tuple[int, float]] = None
        for state in self.runtime.iter_states():
            if state.open_count > 0:
                continue
            if state.idle_for(now) < self.config.inactive_file_us:
                continue
            if state.inode.cache.cached_pages == 0:
                continue
            key = self._victim_key(state, now)
            if best_key is None or key > best_key:
                best, best_key = state, key
        return best

    def _pick_lru_active(self) -> Optional[UserFileState]:
        now = self.runtime.sim.now
        best: Optional[UserFileState] = None
        best_key: Optional[tuple[int, float]] = None
        for state in self.runtime.iter_states():
            if state.inode.cache.cached_pages == 0:
                continue
            key = self._victim_key(state, now)
            if best_key is None or key > best_key:
                best, best_key = state, key
        return best

    def _evict_from(self, state: UserFileState,
                    batch_blocks: int) -> Generator:
        """DONTNEED cold ranges of ``state``.

        Blocks the stream already consumed (well behind the access
        cursor) go first; the active window around the cursor — history
        still warm plus the prefetched runway ahead — is evicted only as
        a last resort, so reclaiming from a live streaming file does not
        destroy its own prefetching.
        """
        runtime = self.runtime
        bs = runtime.block_size
        inode = state.inode
        guard = max(512, self.config.evict_batch_bytes // bs // 4)
        cursor = state.last_block
        freed = 0

        def clip_runs(lo: int, hi: int) -> list[tuple[int, int]]:
            if hi <= lo:
                return []
            return [(s, n) for s, n
                    in inode.cache.present.set_runs(lo, hi - lo)]

        candidates = clip_runs(0, max(0, cursor - guard))
        if not candidates:
            candidates = clip_runs(0, inode.nblocks)
        for run_start, run_len in candidates:
            if freed >= batch_blocks:
                break
            run_len = min(run_len, batch_blocks - freed)
            yield from runtime.vfs.fadvise(
                state.prefetch_file, FADV_DONTNEED,
                run_start * bs, run_len * bs)
            state.tree.clear_cached(run_start, run_len)
            freed += run_len
        runtime.registry.count("cross.evicted_pages", freed)
        return freed
