"""Learned, pattern-adaptive prefetch policy (beyond the paper).

The paper's predictor (§4.6) is a per-FD saturating counter with fixed
thresholds: every stream gets the same ``base << counter`` window
growth, the same relaxed-limit scaling, the same eviction order.  This
module adds the policy layer ROADMAP calls for on top of it:

* an online **access-pattern classifier** — each open-file stream is
  labelled ``sequential`` / ``temporal`` (re-use) / ``random`` from a
  sliding window of recent block positions (the pingora-slice
  classification shape: mostly-ascending deltas ⇒ sequential, mostly
  repeats ⇒ temporal re-use, else random);
* per-class **aggressiveness switching** — sequential streams get their
  predictor windows boosted and keep the relaxed ``readahead_info``
  cap; temporal and random streams get their windows, their OS
  readahead (``ReadaheadState.adaptive_cap``) and their per-call
  Cross-OS request cap clamped, because large windows on those streams
  are pure cache pollution;
* a lightweight **perceptron admission signal** (LearnedCache-style):
  one small online-learned weight vector per kernel gates prefetch
  *issue* per stream from features the stack already produces — the
  pattern class, the §4.6 counter, the stream's demand hit-rate EMA,
  and decayed fault/retry pressure fed in from the device and fault
  engine — and biases :class:`~repro.crosslib.membudget.MemoryBudget`
  victim selection toward random-pattern streams;
* **fault/QoS coupling** — device retries, prefetch-deadline expiries
  and per-class fault decisions land in the feature vector
  (:meth:`AdaptivePolicy.note_retry` / :meth:`note_fault` /
  :meth:`note_fault_class`), and with a QoS manager attached its SLO
  violations *move* tenant weights (``TenantState.slo_boost``) instead
  of only being counted.

Opt-in contract (the tracer/auditor/faults/qos pattern): the policy
attaches via ``Kernel(adaptive=AdaptiveSpec())`` / ``--adaptive`` and
every consumer consults it through an ``is not None`` guard, so a run
without it executes byte-identically (fig5's pinned 197,235-event
fingerprint holds).

Determinism: the policy is pure bookkeeping — it adds no simulation
events and draws no randomness after construction (the perceptron's
initial weights are a SplitMix64 function of ``AdaptiveSpec.seed``).
Every decision is a deterministic function of the observation stream,
so enabled runs are bit-reproducible per seed.  Everything here runs
inside the single-threaded event loop; there is no locking to reason
about.

See ``docs/prefetching.md`` for the full policy story and
``repro experiment adaptive`` for the mixed-workload win condition.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.crosslib.predictor import PrefetchPlan

__all__ = ["AdaptivePolicy", "AdaptiveSpec", "PATTERN_RANDOM",
           "PATTERN_SEQUENTIAL", "PATTERN_TEMPORAL", "PATTERN_UNKNOWN",
           "Perceptron", "StreamClassifier"]

KB = 1 << 10

PATTERN_UNKNOWN = "unknown"
PATTERN_SEQUENTIAL = "sequential"
PATTERN_TEMPORAL = "temporal"
PATTERN_RANDOM = "random"

# Feature vector layout (fixed; the weight vector matches it).
_N_FEATURES = 7
_F_BIAS = 0
_F_SEQ = 1
_F_TEMPORAL = 2
_F_RANDOM = 3
_F_COUNTER = 4      # §4.6 counter, normalized to [0, 1]
_F_PRESSURE = 5     # decayed fault/retry pressure, squashed to [0, 1)
_F_HITRATE = 6      # demand hit-rate EMA of the stream


def _splitmix64(x: int) -> int:
    """One SplitMix64 step (same generator the fault engine uses)."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


@dataclass(frozen=True)
class AdaptiveSpec:
    """Configuration of the adaptive policy layer.

    The defaults follow the pingora-slice prefetch design for the
    classifier (20-access window, ≥70% ascending ⇒ sequential, ≥50%
    repeats ⇒ temporal) and keep the perceptron small and admissive
    until evidence accumulates (``train_min`` observations per stream
    before the gate may deny).
    """

    # -- classifier --------------------------------------------------------
    window: int = 20                 # sliding window, accesses
    sequential_threshold: float = 0.7
    temporal_threshold: float = 0.5
    stride_blocks: int = 32          # forward delta within this is seq-ish

    # -- per-class aggressiveness ------------------------------------------
    # Multiply sequential streams' predictor windows.  Default 1: under
    # an oversubscribed cache, running further ahead just means the
    # runway is evicted before the stream reaches it — the sequential
    # reward is the *early* relaxed scaling (seq_streak_override), not
    # a larger steady-state window.  Raise it when memory is plentiful.
    seq_boost: int = 1
    seq_streak_override: int = 8     # relaxed scaling after this streak
    temporal_cap_blocks: int = 16    # clamp plans/readahead (64 KB)
    random_cap_blocks: int = 4       # clamp plans/readahead (16 KB)

    # -- perceptron --------------------------------------------------------
    learning_rate: float = 0.25
    train_min: int = 12              # stream observations before gating
    seed: int = 0

    # -- fault/retry pressure ----------------------------------------------
    pressure_halflife_us: float = 4_000.0
    retry_weight: float = 0.5
    fault_weight: float = 1.0

    # -- QoS SLO coupling --------------------------------------------------
    slo_boost_step: float = 1.5      # multiplicative weight bump
    slo_boost_max: float = 4.0
    slo_clean_reads: int = 64        # violation-free reads per decay step
    slo_boost_decay: float = 0.75

    @property
    def enabled(self) -> bool:
        return True


class StreamClassifier:
    """Sliding-window pattern classifier for one open-file stream.

    Keeps the last ``spec.window`` block positions; on each access it
    computes the fraction of *ascending* steps (forward delta in
    ``(0, stride_blocks]``) and the fraction of *repeats* (a block start
    seen earlier in the window) over the window's transitions, then
    labels the stream:

    * ascending fraction ≥ ``sequential_threshold``  ⇒ ``sequential``
    * repeat fraction ≥ ``temporal_threshold``       ⇒ ``temporal``
    * otherwise                                      ⇒ ``random``

    The published ``pattern`` only switches after the same raw label
    wins twice in a row (hysteresis), so one stray access cannot flap
    the aggressiveness class.  Below half a window of history the
    stream stays ``unknown`` and no policy applies.
    """

    __slots__ = ("spec", "pattern", "observations", "_starts",
                 "_ascending", "_repeats", "_raw_prev", "transitions")

    def __init__(self, spec: AdaptiveSpec):
        self.spec = spec
        self.pattern = PATTERN_UNKNOWN
        self.observations = 0
        self._starts: deque[int] = deque(maxlen=spec.window)
        self._ascending: deque[bool] = deque(maxlen=spec.window - 1)
        self._repeats: deque[bool] = deque(maxlen=spec.window - 1)
        self._raw_prev = PATTERN_UNKNOWN
        self.transitions = 0

    def observe(self, start: int, count: int) -> str:
        """Feed one access; returns the (possibly unchanged) pattern."""
        spec = self.spec
        self.observations += 1
        if self._starts:
            prev = self._starts[-1]
            delta = start - prev
            self._ascending.append(0 < delta <= spec.stride_blocks
                                   or delta == 0 and count > 0
                                   and start != prev)
            self._repeats.append(start in self._starts)
        self._starts.append(start)
        n = len(self._ascending)
        if n < max(2, spec.window // 2):
            return self.pattern
        ascending = sum(self._ascending) / n
        repeats = sum(self._repeats) / n
        if ascending >= spec.sequential_threshold:
            raw = PATTERN_SEQUENTIAL
        elif repeats >= spec.temporal_threshold:
            raw = PATTERN_TEMPORAL
        else:
            raw = PATTERN_RANDOM
        if raw != self.pattern and raw == self._raw_prev:
            self.pattern = raw
            self.transitions += 1
        self._raw_prev = raw
        return self.pattern


class Perceptron:
    """Tiny online perceptron over the fixed feature layout above.

    Admission rule: issue the prefetch iff ``w · x ≥ 0``.  Training is
    the classic mistake-driven update — when the observed label (the
    following demand read mostly *hit* ⇒ 1, mostly *missed* ⇒ 0)
    disagrees with the prediction, ``w += lr · (label − predicted) · x``
    — so a stream whose admitted prefetches never turn into hits talks
    the gate into denying, and a denied stream that hits anyway (warm
    cache) is re-admitted at zero cost (the bitmap elides re-requests).

    Weights start near zero (a deterministic SplitMix64 function of the
    spec seed) with a positive bias, so a fresh kernel admits
    everything until evidence says otherwise.  Updates are a pure
    function of the observation stream: same seed + same trace ⇒ same
    weights, bit for bit.
    """

    __slots__ = ("lr", "weights", "updates", "mistakes")

    def __init__(self, spec: AdaptiveSpec):
        self.lr = spec.learning_rate
        state = (spec.seed << 1) ^ 0xADA9
        weights = []
        for _ in range(_N_FEATURES):
            state = _splitmix64(state)
            weights.append(((state >> 11) / float(1 << 53) - 0.5) * 0.01)
        weights[_F_BIAS] += 0.1   # admissive until trained
        self.weights = weights
        self.updates = 0
        self.mistakes = 0

    def predict(self, features: list[float]) -> bool:
        w = self.weights
        score = 0.0
        for i in range(_N_FEATURES):
            score += w[i] * features[i]
        return score >= 0.0

    def train(self, features: list[float], predicted: bool,
              label: bool) -> None:
        self.updates += 1
        if predicted == label:
            return
        self.mistakes += 1
        step = self.lr if label else -self.lr
        w = self.weights
        for i in range(_N_FEATURES):
            w[i] += step * features[i]


class _StreamState:
    """Per-stream policy state inside an :class:`AdaptivePolicy`."""

    __slots__ = ("classifier", "counter_norm", "hit_ema", "pressure",
                 "pressure_stamp", "retries", "faults", "fault_classes",
                 "issued", "denied", "boosted", "clamped",
                 "last_features", "last_admit")

    def __init__(self, spec: AdaptiveSpec):
        self.classifier = StreamClassifier(spec)
        self.counter_norm = 0.0
        self.hit_ema = 1.0           # optimistic: cold streams admit
        self.pressure = 0.0
        self.pressure_stamp = 0.0
        self.retries = 0
        self.faults = 0
        self.fault_classes: dict[str, int] = {}
        self.issued = 0
        self.denied = 0
        self.boosted = 0
        self.clamped = 0
        # Feature snapshot of the most recent gate decision, consumed
        # by the next demand-read outcome as the training example.
        self.last_features: Optional[list[float]] = None
        self.last_admit = True


class AdaptivePolicy:
    """Kernel-attached policy manager (one per kernel, like QosManager).

    Public entry points, all consulted behind ``is not None`` guards:

    * :meth:`observe` — CROSS-LIB feeds every ``pread`` observation
      (block start/count plus the §4.6 counter state);
    * :meth:`gate_plan` — shape + admit one predictor plan (CROSS-LIB);
    * :meth:`window_cap` — per-stream OS readahead clamp (VFS →
      ``ReadaheadState.adaptive_cap``);
    * :meth:`request_cap` — per-stream ``readahead_info`` cap clamp
      (Cross-OS admission);
    * :meth:`relax_streak` — per-stream relaxed-scaling streak override
      (sequential streams earn the §4.7 relaxed windows sooner);
    * :meth:`note_outcome` — demand-read hit/miss feedback (trains the
      perceptron);
    * :meth:`note_retry` / :meth:`note_fault` / :meth:`note_fault_class`
      — fault-path feeds from the device and fault engine;
    * :meth:`victim_bias` — membudget eviction preference;
    * :meth:`snapshot` — per-stream counters for reports.
    """

    def __init__(self, sim, spec: AdaptiveSpec, registry=None):
        self.sim = sim
        self.spec = spec
        self.registry = registry
        self.device = None
        self.perceptron = Perceptron(spec)
        self._streams: dict[int, _StreamState] = {}

    # -- wiring ------------------------------------------------------------

    def attach_device(self, device) -> None:
        """Called by ``StorageDevice.set_adaptive``."""
        self.device = device

    def _state(self, stream: int) -> _StreamState:
        state = self._streams.get(stream)
        if state is None:
            state = _StreamState(self.spec)
            self._streams[stream] = state
        return state

    def _count(self, name: str, n: int = 1) -> None:
        if self.registry is not None:
            self.registry.count(name, n)

    # -- observation (CROSS-LIB pread path) --------------------------------

    def observe(self, stream: int, start: int, count: int,
                counter: int, counter_max: int) -> str:
        """Feed one demand access; returns the stream's pattern."""
        state = self._state(stream)
        pattern = state.classifier.observe(start, count)
        if counter_max > 0:
            state.counter_norm = counter / counter_max
        return pattern

    def pattern_of(self, stream: int) -> str:
        state = self._streams.get(stream)
        return PATTERN_UNKNOWN if state is None \
            else state.classifier.pattern

    # -- plan shaping + admission (CROSS-LIB) ------------------------------

    def gate_plan(self, stream: int, plan: PrefetchPlan,
                  nblocks: int) -> Optional[PrefetchPlan]:
        """Per-class sizing, then the perceptron issue gate.

        Sequential streams get ``seq_boost``× windows (re-clamped to
        the file); temporal and random streams are clamped to their
        per-class caps.  The perceptron then decides whether the plan
        is worth issuing at all — but only once the stream has
        ``train_min`` observations, so cold streams behave exactly like
        the static policy.
        """
        spec = self.spec
        state = self._state(stream)
        pattern = state.classifier.pattern
        if pattern == PATTERN_SEQUENTIAL:
            if spec.seq_boost > 1 and not plan.backward:
                boosted = min(plan.count * spec.seq_boost,
                              max(0, nblocks - plan.start))
                if boosted > plan.count:
                    plan = PrefetchPlan(plan.start, boosted,
                                        plan.backward)
                    state.boosted += 1
                    self._count("adaptive.boosted_plans")
            # Sequential streams bypass the perceptron: the classifier
            # already proved prefetch will be consumed, and early
            # cold-cache misses must not train the gate into denying
            # the one stream prefetch helps most (the deny->miss->deny
            # spiral).  The perceptron arbitrates ambiguous streams.
            state.last_features = None
            state.last_admit = True
            state.issued += 1
            self._count("adaptive.issued_plans")
            return plan
        if pattern == PATTERN_TEMPORAL:
            if plan.count > spec.temporal_cap_blocks:
                plan = PrefetchPlan(plan.start, spec.temporal_cap_blocks,
                                    plan.backward)
                state.clamped += 1
                self._count("adaptive.clamped_plans")
        elif pattern == PATTERN_RANDOM:
            if plan.count > spec.random_cap_blocks:
                plan = PrefetchPlan(plan.start, spec.random_cap_blocks,
                                    plan.backward)
                state.clamped += 1
                self._count("adaptive.clamped_plans")
        features = self._features(state, pattern)
        state.last_features = features
        if state.classifier.observations < spec.train_min:
            state.last_admit = True
            state.issued += 1
            return plan
        admit = self.perceptron.predict(features)
        state.last_admit = admit
        if not admit:
            state.denied += 1
            self._count("adaptive.denied_plans")
            return None
        state.issued += 1
        self._count("adaptive.issued_plans")
        return plan

    def _features(self, state: _StreamState,
                  pattern: str) -> list[float]:
        x = [0.0] * _N_FEATURES
        x[_F_BIAS] = 1.0
        if pattern == PATTERN_SEQUENTIAL:
            x[_F_SEQ] = 1.0
        elif pattern == PATTERN_TEMPORAL:
            x[_F_TEMPORAL] = 1.0
        elif pattern == PATTERN_RANDOM:
            x[_F_RANDOM] = 1.0
        x[_F_COUNTER] = state.counter_norm
        p = self._pressure(state, self.sim.now)
        x[_F_PRESSURE] = p / (1.0 + p)
        x[_F_HITRATE] = state.hit_ema
        return x

    # -- per-stream clamps (VFS readahead + Cross-OS) ----------------------

    def window_cap(self, stream: int, now: float) -> Optional[int]:
        """OS readahead clamp (blocks) for the stream; None = stock."""
        state = self._streams.get(stream)
        if state is None:
            return None
        pattern = state.classifier.pattern
        if pattern == PATTERN_TEMPORAL:
            return self.spec.temporal_cap_blocks
        if pattern == PATTERN_RANDOM:
            return self.spec.random_cap_blocks
        return None

    def request_cap(self, stream: int, cap_bytes: int,
                    block_size: int, now: float) -> int:
        """Clamp one ``readahead_info`` submission cap per pattern."""
        state = self._streams.get(stream)
        if state is None:
            return cap_bytes
        pattern = state.classifier.pattern
        if pattern == PATTERN_TEMPORAL:
            clamp = self.spec.temporal_cap_blocks * block_size
        elif pattern == PATTERN_RANDOM:
            clamp = self.spec.random_cap_blocks * block_size
        else:
            return cap_bytes
        if clamp < cap_bytes:
            self._count("adaptive.capped_requests")
            return clamp
        return cap_bytes

    def relax_streak(self, stream: int,
                     streak_threshold: int) -> int:
        """Streak needed before relaxed window scaling engages.

        A classified-sequential stream has already proved itself over a
        full classifier window; make the §4.7 relaxed scaling kick in
        after ``seq_streak_override`` accesses instead of the static
        threshold (24)."""
        state = self._streams.get(stream)
        if state is not None and \
                state.classifier.pattern == PATTERN_SEQUENTIAL:
            return min(streak_threshold, self.spec.seq_streak_override)
        return streak_threshold

    # -- learning feedback -------------------------------------------------

    def note_outcome(self, stream: int, hit_pages: int,
                     miss_pages: int) -> None:
        """One demand read completed: update the hit EMA and train."""
        state = self._streams.get(stream)
        if state is None:
            return
        total = hit_pages + miss_pages
        if total <= 0:
            return
        rate = hit_pages / total
        state.hit_ema = 0.9 * state.hit_ema + 0.1 * rate
        features = state.last_features
        if features is not None:
            self.perceptron.train(features, state.last_admit,
                                  rate >= 0.5)
            state.last_features = None

    # -- fault/retry pressure (device + fault engine feeds) ----------------

    def _pressure(self, state: _StreamState, now: float) -> float:
        dt = now - state.pressure_stamp
        if dt > 0.0 and state.pressure > 0.0:
            state.pressure *= 0.5 ** (dt / self.spec.pressure_halflife_us)
            state.pressure_stamp = now
        return state.pressure

    def _add_pressure(self, state: _StreamState, now: float,
                      weight: float) -> None:
        self._pressure(state, now)
        state.pressure += weight
        state.pressure_stamp = now

    def note_retry(self, stream: int, now: float) -> None:
        """One device retry attempt on the stream (backoff ladder)."""
        state = self._state(stream)
        state.retries += 1
        self._add_pressure(state, now, self.spec.retry_weight)
        self._count("adaptive.retries")

    def note_fault(self, stream: int, now: float,
                   weight: float = 1.0) -> None:
        """A failed attempt or an expired prefetch deadline."""
        state = self._state(stream)
        state.faults += 1
        self._add_pressure(state, now, self.spec.fault_weight * weight)
        self._count("adaptive.faults")

    def note_fault_class(self, stream: int, cls: str,
                         now: float) -> None:
        """Fault-class attribution from ``FaultEngine.decide``."""
        state = self._state(stream)
        state.fault_classes[cls] = state.fault_classes.get(cls, 0) + 1
        self._count(f"adaptive.fault.{cls}")

    def admit_bulk(self, stream: int) -> bool:
        """Gate opportunistic bulk-loading (§4.6 aggressive mode).

        Bulk-loading a *random*-pattern stream's file caches pages its
        scattered reads will mostly never touch — pure pollution plus
        device bandwidth stolen from streams prefetch actually helps.
        Temporal streams keep bulk (it is how their hot set gets
        resident), and unknown/cold streams behave like the static
        policy until the classifier has evidence.
        """
        state = self._state(stream)
        if state.classifier.pattern != PATTERN_RANDOM:
            return True
        if state.classifier.observations < self.spec.train_min:
            return True
        self._count("adaptive.denied_bulk")
        return False

    # -- eviction bias (membudget) -----------------------------------------

    def victim_bias(self, stream: int, now: float) -> int:
        """1 if the stream's pages are cheap to reclaim (random
        pattern: its reads would mostly miss anyway), else 0."""
        state = self._streams.get(stream)
        if state is not None and \
                state.classifier.pattern == PATTERN_RANDOM:
            return 1
        return 0

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Per-stream state + perceptron weights for reports."""
        now = self.sim.now
        streams = {}
        for stream, st in self._streams.items():
            streams[stream] = {
                "pattern": st.classifier.pattern,
                "observations": st.classifier.observations,
                "transitions": st.classifier.transitions,
                "issued": st.issued,
                "denied": st.denied,
                "boosted": st.boosted,
                "clamped": st.clamped,
                "hit_ema": round(st.hit_ema, 4),
                "pressure": round(self._pressure(st, now), 4),
                "retries": st.retries,
                "faults": st.faults,
                "fault_classes": dict(st.fault_classes),
            }
        return {
            "streams": streams,
            "weights": [round(w, 5) for w in self.perceptron.weights],
            "updates": self.perceptron.updates,
            "mistakes": self.perceptron.mistakes,
        }
