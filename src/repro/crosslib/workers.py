"""Background prefetch workers (§4.3: "dedicated background threads
issue prefetch calls to prevent impacting application thread
performance").

Application threads never call ``readahead_info`` themselves: they
enqueue :class:`PrefetchRequest` items, and ``NR_WORKERS`` worker
processes drain the queue.  A worker issues the syscall, imports the
returned bitmap window into the file's range tree, clears the request's
dedup marks, feeds the telemetry to the memory budget, and runs an
eviction pass when the budget asks for one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.crosslib.fdtable import UserFileState
from repro.os.crossos import CacheInfo
from repro.sim.engine import Interrupt, Process
from repro.sim.sync import Queue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crosslib.runtime import CrossLibRuntime

__all__ = ["PrefetchRequest", "WorkerPool"]


@dataclass
class PrefetchRequest:
    """One block range a predictor (or fetchall) wants resident."""

    state: UserFileState
    start: int   # blocks
    count: int   # blocks


class WorkerPool:
    """The runtime's prefetch thread pool."""

    def __init__(self, runtime: "CrossLibRuntime"):
        self.runtime = runtime
        self.queue = Queue(runtime.sim, "crosslib_prefetch")
        self.requests_served = 0
        self.blocks_submitted = 0
        self.restarts = 0
        # Under fault injection a worker can die to an unexpected device
        # error; the supervisor restarts its loop so the pool never
        # shrinks.  Healthy runs keep the bare loop (no extra frame).
        make = (self._supervised
                if runtime.kernel.device.faults is not None
                else self._worker_loop)
        self._workers: list[Process] = [
            runtime.sim.process(make(i), name=f"cross_worker[{i}]")
            for i in range(runtime.config.nr_workers)
        ]

    def _supervised(self, index: int) -> Generator:
        while True:
            try:
                yield from self._worker_loop(index)
            except Interrupt:
                # Teardown — Interrupt subclasses Exception, so it must
                # be re-raised before the restart handler below.
                raise
            except Exception:
                self.restarts += 1
                self.runtime.registry.count("cross.worker_restarts")
                yield self.runtime.sim.timeout(50.0)

    def submit(self, request: PrefetchRequest) -> None:
        self.queue.put(request)

    @property
    def backlog(self) -> int:
        return len(self.queue)

    def _worker_loop(self, index: int) -> Generator:
        runtime = self.runtime
        cfg = runtime.config
        bs = runtime.block_size
        while True:
            req = yield self.queue.get()
            state = req.state
            budget = runtime.budget
            obs = runtime.registry.observer
            span = obs.begin("crosslib", "prefetch_request",
                             worker=index, inode=state.inode.id,
                             start=req.start, count=req.count) \
                if obs is not None else None
            if not budget.allow_prefetch and not cfg.fetchall:
                # Memory too tight: drop the request, release its
                # dedup marks so a later pass can retry.
                section = state.tree.write_locked(req.start, req.count)
                yield from section.acquire()
                state.tree.clear_requested(req.start, req.count)
                section.release()
                runtime.registry.count("cross.dropped_requests")
                if span is not None:
                    span.end(dropped=True)
                continue
            qos = runtime.kernel.device.qos
            if qos is not None:
                paused = qos.level_of(state.inode.id,
                                      runtime.sim.now) >= 2
            else:
                degrade = runtime.kernel.device.degrade
                paused = degrade is not None \
                    and degrade.current_level(runtime.sim.now) >= 2
            if paused:
                # Prefetch paused by fault pressure: drop before paying
                # the syscall; dedup marks released so a later pass can
                # re-request once the device recovers.
                section = state.tree.write_locked(req.start, req.count)
                yield from section.acquire()
                state.tree.clear_requested(req.start, req.count)
                section.release()
                runtime.registry.count("cross.degraded_drops")
                if span is not None:
                    span.end(dropped=True, degraded=True)
                continue
            cap = (cfg.max_request_bytes if cfg.relax_limits
                   else cfg.capped_request_bytes)
            info = CacheInfo(offset=req.start * bs,
                             nbytes=req.count * bs,
                             max_request_bytes=cap)
            info = yield from runtime.crossos.readahead_info(
                state.prefetch_file, info)
            self.requests_served += 1
            self.blocks_submitted += info.prefetch_submitted
            # Import the exported bitmap window and clear dedup marks.
            section = state.tree.write_locked(info.bitmap_start,
                                              max(1, info.bitmap_count))
            yield from section.acquire()
            yield runtime.sim.timeout(cfg.user_op)
            state.tree.load_window(info.bitmap_start, info.bitmap_count,
                                   info.bitmap_bits)
            state.tree.clear_requested(req.start, req.count)
            section.release()
            budget.update(info.free_pages, info.total_pages)
            if cfg.aggressive:
                yield from budget.maybe_evict()
            # Pace the pipeline: at most NR_WORKERS prefetch streams are
            # outstanding, so claims never run far ahead of the device.
            if info.completion is not None \
                    and not info.completion.processed:
                yield info.completion
            if span is not None:
                span.end(submitted=info.prefetch_submitted)

    def teardown(self) -> None:
        for worker in self._workers:
            if worker.is_alive:
                worker.interrupt("teardown")
