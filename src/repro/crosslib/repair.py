"""Repair-scan prefetch priming: a queuing thread ahead of the scanner.

Modeled on xfs_repair's prefetch design (see SNIPPETS.md): repair
walks a known list of objects, so instead of *reacting* to the
scanner's reads, a dedicated queuing thread walks the same list a
bounded distance ahead and enqueues each object's block ranges to the
CROSS-LIB worker pool (:meth:`CrossLibRuntime.prime`).  The pieces map
onto xfs_repair's architecture:

* **queuing thread** — :class:`RepairPrefetcher`'s simulated process,
  gated by a condition variable so it never runs more than
  ``lookahead_files`` objects ahead of the scanner (xfs_repair's
  bounded prefetch queue);
* **I/O workers** — the existing CROSS-LIB worker pool, issuing
  ``readahead_info`` syscalls off the scan thread;
* **priority buffers** — metadata before data: each plan item lists
  its index-block runs ahead of its data-block runs, and the device
  itself serves the scanner's blocking reads ahead of priming I/O
  (prefetch priority), so priming can never delay the scan it serves.

The prefetcher is pure opportunism: everything it loads is re-checked
by the scanner's own reads, so correctness never depends on it — only
recovery *time* does (the cold-vs-primed comparison in the ``recovery``
experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.sim.sync import Condition

__all__ = ["RepairItem", "RepairPlan", "RepairPrefetcher"]


@dataclass(frozen=True)
class RepairItem:
    """One object the scan will visit: ordered block runs of a file.

    ``runs`` are ``(start_block, nblocks)`` in scan order — metadata
    (index) runs first, then data runs.
    """

    path: str
    runs: tuple[tuple[int, int], ...]
    label: str = ""

    @property
    def nblocks(self) -> int:
        return sum(n for _s, n in self.runs)


@dataclass
class RepairPlan:
    """The scan order, shared verbatim by scanner and prefetcher."""

    items: list[RepairItem] = field(default_factory=list)

    def add(self, path: str, runs: list[tuple[int, int]],
            label: str = "") -> None:
        runs = [(s, n) for s, n in runs if n > 0]
        if runs:
            self.items.append(RepairItem(path, tuple(runs), label))

    @property
    def total_blocks(self) -> int:
        return sum(item.nblocks for item in self.items)


class RepairPrefetcher:
    """The queuing thread: primes plan items ahead of the scanner."""

    def __init__(self, runtime, plan: RepairPlan, *,
                 lookahead_files: int = 3,
                 backlog_poll_us: float = 200.0):
        self.runtime = runtime
        self.plan = plan
        self.lookahead_files = max(1, lookahead_files)
        self.backlog_poll_us = backlog_poll_us
        self.primed_items = 0
        self.primed_blocks = 0
        self._scanned = 0           # items the scanner has finished
        self._kick = Condition(runtime.sim, "repair_prefetch_kick")
        self._proc = runtime.sim.process(self._loop(),
                                         name="repair_prefetch")

    def note_scanned(self, index: int) -> None:
        """The scanner finished plan item ``index``; advance the window."""
        if index + 1 > self._scanned:
            self._scanned = index + 1
        self._kick.notify_all()

    def _loop(self) -> Generator:
        runtime = self.runtime
        workers = runtime.workers
        # Keep the queue bounded by the pool, like xfs_repair sizing its
        # prefetch queue to the buffer cache: a deep backlog would only
        # go stale (and, under faults, feed the deadline watchdogs).
        backlog_cap = max(4, runtime.config.nr_workers * 4)
        for i, item in enumerate(self.plan.items):
            while i >= self._scanned + self.lookahead_files:
                yield self._kick.wait()
            for start, count in item.runs:
                while workers.backlog >= backlog_cap:
                    yield runtime.sim.timeout(self.backlog_poll_us)
                yield from runtime.prime(item.path, start, count)
                self.primed_blocks += count
            self.primed_items += 1

    def drain(self) -> Generator:
        """Wait for the queuing thread to finish its plan walk."""
        if self._proc.is_alive:
            yield self._proc

    def teardown(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("repair teardown")
