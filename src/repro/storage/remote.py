"""Remote NVMe-oF (RDMA) storage model.

The paper's remote configuration connects the host to an NVMe target over
InfiniBand RDMA (§5.1, Fig. 8a).  Relative to the local device this adds
a fixed network round trip to every request and caps throughput at the
fabric's bandwidth.  The higher fixed cost per request is exactly what
amplifies CrossPrefetch's batched, larger prefetch requests on remote
storage in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.storage.device import StorageDevice
from repro.storage.filesystem import EXT4, FilesystemProfile
from repro.storage.nvme import NVMeParams

__all__ = ["RemoteNVMeDevice", "RemoteParams"]

MB = 1 << 20


@dataclass(frozen=True)
class RemoteParams:
    """Fabric constants layered over :class:`NVMeParams`."""

    rtt: float = 30.0                          # µs network round trip
    network_bandwidth: float = 1200 * MB / 1e6  # bytes/µs fabric cap


class RemoteNVMeDevice(StorageDevice):
    """NVMe target reached over RDMA NVMe-oF."""

    is_remote = True

    def __init__(self, sim: Simulator,
                 params: Optional[NVMeParams] = None,
                 remote: Optional[RemoteParams] = None,
                 fs: FilesystemProfile = EXT4,
                 stats_registry: Optional[StatsRegistry] = None):
        params = params or NVMeParams()
        remote = remote or RemoteParams()
        self.params = params
        self.remote = remote
        super().__init__(
            sim,
            name=f"nvmeof[{fs.name}]",
            queue_depth=params.queue_depth,
            read_bandwidth=min(params.read_bandwidth,
                               remote.network_bandwidth),
            write_bandwidth=min(params.write_bandwidth,
                                remote.network_bandwidth),
            access_latency=params.access_latency + remote.rtt,
            seq_latency=params.seq_latency + remote.rtt,
            fs=fs,
            stats_registry=stats_registry,
        )
