"""File-system profiles (ext4, F2FS).

The paper switches between ext4 and flash-optimized F2FS (§5.1, Fig. 7d)
to show the design is file-system agnostic.  A profile perturbs the
device cost constants the way the FS's on-disk layout does:

* ext4 — extent-based, update-in-place; the baseline profile.
* F2FS — log-structured for flash: random writes become sequential log
  appends (lower write cost), and the flash-friendly layout trims a bit
  of per-request overhead for reads.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EXT4", "F2FS", "FilesystemProfile"]


@dataclass(frozen=True)
class FilesystemProfile:
    """Multiplicative adjustments a file system applies to device costs."""

    name: str
    read_bandwidth_factor: float = 1.0
    write_bandwidth_factor: float = 1.0
    latency_factor: float = 1.0
    # Extra per-write journal/metadata cost, as a fraction of bytes written.
    write_amplification: float = 1.0


EXT4 = FilesystemProfile(
    name="ext4",
    read_bandwidth_factor=1.0,
    write_bandwidth_factor=1.0,
    latency_factor=1.0,
    write_amplification=1.05,  # jbd2 journal overhead
)

F2FS = FilesystemProfile(
    name="f2fs",
    read_bandwidth_factor=1.04,   # flash-aligned extents
    write_bandwidth_factor=1.15,  # random writes become log appends
    latency_factor=0.92,
    write_amplification=1.0,
)
