"""Local NVMe SSD model parameterised with the paper's device."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.storage.device import StorageDevice
from repro.storage.filesystem import EXT4, FilesystemProfile

__all__ = ["NVMeDevice", "NVMeParams"]

MB = 1 << 20


@dataclass(frozen=True)
class NVMeParams:
    """Device constants.

    Defaults match the evaluation testbed in §5.1: a 1.6 TB NVMe SSD with
    1.4 GB/s max read and 0.9 GB/s max write bandwidth.  Latencies are
    representative datacenter-NVMe numbers (~85 µs random read access,
    ~12 µs sequential continuation).
    """

    read_bandwidth: float = 1400 * MB / 1e6   # bytes/µs (1.4 GB/s)
    write_bandwidth: float = 900 * MB / 1e6   # bytes/µs (0.9 GB/s)
    access_latency: float = 85.0              # µs
    seq_latency: float = 12.0                 # µs
    queue_depth: int = 32


class NVMeDevice(StorageDevice):
    """The evaluation SSD."""

    def __init__(self, sim: Simulator, params: Optional[NVMeParams] = None,
                 fs: FilesystemProfile = EXT4,
                 stats_registry: Optional[StatsRegistry] = None):
        params = params or NVMeParams()
        self.params = params
        super().__init__(
            sim,
            name=f"nvme[{fs.name}]",
            queue_depth=params.queue_depth,
            read_bandwidth=params.read_bandwidth,
            write_bandwidth=params.write_bandwidth,
            access_latency=params.access_latency,
            seq_latency=params.seq_latency,
            fs=fs,
            stats_registry=stats_registry,
        )
