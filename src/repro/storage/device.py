"""Base storage device model and I/O request plumbing."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import Event, Simulator
from repro.sim.faults import DegradeController, DeviceTimeout, FabricError
from repro.sim.stats import StatsRegistry
from repro.storage.filesystem import EXT4, FilesystemProfile

__all__ = ["BLOCKING", "PREFETCH", "DeviceStats", "IORequest", "StorageDevice"]


def _sink(_ev: Event) -> None:
    """No-op callback pre-parked on resilient request events.

    A failed event with no callbacks at processing time crashes the run
    loop ("failed event nobody waited on"); fault-injected failures are
    expected, so every outer event carries this sink from birth.
    """

# Priority classes.  Blocking I/O (read()/write() waiters) always beats
# prefetch I/O; prefetch dispatch is additionally gated by congestion
# control so queued prefetches cannot delay demand reads (§4.7).
BLOCKING = 0
PREFETCH = 1

READ = "read"
WRITE = "write"


class IORequest:
    """One device request.

    ``stream`` identifies a sequential stream (we use the inode id) so
    the device can waive the seek penalty when a request continues where
    the stream's previous request ended.  ``path`` selects the modeled
    fabric path: 0 = primary (fault-injectable), 1 = secondary failover
    (fault-free but slower; see ``FabricSpec.secondary_latency_mult``).
    Hand-rolled (not a dataclass): one is allocated per device I/O.
    """

    __slots__ = ("kind", "offset", "nbytes", "priority", "stream",
                 "submitted_at", "done", "queue_wait", "sequential",
                 "path")

    def __init__(self, kind: str, offset: int, nbytes: int,
                 priority: int = BLOCKING, stream: int = 0,
                 submitted_at: float = 0.0,
                 done: Optional[Event] = None,
                 path: int = 0):
        if nbytes <= 0:
            raise ValueError(f"request size must be positive: {nbytes}")
        if kind not in (READ, WRITE):
            raise ValueError(f"bad request kind: {kind}")
        self.kind = kind
        self.offset = offset
        self.nbytes = nbytes
        self.priority = priority
        self.stream = stream
        self.submitted_at = submitted_at
        self.done = done
        self.path = path
        # Filled in by the scheduler for telemetry/span export.
        self.queue_wait = 0.0
        self.sequential = False

    def __repr__(self) -> str:
        return (f"IORequest({self.kind!r}, offset={self.offset}, "
                f"nbytes={self.nbytes}, priority={self.priority}, "
                f"stream={self.stream})")


@dataclass
class DeviceStats:
    """Aggregate device telemetry for reports.

    Per-request service time is accounted in three components so they
    can be reasoned about separately: ``access_time`` (seek/flash access
    latency, overlappable across the queue), ``channel_wait`` (time a
    request's transfer waited for the serialized per-direction channel),
    and ``transfer_time`` (actual channel occupancy).  Summing whole
    request latencies would double-count the overlapped portions and
    report utilizations above 100%; per-direction ``transfer_time`` is
    the only component that is serialized, so it alone bounds channel
    utilization.
    """

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    prefetch_reads: int = 0
    prefetch_bytes: int = 0
    sequential_hits: int = 0
    access_time: float = 0.0
    channel_wait: float = 0.0
    transfer_time: float = 0.0
    read_transfer_time: float = 0.0
    write_transfer_time: float = 0.0
    queue_wait: float = 0.0
    # Fault/resilience telemetry (all zero on a healthy device).  The
    # audit's byte-conservation equation under faults is:
    #   consumed = read_bytes + failed_read_bytes + aborted_read_bytes
    #   issued   = fill-issued bytes + retried_read_bytes
    # so every failed attempt and every watchdog-cancelled queued
    # request is accounted exactly once.
    faults_injected: int = 0
    read_failures: int = 0
    write_failures: int = 0
    failed_read_bytes: int = 0
    failed_write_bytes: int = 0
    retries: int = 0
    retried_read_bytes: int = 0
    retried_write_bytes: int = 0
    retry_exhausted: int = 0
    timeouts: int = 0
    aborted_requests: int = 0
    aborted_read_bytes: int = 0
    aborted_write_bytes: int = 0
    stall_time: float = 0.0
    # Fabric failovers onto the secondary path (QoS manager attached).
    # Deliberately not part of fault_summary(): rerouted bytes are
    # already counted as retried bytes for conservation.
    reroutes: int = 0

    @property
    def busy_time(self) -> float:
        """Total per-request service time (components may overlap across
        concurrent requests — do not divide by wall clock)."""
        return self.access_time + self.channel_wait + self.transfer_time

    def utilization(self, elapsed: float) -> float:
        """Occupancy of the busier transfer channel over ``elapsed`` µs.

        Transfers are serialized per direction, so each direction's total
        is ≤ elapsed once the device is quiescent; the audit asserts this
        never exceeds 1.0.
        """
        if elapsed <= 0:
            return 0.0
        return max(self.read_transfer_time,
                   self.write_transfer_time) / elapsed

    def record(self, req: IORequest, waited: float, access: float,
               channel_wait: float, transfer: float,
               sequential: bool) -> None:
        if req.kind == READ:
            self.reads += 1
            self.read_bytes += req.nbytes
            self.read_transfer_time += transfer
            if req.priority == PREFETCH:
                self.prefetch_reads += 1
                self.prefetch_bytes += req.nbytes
        else:
            self.writes += 1
            self.write_bytes += req.nbytes
            self.write_transfer_time += transfer
        if sequential:
            self.sequential_hits += 1
        self.access_time += access
        self.channel_wait += channel_wait
        self.transfer_time += transfer
        self.queue_wait += waited

    def fault_summary(self) -> dict:
        """Compact dict of the fault/resilience counters for reports."""
        return {
            "faults_injected": self.faults_injected,
            "read_failures": self.read_failures,
            "write_failures": self.write_failures,
            "retries": self.retries,
            "retry_exhausted": self.retry_exhausted,
            "timeouts": self.timeouts,
            "aborted_requests": self.aborted_requests,
            "stall_time_us": round(self.stall_time, 1),
        }


class StorageDevice:
    """Queue-depth-limited device with a serialized transfer channel.

    Subclasses provide the parameter set; this class implements the
    scheduler: a fixed number of in-flight slots, strict priority of
    blocking over prefetch requests, and congestion control that holds
    prefetch requests back while blocking requests are queued.

    With a :class:`~repro.sim.faults.FaultEngine` attached (see
    :meth:`set_fault_engine`) every submission additionally runs through
    the resilient path: capped exponential-backoff retry, a hard
    deadline for prefetch requests, and a
    :class:`~repro.sim.faults.DegradeController` throttling prefetch
    dispatch while fault pressure is high.  Without an engine none of
    that code executes — the healthy event sequence is byte-identical.
    """

    is_remote = False

    def __init__(self, sim: Simulator, *,
                 name: str,
                 queue_depth: int,
                 read_bandwidth: float,   # bytes / µs
                 write_bandwidth: float,  # bytes / µs
                 access_latency: float,   # µs, random access
                 seq_latency: float,      # µs, sequential continuation
                 fs: FilesystemProfile = EXT4,
                 stats_registry: Optional[StatsRegistry] = None,
                 prefetch_hold: float = 0.0,
                 random_channel_overhead: float = 12.0):
        if queue_depth <= 0:
            raise ValueError(f"queue depth must be positive: {queue_depth}")
        self.sim = sim
        self.name = name
        self.queue_depth = queue_depth
        self.read_bandwidth = read_bandwidth * fs.read_bandwidth_factor
        self.write_bandwidth = write_bandwidth * fs.write_bandwidth_factor
        self.access_latency = access_latency * fs.latency_factor
        self.seq_latency = seq_latency * fs.latency_factor
        self.fs = fs
        self.stats = DeviceStats()
        self.registry = stats_registry
        self.prefetch_hold = prefetch_hold
        # Non-sequential requests occupy the transfer channel for this
        # extra time (controller/channel setup).  It is why random 16 KB
        # reads cannot reach sequential bandwidth even at full queue
        # depth — the headroom prefetch batching exploits.
        self.random_channel_overhead = \
            random_channel_overhead * fs.latency_factor
        self._in_flight = 0
        self._in_flight_prefetch = 0
        # Congestion control (§4.7): at most this many prefetch requests
        # occupy the device at once, so a demand read's transfer never
        # queues behind a deep prefetch backlog.
        self.max_prefetch_in_flight = max(2, queue_depth // 2)
        self._queue_blocking: deque[IORequest] = deque()
        self._queue_prefetch: deque[IORequest] = deque()
        # Transfer channels are serialized per direction: the time at
        # which the read (resp. write) channel next becomes free.
        # Bandwidth is strictly conserved; prefetch is kept from
        # monopolising the read channel by the backlog bound below.
        self._read_free = 0.0
        self._write_free = 0.0
        # A prefetch transfer is only dispatched while the read channel
        # backlog is shorter than this (µs) — so a demand read never
        # queues behind more than ~a chunk of prefetch data, while a
        # saturated prefetch pipeline still keeps the channel busy.
        self.prefetch_backlog_us = 1500.0
        # stream id -> byte offset where the previous request ended
        self._stream_pos: dict[int, int] = {}
        # Fault injection (None on a healthy device; see set_fault_engine).
        self.faults = None
        self.degrade: Optional[DegradeController] = None
        self._stall_pending = False
        self._resume_pending = False
        # Multi-tenant QoS (None unless set_qos attaches a manager) and
        # stream placement for region-scoped fault scenarios.  Streams
        # default to region 0; region_of works with or without QoS so
        # the global-clamp comparison rows can still place files.
        self.qos = None
        # Learned adaptive prefetch policy (None unless set_adaptive
        # attaches one; see repro.crosslib.adaptive).  Pure bookkeeping
        # target for retry/fault notifications.
        self.adaptive = None
        self.region_map: dict[int, int] = {}
        # Persistence ledger for crash-consistency scenarios (None
        # unless the kernel attaches one; see set_durable).  Pure
        # bookkeeping — never adds events or I/O.
        self.durable = None
        # Byte counters hoisted out of _start: the f-string + registry
        # lookup per request is measurable at tens of thousands of I/Os.
        if stats_registry is not None:
            self._c_read_bytes = stats_registry.counter("device.read_bytes")
            self._c_write_bytes = stats_registry.counter("device.write_bytes")
        else:
            self._c_read_bytes = self._c_write_bytes = None

    # -- public API --------------------------------------------------------

    def set_fault_engine(self, engine) -> None:
        """Attach a fault engine; all submissions become resilient.

        Also wires the degradation controller, with transitions exported
        as a counter + span instant so recovery is observable.
        """
        self.faults = engine
        engine.attach(self)
        on_transition = None
        if self.registry is not None:
            counter = self.registry.counter("device.degrade_transitions")
            registry = self.registry

            def on_transition(level: int, now: float,
                              _c=counter, _r=registry) -> None:
                _c.value += 1
                observer = _r.observer
                if observer is not None:
                    observer.instant(
                        "storage", "degrade", device=self.name,
                        level=level,
                        state=DegradeController.LEVEL_NAMES[level])

        self.degrade = DegradeController(self.sim, engine.spec.degrade,
                                         on_transition)

    def set_qos(self, manager) -> None:
        """Attach a :class:`~repro.sim.qos.QosManager`.

        Prefetch dispatch then arbitrates per tenant (token buckets +
        in-flight slot shares) instead of through the global degrade
        clamp, and fabric-faulted requests fail over once to the
        secondary path.  Without a manager none of that code runs.
        """
        self.qos = manager
        manager.attach_device(self)

    def set_adaptive(self, policy) -> None:
        """Attach an :class:`~repro.crosslib.adaptive.AdaptivePolicy`.

        The device then feeds it retry attempts, failed completions and
        prefetch-deadline expiries so fault pressure reaches the
        policy's perceptron features.  Without a policy none of that
        code runs (healthy runs are byte-identical).
        """
        self.adaptive = policy
        policy.attach_device(self)

    def set_durable(self, state) -> None:
        """Attach a :class:`~repro.storage.durable.DurableState` ledger
        (durable-damage fault scenarios).  The VFS then reports settled
        writeback via ``durable.note_write`` and ``fsync`` issues flush
        barriers through :meth:`flush_stream`."""
        self.durable = state

    def flush_stream(self, stream: int) -> None:
        """Flush barrier for one stream: every volatile byte the ledger
        holds for it becomes persisted and acknowledged-durable.  No-op
        without a ledger (healthy runs are untouched)."""
        if self.durable is not None:
            self.durable.flush_stream(stream)

    def place_stream(self, stream: int, region: int) -> None:
        """Pin a stream (inode id) to a device region for region-scoped
        fault scenarios (``FaultSpec.region``)."""
        self.region_map[stream] = region

    def region_of(self, stream: int) -> int:
        return self.region_map.get(stream, 0)

    def submit(self, kind: str, offset: int, nbytes: int, *,
               priority: int = BLOCKING, stream: int = 0) -> Event:
        """Queue a request; the returned event fires at completion."""
        if self.faults is not None:
            return self._submit_resilient(kind, offset, nbytes,
                                          priority, stream)
        req = IORequest(kind=kind, offset=offset, nbytes=nbytes,
                        priority=priority, stream=stream,
                        submitted_at=self.sim.now,
                        done=Event(self.sim))
        if priority == BLOCKING:
            self._queue_blocking.append(req)
        else:
            self._queue_prefetch.append(req)
        self._dispatch()
        return req.done

    def _submit_resilient(self, kind: str, offset: int, nbytes: int,
                          priority: int, stream: int) -> Event:
        """Submit under fault injection: retry with capped exponential
        backoff, and (for prefetch) a hard deadline after which the
        request is abandoned so readers behind it can fall back to
        blocking I/O instead of wedging.

        The returned *outer* event fires once — on first success, on
        retry exhaustion, or at the prefetch deadline — regardless of
        how many attempts ran underneath.
        """
        sim = self.sim
        retry = self.faults.spec.retry
        max_retries = (retry.blocking_retries if priority == BLOCKING
                       else retry.prefetch_retries)
        st = self.stats
        outer = Event(sim)
        outer.add_callback(_sink)
        # attempt: completed tries so far; settled: outer already fired;
        # req: the currently outstanding inner attempt (for the deadline
        # watchdog to cancel if it is still queued); path: fabric path
        # for subsequent attempts; extra: retry-budget credit granted by
        # a secondary-path failover (the failover retry is free).
        state = {"attempt": 0, "settled": False, "req": None,
                 "path": 0, "extra": 0}

        def start_attempt(_ev: Optional[Event] = None) -> None:
            if state["settled"]:
                return
            n = state["attempt"]
            req = IORequest(kind=kind, offset=offset, nbytes=nbytes,
                            priority=priority, stream=stream,
                            submitted_at=sim.now, done=Event(sim),
                            path=state["path"])
            state["req"] = req
            if n > 0:
                # Counted at enqueue (not at failure) so the issued-side
                # byte conservation holds even if the deadline watchdog
                # settles the request mid-backoff.
                st.retries += 1
                if kind == READ:
                    st.retried_read_bytes += nbytes
                else:
                    st.retried_write_bytes += nbytes
                if self.adaptive is not None:
                    self.adaptive.note_retry(stream, sim.now)
            req.done.add_callback(on_done)
            if priority == BLOCKING:
                self._queue_blocking.append(req)
            else:
                self._queue_prefetch.append(req)
            self._dispatch()

        def on_done(ev: Event) -> None:
            if state["settled"]:
                return   # completed after the deadline fired; drop
            if ev._ok:
                state["settled"] = True
                outer.succeed(ev._value)
                return
            if (self.qos is not None and state["path"] == 0
                    and isinstance(ev._value, FabricError)):
                # Fabric failover: retry immediately on the modeled
                # secondary path (no backoff, no retry-budget charge —
                # hence the "extra" credit).  The attempt counter still
                # advances so start_attempt books the retried bytes and
                # the conservation audit balances.
                state["path"] = 1
                state["extra"] = 1
                state["attempt"] += 1
                st.reroutes += 1
                self.qos.note_reroute(stream)
                start_attempt()
                return
            state["attempt"] += 1
            n = state["attempt"]
            if n > max_retries + state["extra"]:
                state["settled"] = True
                st.retry_exhausted += 1
                outer.fail(ev._value)
                return
            backoff = min(retry.max_backoff_us,
                          retry.base_backoff_us
                          * retry.backoff_multiplier ** (n - 1))
            sim.timeout(backoff).add_callback(start_attempt)

        if priority == PREFETCH:
            def deadline(_ev: Event) -> None:
                if state["settled"]:
                    return
                state["settled"] = True
                st.timeouts += 1
                self.faults.stats.timeouts += 1
                req = state["req"]
                try:
                    # Still queued: cancel it.  (In flight or mid-backoff
                    # the attempt's own accounting already balances.)
                    self._queue_prefetch.remove(req)
                except ValueError:
                    pass
                else:
                    st.aborted_requests += 1
                    if kind == READ:
                        st.aborted_read_bytes += nbytes
                    else:
                        st.aborted_write_bytes += nbytes
                if self.degrade is not None:
                    self.degrade.note_fault(sim.now, weight=2.0)
                if self.qos is not None:
                    self.qos.note_fault(stream, sim.now, weight=2.0)
                if self.adaptive is not None:
                    self.adaptive.note_fault(stream, sim.now,
                                             weight=2.0)
                outer.fail(DeviceTimeout(
                    f"prefetch {kind} offset={offset} nbytes={nbytes} "
                    f"missed {retry.prefetch_timeout_us:g}us deadline"))

            sim.timeout(retry.prefetch_timeout_us).add_callback(deadline)

        start_attempt()
        return outer

    def read(self, offset: int, nbytes: int, *, priority: int = BLOCKING,
             stream: int = 0) -> Event:
        return self.submit(READ, offset, nbytes, priority=priority,
                           stream=stream)

    def write(self, offset: int, nbytes: int, *, priority: int = BLOCKING,
              stream: int = 0) -> Event:
        return self.submit(WRITE, offset, nbytes, priority=priority,
                           stream=stream)

    @property
    def blocking_queued(self) -> int:
        return len(self._queue_blocking)

    @property
    def prefetch_queued(self) -> int:
        return len(self._queue_prefetch)

    def forget_stream(self, stream: int) -> None:
        self._stream_pos.pop(stream, None)
        if self.durable is not None:
            # Unlinked file: its durability obligations end with it.
            self.durable.forget_stream(stream)

    # -- scheduling --------------------------------------------------------

    def _dispatch(self) -> None:
        if self.faults is not None:
            until = self.faults.stall_until(self.sim.now)
            if until > self.sim.now:
                # Queue stall window: dispatch nothing until it ends.
                if not self._stall_pending:
                    self._stall_pending = True
                    self.stats.stall_time += until - self.sim.now
                    self.sim.timeout(until - self.sim.now) \
                        .add_callback(self._unstall)
                return
        while self._in_flight < self.queue_depth:
            req = self._pick()
            if req is None:
                return
            self._start(req)

    def _unstall(self, _ev: Event) -> None:
        self._stall_pending = False
        self._dispatch()

    def _resume_poll(self, _ev: Event) -> None:
        self._resume_pending = False
        self._dispatch()

    def _pick(self) -> Optional[IORequest]:
        if self._queue_blocking:
            return self._queue_blocking.popleft()
        if not self._queue_prefetch:
            return None
        max_prefetch = self.max_prefetch_in_flight
        if self.qos is not None:
            return self._pick_prefetch_qos(max_prefetch)
        if self.degrade is not None:
            level = self.degrade.current_level(self.sim.now)
            if level >= 2:
                # Paused: no new prefetch dispatch.  Nothing in flight
                # means no completion will re-trigger _dispatch, so poll
                # until the pressure drains (or the deadline watchdogs
                # reap the queue).
                if not self._resume_pending and not self._stall_pending:
                    self._resume_pending = True
                    self.sim.timeout(1000.0).add_callback(self._resume_poll)
                return None
            if level == 1:
                max_prefetch = max(1, max_prefetch // 2)
        # Congestion control: keep queue depth free for blocking I/O and
        # bound the prefetch backlog on the transfer channel.
        if self._in_flight >= max(1, self.queue_depth - 1):
            return None
        if self._in_flight_prefetch >= max_prefetch:
            return None
        head = self._queue_prefetch[0]
        if head.kind == READ and \
                self._read_free - self.sim.now > self.prefetch_backlog_us:
            return None
        return self._queue_prefetch.popleft()

    def _pick_prefetch_qos(self,
                           max_prefetch: int) -> Optional[IORequest]:
        """Tenant-aware prefetch pick: the per-tenant slot/level gate
        replaces the global degrade clamp, so one tenant's fault
        pressure never starves another's prefetch stream.

        Scans past head-of-line requests of inadmissible tenants (a
        paused tenant's queue entries wait in place for the deadline
        watchdogs; admissible co-tenants behind them dispatch).
        """
        now = self.sim.now
        if self._in_flight >= max(1, self.queue_depth - 1):
            return None
        if self._in_flight_prefetch >= max_prefetch:
            return None
        backlogged = \
            self._read_free - now > self.prefetch_backlog_us
        queue = self._queue_prefetch
        qos = self.qos
        for i, req in enumerate(queue):
            if not qos.can_dispatch(req.stream, now):
                continue
            if req.kind == READ and backlogged:
                # Channel backlog bound applies to every tenant; the
                # next completion will re-dispatch.
                return None
            if i == 0:
                return queue.popleft()
            del queue[i]
            return req
        # Nothing admissible.  With requests queued but zero in flight
        # no completion will re-trigger _dispatch — poll, as the global
        # paused branch does.
        if queue and self._in_flight == 0 and \
                not self._resume_pending and not self._stall_pending:
            self._resume_pending = True
            self.sim.timeout(1000.0).add_callback(self._resume_poll)
        return None

    def _start(self, req: IORequest) -> None:
        lat_mult = 1.0
        bw_factor = 1.0
        if self.faults is not None:
            # Consult the fault oracle BEFORE stream-position
            # bookkeeping: a failed dispatch must not advance the
            # sequential stream (the transfer never happened).
            exc, fail_latency, lat_mult, bw_factor = \
                self.faults.decide(req, self.sim.now)
            if exc is not None:
                self._start_failed(req, exc, fail_latency)
                return
        self._in_flight += 1
        if req.priority == PREFETCH:
            self._in_flight_prefetch += 1
            if self.qos is not None:
                self.qos.note_dispatch(req.stream)
        now = self.sim.now
        waited = now - req.submitted_at
        sequential = self._stream_pos.get(req.stream) == req.offset
        req.queue_wait = waited
        req.sequential = sequential
        self._stream_pos[req.stream] = req.offset + req.nbytes

        latency = self.seq_latency if sequential else self.access_latency
        if req.priority == PREFETCH and not sequential:
            # Prefetch requests are batched/merged more readily in the
            # kernel path; model as a small extra setup hold.
            latency += self.prefetch_hold
        if lat_mult != 1.0:
            latency *= lat_mult   # tail-latency storm / spike
        if req.path != 0 and self.faults is not None \
                and self.faults.spec.fabric is not None:
            # Secondary fabric path: fault-free but slower.
            latency *= self.faults.spec.fabric.secondary_latency_mult

        if req.kind == READ:
            bandwidth = self.read_bandwidth
        else:
            bandwidth = self.write_bandwidth
        if bw_factor != 1.0:
            bandwidth *= bw_factor   # degraded-bandwidth window
        transfer = req.nbytes / bandwidth
        if not sequential:
            transfer += self.random_channel_overhead

        access_done = now + latency
        if req.kind == READ:
            free = self._read_free
            start_xfer = access_done if access_done > free else free
            finish = start_xfer + transfer
            self._read_free = finish
        else:
            free = self._write_free
            start_xfer = access_done if access_done > free else free
            finish = start_xfer + transfer
            self._write_free = finish

        self.stats.record(req, waited, latency, start_xfer - access_done,
                          transfer, sequential)
        if self._c_read_bytes is not None:
            if req.kind == READ:
                self._c_read_bytes.value += req.nbytes
            else:
                self._c_write_bytes.value += req.nbytes

        done_event = self.sim.timeout(finish - now)
        done_event.add_callback(lambda _ev, r=req: self._complete(r))

    def _start_failed(self, req: IORequest, exc: Exception,
                      fail_latency: float) -> None:
        """Dispatch a doomed attempt: it occupies an in-flight slot
        until the error is reported, then fails its done event."""
        self._in_flight += 1
        if req.priority == PREFETCH:
            self._in_flight_prefetch += 1
            if self.qos is not None:
                self.qos.note_dispatch(req.stream)
        req.queue_wait = self.sim.now - req.submitted_at
        st = self.stats
        st.faults_injected += 1
        if req.kind == READ:
            st.read_failures += 1
            st.failed_read_bytes += req.nbytes
        else:
            st.write_failures += 1
            st.failed_write_bytes += req.nbytes
        self.sim.timeout(max(1.0, fail_latency)).add_callback(
            lambda _ev, r=req, e=exc: self._complete_failed(r, e))

    def _complete_failed(self, req: IORequest, exc: Exception) -> None:
        self._in_flight -= 1
        if req.priority == PREFETCH:
            self._in_flight_prefetch -= 1
            if self.qos is not None:
                self.qos.note_complete(req.stream)
        if self.degrade is not None:
            self.degrade.note_fault(self.sim.now)
        if self.qos is not None:
            self.qos.note_fault(req.stream, self.sim.now)
        if self.adaptive is not None:
            self.adaptive.note_fault(req.stream, self.sim.now)
        if self.registry is not None:
            observer = self.registry.observer
            if observer is not None:
                observer.complete(
                    "storage", req.kind, req.submitted_at,
                    device=self.name, stream=req.stream,
                    nbytes=req.nbytes,
                    prefetch=req.priority == PREFETCH,
                    error=exc.code,
                    queue_wait_us=round(req.queue_wait, 3))
        req.done.fail(exc)
        self._dispatch()

    def _complete(self, req: IORequest) -> None:
        self._in_flight -= 1
        if req.priority == PREFETCH:
            self._in_flight_prefetch -= 1
            if self.qos is not None:
                self.qos.note_complete(req.stream)
        if self.degrade is not None:
            self.degrade.note_ok(self.sim.now)
        if self.qos is not None:
            now = self.sim.now
            self.qos.note_ok(req.stream, now)
            if req.priority == BLOCKING and req.kind == READ:
                self.qos.note_latency(req.stream,
                                      now - req.submitted_at, now)
        if self.registry is not None:
            observer = self.registry.observer
            if observer is not None:
                observer.complete(
                    "storage", req.kind, req.submitted_at,
                    device=self.name, stream=req.stream,
                    nbytes=req.nbytes,
                    prefetch=req.priority == PREFETCH,
                    sequential=req.sequential,
                    queue_wait_us=round(req.queue_wait, 3))
        req.done.succeed(req)
        self._dispatch()
