"""Simulated block storage: NVMe, remote NVMe-oF, file-system profiles.

The paper evaluates on a 1.6 TB NVMe SSD (1.4 GB/s read / 0.9 GB/s write)
under ext4 and F2FS, locally and over RDMA NVMe-oF.  This package models
that stack with a two-phase service model per request:

1. an *access phase* (fixed latency; seek penalty when the request does
   not continue a sequential stream), overlapped up to the device queue
   depth, and
2. a *transfer phase* serialized through the device's read or write
   bandwidth.

Small random reads are therefore latency-bound and scale with queue
depth; large sequential reads are bandwidth-bound — the two regimes whose
gap prefetching exploits.  Prefetch requests carry a low priority class
and are deferred while blocking I/O is queued (the congestion control
§4.7 describes).
"""

from repro.storage.device import (
    BLOCKING,
    PREFETCH,
    DeviceStats,
    IORequest,
    StorageDevice,
)
from repro.storage.filesystem import EXT4, F2FS, FilesystemProfile
from repro.storage.nvme import NVMeDevice, NVMeParams
from repro.storage.remote import RemoteNVMeDevice, RemoteParams

__all__ = [
    "BLOCKING",
    "DeviceStats",
    "EXT4",
    "F2FS",
    "FilesystemProfile",
    "IORequest",
    "NVMeDevice",
    "NVMeParams",
    "PREFETCH",
    "RemoteNVMeDevice",
    "RemoteParams",
    "StorageDevice",
]
