"""Durable-state accounting for crash-consistency scenarios.

Under a durable-damage fault spec (``FaultSpec.durable``) the kernel
attaches a :class:`DurableState` to the storage device.  It tracks, per
stream (inode), which byte ranges of a file are

* **persisted** — on media, survive a crash;
* **volatile**  — written to the device (the flusher or an eviction
  counted as writeback) but not yet covered by a flush barrier; they
  sit in the device write cache and are at risk;
* **acked**     — acknowledged durable to the application: exactly the
  ranges that were volatile at some ``fsync`` barrier.  The core
  recovery invariant is ``acked ⊆ persisted`` — no
  acknowledged-durable byte may ever be lost (``repro.sim.audit``
  checks it at shutdown, :func:`repro.sim.crash.take_snapshot` at a
  crash).

Crash resolution is seed-deterministic: each volatile record carries a
global write **ordinal**, and its fate (fully persisted / torn to a
byte-prefix / lost) is a pure function of ``(seed, ordinal)`` via the
same SplitMix64 mixer the fault engine uses (salts 19 and 29).  With no
:class:`~repro.sim.faults.TornWriteSpec` a crash loses every volatile
byte — the clean volatile-cache-loss model.

The accounting adds **no I/O and no events**: every hook
(``note_write``, ``flush_stream``) is synchronous bookkeeping, so a
faulted run's event sequence is unchanged by attaching it.
"""

from __future__ import annotations

import bisect
from typing import Optional

from repro.sim.faults import TornWriteSpec, _unit

__all__ = ["DurableState", "IntervalSet"]

# SplitMix64 salts (shared namespace with repro.sim.faults: fabric=11,
# errors=13, spikes=17, wbdrop=23, crash instant=31).
_SALT_FATE = 19         # volatile-record fate at crash
_SALT_FRACTION = 29     # persisted prefix fraction of a torn record


class IntervalSet:
    """A set of disjoint, sorted, half-open byte intervals ``[s, e)``.

    Supports merge-on-add, coverage queries, and longest-covered-prefix
    — everything the durability invariants and WAL replay need.  Pure
    Python, O(log n) lookup, O(n) worst-case add (amortized fine at the
    scales the simulator runs).
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:
        runs = ", ".join(f"[{s}, {e})"
                         for s, e in zip(self._starts, self._ends))
        return f"IntervalSet({runs})"

    def copy(self) -> "IntervalSet":
        dup = IntervalSet()
        dup._starts = list(self._starts)
        dup._ends = list(self._ends)
        return dup

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging with any overlap/adjacency."""
        if end <= start:
            return
        starts, ends = self._starts, self._ends
        # Leftmost interval whose end touches start, through rightmost
        # whose start touches end, all coalesce into one.
        lo = bisect.bisect_left(ends, start)
        hi = bisect.bisect_right(starts, end)
        if lo < hi:
            start = min(start, starts[lo])
            end = max(end, ends[hi - 1])
        starts[lo:hi] = [start]
        ends[lo:hi] = [end]

    def covers(self, start: int, end: int) -> bool:
        """True iff every byte of ``[start, end)`` is in the set."""
        if end <= start:
            return True
        i = bisect.bisect_right(self._starts, start) - 1
        return i >= 0 and self._ends[i] >= end

    def covered_prefix(self, start: int, end: int) -> int:
        """Length of the longest covered prefix of ``[start, end)``."""
        if end <= start:
            return 0
        i = bisect.bisect_right(self._starts, start) - 1
        if i < 0 or self._ends[i] <= start:
            return 0
        return min(end, self._ends[i]) - start

    def intersect(self, start: int, end: int) -> list[tuple[int, int]]:
        """The sub-intervals of the set that overlap ``[start, end)``."""
        out: list[tuple[int, int]] = []
        i = max(0, bisect.bisect_right(self._ends, start))
        while i < len(self._starts) and self._starts[i] < end:
            out.append((max(start, self._starts[i]),
                        min(end, self._ends[i])))
            i += 1
        return out

    def gaps(self, start: int, end: int) -> list[tuple[int, int]]:
        """The sub-intervals of ``[start, end)`` NOT covered by the set."""
        out: list[tuple[int, int]] = []
        pos = start
        for s, e in self.intersect(start, end):
            if s > pos:
                out.append((pos, s))
            pos = max(pos, e)
        if pos < end:
            out.append((pos, end))
        return out

    def total(self) -> int:
        """Total bytes covered."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def runs(self) -> list[tuple[int, int]]:
        return list(zip(self._starts, self._ends))


class DurableState:
    """Per-device persistence ledger (see module docstring).

    Wired by the kernel: ``StorageDevice.durable`` points here, the VFS
    calls :meth:`note_write` when writeback settles (and when a dirty
    page is evicted, which the page-cache model counts as written
    back), ``fsync`` drives :meth:`flush_stream`, ``unlink`` drives
    :meth:`forget_stream`, and ``Kernel.create_file`` seeds
    pre-populated files via :meth:`seed_file`.
    """

    def __init__(self, seed: int, *,
                 torn: Optional[TornWriteSpec] = None) -> None:
        self.seed = seed
        self.torn = torn
        # stream -> [(ordinal, start, end)] in write order.
        self._volatile: dict[int, list[tuple[int, int, int]]] = {}
        self.persisted: dict[int, IntervalSet] = {}
        self.acked: dict[int, IntervalSet] = {}
        self._ordinal = 0
        # Counters (reported via summary(), never merged into
        # DeviceStats.fault_summary so existing outputs are unchanged).
        self.volatile_records = 0
        self.barriers = 0
        self.seeded_files = 0
        self.forgotten_streams = 0

    # -- write-path hooks ---------------------------------------------------

    def seed_file(self, stream: int, size: int) -> None:
        """A pre-populated file's initial contents are on media."""
        if size > 0:
            self.persisted.setdefault(stream, IntervalSet()).add(0, size)
            self.seeded_files += 1

    def note_write(self, stream: int, offset: int, nbytes: int) -> None:
        """A write reached the device (volatile until a barrier)."""
        if nbytes <= 0:
            return
        rec = (self._ordinal, offset, offset + nbytes)
        self._ordinal += 1
        self.volatile_records += 1
        self._volatile.setdefault(stream, []).append(rec)

    def flush_stream(self, stream: int) -> None:
        """Flush barrier (``fsync``): every volatile byte of the stream
        becomes persisted *and* acknowledged-durable."""
        self.barriers += 1
        recs = self._volatile.pop(stream, None)
        if not recs:
            return
        persisted = self.persisted.setdefault(stream, IntervalSet())
        acked = self.acked.setdefault(stream, IntervalSet())
        for _ordinal, start, end in recs:
            persisted.add(start, end)
            acked.add(start, end)

    def forget_stream(self, stream: int) -> None:
        """The file was unlinked; its durability obligations end."""
        if (self._volatile.pop(stream, None) is not None
                or self.persisted.pop(stream, None) is not None):
            self.forgotten_streams += 1
        self.acked.pop(stream, None)

    # -- crash resolution ---------------------------------------------------

    def resolve_crash(self) -> tuple[dict[int, IntervalSet], dict]:
        """What survives a crash right now.

        Pure (mutates nothing; calling twice gives identical results).
        Returns ``(resolved, resolution)``: per-stream surviving
        intervals, plus counters describing the volatile records' fates.
        """
        resolved = {s: iv.copy() for s, iv in self.persisted.items()}
        res = {"records_persisted": 0, "records_torn": 0,
               "records_lost": 0, "bytes_lost": 0}
        torn = self.torn
        for stream in sorted(self._volatile):
            target = resolved.setdefault(stream, IntervalSet())
            for ordinal, start, end in self._volatile[stream]:
                nbytes = end - start
                if torn is None:
                    res["records_lost"] += 1
                    res["bytes_lost"] += nbytes
                    continue
                u = _unit(self.seed, _SALT_FATE, ordinal)
                if u < torn.persist_prob:
                    target.add(start, end)
                    res["records_persisted"] += 1
                elif u < torn.persist_prob + torn.torn_prob:
                    keep = int(nbytes
                               * _unit(self.seed, _SALT_FRACTION, ordinal))
                    target.add(start, start + keep)
                    res["records_torn"] += 1
                    res["bytes_lost"] += nbytes - keep
                else:
                    res["records_lost"] += 1
                    res["bytes_lost"] += nbytes
        return resolved, res

    # -- invariants ---------------------------------------------------------

    def verify_acked(self,
                     resolved: Optional[dict[int, IntervalSet]] = None
                     ) -> list[str]:
        """Check ``acked ⊆ persisted`` (or ⊆ ``resolved`` post-crash).

        Returns one violation string per hole — empty means the "no
        acknowledged-durable bytes lost" invariant holds.
        """
        violations: list[str] = []
        universe = self.persisted if resolved is None else resolved
        for stream in sorted(self.acked):
            acked = self.acked[stream]
            have = universe.get(stream)
            for start, end in acked.runs():
                if have is None or not have.covers(start, end):
                    missing = (end - start if have is None
                               else (end - start)
                               - sum(e - s for s, e
                                     in have.intersect(start, end)))
                    violations.append(
                        f"stream {stream}: acknowledged-durable bytes "
                        f"lost ({missing} of [{start}, {end}))")
        return violations

    def summary(self) -> dict:
        """Deterministic counters for stress/experiment reports."""
        return {
            "streams": len(set(self.persisted) | set(self._volatile)),
            "persisted_bytes": sum(iv.total()
                                   for iv in self.persisted.values()),
            "acked_bytes": sum(iv.total() for iv in self.acked.values()),
            "volatile_records": self.volatile_records,
            "volatile_bytes": sum(end - start
                                  for recs in self._volatile.values()
                                  for _o, start, end in recs),
            "barriers": self.barriers,
            "seeded_files": self.seeded_files,
        }
