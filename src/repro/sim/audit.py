"""Invariant auditor: conservation checks, deadlock detection, leaks.

The simulator's claims rest on pages, bytes, and lock time being
conserved across the page-cache / bitmap / LRU / device layers.  This
module makes that mechanically checkable.  An :class:`Auditor` attaches
to a :class:`~repro.sim.engine.Simulator` (``sim.auditor``) and is fed
by hooks in the sync primitives, the engine's process lifecycle, the
page-cache mirror hooks, and the VFS fill path.  With no auditor
attached, every hook site is a single ``None`` check — same contract as
the PR-1 span observer.

Three families of checks:

**Conservation** (:meth:`Auditor.check_now` / :meth:`Auditor.final_check`)
    * ``MemoryManager.used_pages`` ≡ Σ per-inode ``cached_pages``;
    * LRU membership ≡ the set of chunks with resident pages;
    * the Cross-OS exported bitmap ≡ page-cache ``present`` (exact at
      ``cross_bitmap_shift == 0``, the default; a coarser bitmap
      under-reports by design after partial evictions, so it is skipped);
    * device bytes read ≡ bytes the VFS fill path issued (``≤`` while
      requests are queued, equal once the simulation drains);
    * per-direction device channel utilization ≤ 1.0 (the check that
      catches double-counted busy time);
    * with a QoS manager attached: Σ per-tenant ``admitted_blocks`` ≡
      the ``cross.prefetch_blocks`` counter (every admission charged to
      exactly one tenant), token buckets never overdrawn, and every
      tenant's in-flight prefetch count back to zero at shutdown.

**Deadlock / lock order** (fed by the sync-primitive hooks)
    * a wait-for graph over ``Lock``/``RwLock``/``Semaphore``: a cycle
      raises :class:`AuditError` immediately, naming the processes and
      locks involved;
    * a lockdep-style order recorder: two lock *classes* (instance names
      with the ``[...]`` suffix stripped) acquired in both orders is
      recorded as a warning.

**Leaks** (:meth:`Auditor.final_check`)
    * a lock still held when its holder process exits, or when the
      simulation ends;
    * a process still blocked at the end — its wakeup event never fired;
    * inflight / planned fill bitmaps not empty after shutdown.

``final_check`` raises :class:`AuditError` listing every recorded
violation; order-inversion warnings are reported but never fatal.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.engine import Event, Process, SimulationError, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.os.crossos import CrossState
    from repro.os.kernel import Kernel

__all__ = ["AuditError", "Auditor", "run_stress"]

# Holder key for acquisitions made outside any simulated process
# (experiment setup code, tests poking primitives directly).
_EXTERNAL = "<external>"


class AuditError(SimulationError):
    """An invariant violation detected by the :class:`Auditor`."""


def _base_name(prim: Any) -> str:
    """Lock *class* for order tracking: ``cache_tree[7]`` -> ``cache_tree``."""
    return prim.name.split("[", 1)[0]


def _proc_name(proc: Any) -> str:
    return proc.name if isinstance(proc, Process) else str(proc)


class Auditor:
    """Collects invariants for one simulator; see the module docstring."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        sim.auditor = self
        # prim -> {holder: count} (RwLock readers / Semaphore slots can
        # have several holders; a holder can hold several slots).
        self._holders: dict[Any, dict[Any, int]] = {}
        # holder -> [prim, ...] in acquisition order (with repeats).
        self._held: dict[Any, list[Any]] = {}
        # Grant event -> (prim, waiter) recorded when a process blocks;
        # consumed at grant time to learn the new holder's identity
        # (the grant itself runs in the releaser's context).
        self._pending: dict[Event, tuple[Any, Any]] = {}
        # process -> prim it is currently blocked on (wait-for edges).
        self._blocked: dict[Any, Any] = {}
        # Ordered pairs of lock classes seen: (first, second).
        self._order: set[tuple[str, str]] = set()
        self._warned_pairs: set[tuple[str, str]] = set()
        self.warnings: list[str] = []
        self.violations: list[str] = []
        # Bytes the VFS fill path asked the device to read.
        self.fill_read_bytes = 0
        self.mirror_checks = 0
        self._kernel: Optional["Kernel"] = None
        self._finalized = False

    # -- wiring ------------------------------------------------------------

    def attach_kernel(self, kernel: "Kernel") -> None:
        self._kernel = kernel

    def _holder(self) -> Any:
        proc = self.sim.current_process
        return proc if proc is not None else _EXTERNAL

    # -- sync-primitive hooks ----------------------------------------------

    def lock_registered(self, prim: Any) -> None:
        self._holders.setdefault(prim, {})

    def lock_acquired(self, prim: Any, mode: str = "") -> None:
        """An immediate (uncontended) grant to the current process."""
        self._grant_to(prim, self._holder())

    def lock_blocked(self, prim: Any, ev: Event, mode: str = "") -> None:
        """The current process queued on ``prim``; check for deadlock."""
        waiter = self._holder()
        self._pending[ev] = (prim, waiter)
        if waiter is _EXTERNAL:
            return
        self._blocked[waiter] = prim
        cycle = self._find_cycle(waiter, prim)
        if cycle is not None:
            procs, locks = cycle
            msg = ("deadlock: " +
                   " -> ".join(f"{_proc_name(p)} waits on "
                               f"{lk.name!r}" for p, lk in zip(procs, locks)))
            self.violations.append(msg)
            raise AuditError(msg)

    def lock_granted(self, prim: Any, ev: Event, mode: str = "") -> None:
        """A queued waiter was granted the primitive (releaser context)."""
        entry = self._pending.pop(ev, None)
        if entry is None:
            return
        _prim, waiter = entry
        self._blocked.pop(waiter, None)
        self._grant_to(prim, waiter)

    def lock_released(self, prim: Any, mode: str = "") -> None:
        holders = self._holders.get(prim)
        if not holders:
            return
        # Attribute the release to the current process when it is a
        # holder; otherwise to any holder (FIFO pairing — exact for the
        # aggregate checks this auditor makes).
        holder = self._holder()
        if holder not in holders:
            holder = next(iter(holders))
        holders[holder] -= 1
        if holders[holder] <= 0:
            del holders[holder]
        held = self._held.get(holder)
        if held is not None:
            try:
                held.remove(prim)
            except ValueError:
                pass
            if not held:
                del self._held[holder]

    def _grant_to(self, prim: Any, holder: Any) -> None:
        held = self._held.setdefault(holder, [])
        self._record_order(held, prim)
        held.append(prim)
        holders = self._holders.setdefault(prim, {})
        holders[holder] = holders.get(holder, 0) + 1

    # -- lock-order recording ----------------------------------------------

    def _record_order(self, held: list, prim: Any) -> None:
        inner = _base_name(prim)
        for outer_prim in held:
            outer = _base_name(outer_prim)
            if outer == inner:
                # Same class (e.g. two per-inode bitmap locks): instances
                # guard disjoint state, ordering is not meaningful here.
                continue
            pair = (outer, inner)
            self._order.add(pair)
            inverse = (inner, outer)
            if inverse in self._order and pair not in self._warned_pairs:
                self._warned_pairs.add(pair)
                self._warned_pairs.add(inverse)
                self.warnings.append(
                    f"lock-order inversion: {outer!r} and {inner!r} "
                    f"acquired in both orders")

    # -- wait-for graph ----------------------------------------------------

    def _find_cycle(self, start_proc: Any, start_prim: Any
                    ) -> Optional[tuple[list, list]]:
        """DFS from ``start_prim``'s holders back to ``start_proc``.

        Returns (processes, locks-they-wait-on) along the cycle, or None.
        """
        path_procs: list = [start_proc]
        path_locks: list = [start_prim]

        def visit(prim: Any, seen: set) -> bool:
            for holder in self._holders.get(prim, {}):
                if holder is start_proc:
                    return True
                if holder is _EXTERNAL or holder in seen:
                    continue
                nxt = self._blocked.get(holder)
                if nxt is None:
                    continue
                seen.add(holder)
                path_procs.append(holder)
                path_locks.append(nxt)
                if visit(nxt, seen):
                    return True
                path_procs.pop()
                path_locks.pop()
            return False

        if visit(start_prim, {start_proc}):
            return path_procs, path_locks
        return None

    # -- process lifecycle -------------------------------------------------

    def process_exited(self, proc: Process) -> None:
        held = self._held.pop(proc, None)
        if held:
            names = sorted({p.name for p in held})
            self.violations.append(
                f"process {proc.name!r} exited holding "
                f"{', '.join(repr(n) for n in names)}")
            for prim in held:
                holders = self._holders.get(prim)
                if holders is not None:
                    holders.pop(proc, None)
        self._blocked.pop(proc, None)
        for ev, (prim, waiter) in list(self._pending.items()):
            if waiter is proc:
                del self._pending[ev]

    # -- conservation feeds ------------------------------------------------

    def count_fill_read(self, nbytes: int) -> None:
        """The VFS fill path submitted ``nbytes`` of device reads."""
        self.fill_read_bytes += nbytes

    def check_mirror(self, state: "CrossState", start: int,
                     count: int) -> None:
        """After a mirror hook: exported bitmap ≡ ``present`` over the
        affected window (exact only at shift 0)."""
        if state.bitmap.shift != 0:
            return
        self.mirror_checks += 1
        cache = state.inode.cache
        count = max(0, min(count, cache.nblocks - start))
        if count <= 0:
            return
        if state.bitmap.window(start, count) != \
                cache.present.window(start, count):
            self.violations.append(
                f"cross bitmap diverged from page cache for inode "
                f"{state.inode.id} blocks [{start}, {start + count})")

    # -- the checks --------------------------------------------------------

    def check_now(self, kernel: Optional["Kernel"] = None) -> None:
        """Audit cross-layer conservation at the current instant.

        Valid at any quiescent point (between drives, after ``run()``);
        device byte equality is deferred to :meth:`final_check` because
        queued requests are counted at dispatch, not submission.
        """
        kernel = kernel or self._kernel
        if kernel is None:
            return
        mem = kernel.mem
        caches = list(mem._caches.values())
        cached = sum(c.cached_pages for c in caches)
        if mem.used_pages != cached:
            self.violations.append(
                f"memory accounting: used_pages={mem.used_pages} but "
                f"page caches hold {cached} pages")
        lru_keys = set(mem.lru.keys())
        resident = {(c.inode_id, chunk)
                    for c in caches for chunk in c.resident_chunks()}
        if lru_keys != resident:
            ghosts = sorted(lru_keys - resident)[:4]
            missing = sorted(resident - lru_keys)[:4]
            self.violations.append(
                f"LRU membership != resident chunks "
                f"(in LRU only: {ghosts}, resident only: {missing})")
        cross = kernel.cross
        if cross is not None:
            for state in cross._states.values():
                if state.bitmap.shift != 0:
                    continue
                cache = state.inode.cache
                n = cache.nblocks
                if n and state.bitmap.window(0, n) != \
                        cache.present.window(0, n):
                    self.violations.append(
                        f"cross bitmap != present for inode "
                        f"{state.inode.id}")
        # Byte conservation, fault-aware: every attempt the device
        # consumed (success, injected failure, or watchdog abort) must
        # have been issued by the fill path or by a retry.  On a healthy
        # device the fault terms are all zero and this degenerates to
        # read_bytes ≤ fill_read_bytes.
        stats = kernel.device.stats
        consumed = (stats.read_bytes + stats.failed_read_bytes
                    + stats.aborted_read_bytes)
        issued = self.fill_read_bytes + stats.retried_read_bytes
        if consumed > issued:
            self.violations.append(
                f"device consumed {consumed} read bytes "
                f"(ok={stats.read_bytes}, failed={stats.failed_read_bytes},"
                f" aborted={stats.aborted_read_bytes}) but only {issued} "
                f"were issued (fill={self.fill_read_bytes}, "
                f"retried={stats.retried_read_bytes})")
        # Multi-tenant fairness: every Cross-OS block admission went
        # through exactly one tenant's bucket, and no bucket was ever
        # overdrawn (grant() clamps at zero; negative tokens would mean
        # the fair-share arbiter leaked budget).
        qos = getattr(kernel, "qos", None)
        if qos is not None:
            admitted = sum(state.admitted_blocks
                           for state in qos.tenants.values())
            counted = kernel.registry.get("cross.prefetch_blocks")
            if admitted != counted:
                self.violations.append(
                    f"qos admission not conserved: tenants admitted "
                    f"{admitted} blocks but cross.prefetch_blocks="
                    f"{counted:g}")
            for name, state in qos.tenants.items():
                if state.bucket.tokens < -1e-9:
                    self.violations.append(
                        f"qos bucket for tenant {name!r} overdrawn: "
                        f"{state.bucket.tokens} tokens")

    def final_check(self, kernel: Optional["Kernel"] = None) -> None:
        """End-of-run audit; raises :class:`AuditError` on violations.

        Call with the simulation drained (``Kernel.shutdown`` does)."""
        if self._finalized:
            return
        self._finalized = True
        kernel = kernel or self._kernel
        self.check_now(kernel)
        if kernel is not None:
            stats = kernel.device.stats
            consumed = (stats.read_bytes + stats.failed_read_bytes
                        + stats.aborted_read_bytes)
            issued = self.fill_read_bytes + stats.retried_read_bytes
            if consumed != issued:
                self.violations.append(
                    f"device bytes not conserved: consumed {consumed} "
                    f"(ok={stats.read_bytes}, "
                    f"failed={stats.failed_read_bytes}, "
                    f"aborted={stats.aborted_read_bytes}) but the fill "
                    f"path issued {self.fill_read_bytes} "
                    f"(+{stats.retried_read_bytes} retried)")
            elapsed = self.sim.now
            if elapsed > 0:
                util = stats.utilization(elapsed)
                if util > 1.0 + 1e-9:
                    self.violations.append(
                        f"device channel utilization {util:.3f} > 1.0")
            for inode_id, bm in kernel.vfs._inflight.items():
                if bm.count_set():
                    self.violations.append(
                        f"inflight bitmap not empty for inode {inode_id}")
            for inode_id, bm in kernel.vfs._planned.items():
                if bm.count_set():
                    self.violations.append(
                        f"planned bitmap not empty for inode {inode_id}")
            qos = getattr(kernel, "qos", None)
            if qos is not None:
                for name, state in qos.tenants.items():
                    if state.inflight != 0:
                        self.violations.append(
                            f"qos tenant {name!r} still has "
                            f"{state.inflight} prefetch requests in "
                            f"flight at end of run")
            # Durability: every byte a flush barrier acknowledged must
            # still be persisted at shutdown (crash-time coverage is
            # checked by repro.sim.crash.take_snapshot instead, since a
            # crashed kernel never reaches final_check).
            durable = getattr(kernel, "durable", None)
            if durable is not None:
                self.violations.extend(durable.verify_acked())
        for prim, holders in self._holders.items():
            for holder, n in holders.items():
                if n > 0:
                    self.violations.append(
                        f"{prim.name!r} still held by "
                        f"{_proc_name(holder)} at end of run")
        for proc, prim in self._blocked.items():
            self.violations.append(
                f"process {_proc_name(proc)} still blocked on "
                f"{prim.name!r} at end of run (grant never fired)")
        for proc in self.sim._processes:
            if proc.is_alive and proc not in self._blocked:
                self.violations.append(
                    f"process {proc.name!r} never finished "
                    f"(waited-on event never fired)")
        if self.violations:
            raise AuditError(
                "invariant audit failed:\n  " +
                "\n  ".join(self.violations))


# -- randomized model-checking stress harness ------------------------------


def run_stress(seed: int, *, steps: int = 40, nthreads: int = 4,
               file_mb: int = 8, memory_mb: int = 2,
               faults=None, qos=None) -> dict:
    """Drive an audited kernel with randomized concurrent readers,
    prefetchers, writers, and reclaim pressure.

    Memory is sized well below the file so reclaim runs constantly; the
    thread mix hits the demand-read, Cross-OS prefetch, writeback, and
    fadvise(DONTNEED) paths concurrently.  Deterministic in ``seed``.
    With a ``faults`` spec (:class:`repro.sim.faults.FaultSpec`) the
    same mix runs under chaos — the audit must stay green while the
    device injects failures, storms, and stalls.  A ``qos`` spec
    (:class:`repro.sim.qos.QosSpec`) attaches the multi-tenant manager
    so the fairness invariants (admission conservation, bucket
    non-negativity, inflight drain) are exercised too.  Raises
    :class:`AuditError` if any invariant breaks; returns a small stats
    dict otherwise.

    Durable-damage specs extend the run in two ways.  The worker mix
    gains ``fsync`` (flush barriers are what make persistence
    accounting non-trivial).  A spec with a crash model additionally
    switches to crash-restart mode: the run is cut at the
    seed-deterministic crash instant, the persisted remnants are
    snapshotted (checking the no-acked-bytes-lost invariant), the
    crashed kernel is abandoned, and a fresh audited kernel is rebuilt
    from the snapshot and driven through verification reads — so the
    whole restart path runs under the full invariant audit.
    """
    from repro.os.kernel import Kernel

    MB = 1 << 20
    rng = random.Random(seed)
    kernel = Kernel(memory_bytes=memory_mb * MB, cross_enabled=True,
                    audit=True, faults=faults, qos=qos)
    inode = kernel.create_file("/stress", file_mb * MB)
    bs = kernel.config.block_size

    has_durable = faults is not None and faults.durable

    def worker(tid: int):
        from repro.os.crossos import CacheInfo
        file = kernel.vfs.open_sync("/stress")
        for _ in range(steps):
            op = rng.random()
            offset = rng.randrange(0, inode.size - bs)
            nbytes = rng.choice((bs, 4 * bs, 32 * bs, 128 * bs))
            if op < 0.45:
                yield from kernel.vfs.read(file, offset, nbytes)
            elif op < 0.65:
                info = CacheInfo(offset=offset, nbytes=nbytes)
                yield from kernel.cross.readahead_info(file, info)
                if rng.random() < 0.5:
                    yield info.completion
            elif op < 0.75:
                yield from kernel.vfs.readahead(file, offset, nbytes)
            elif op < 0.85:
                yield from kernel.vfs.write(file, offset, nbytes)
            elif op < 0.95:
                yield from kernel.vfs.fadvise(file, "dontneed", offset,
                                              nbytes)
            else:
                yield from kernel.vfs.fincore(file, offset, nbytes)
            if rng.random() < 0.2:
                yield kernel.sim.timeout(rng.uniform(0.0, 50.0))

    def worker_durable(tid: int):
        # Durable-damage mix: like worker(), plus fsync — flush
        # barriers are what turn persistence accounting into an
        # invariant worth auditing.  A separate closure so runs under
        # the pre-existing presets stay byte-identical.
        from repro.os.crossos import CacheInfo
        file = kernel.vfs.open_sync("/stress")
        for _ in range(steps):
            op = rng.random()
            offset = rng.randrange(0, inode.size - bs)
            nbytes = rng.choice((bs, 4 * bs, 32 * bs, 128 * bs))
            if op < 0.40:
                yield from kernel.vfs.read(file, offset, nbytes)
            elif op < 0.55:
                info = CacheInfo(offset=offset, nbytes=nbytes)
                yield from kernel.cross.readahead_info(file, info)
                if rng.random() < 0.5:
                    yield info.completion
            elif op < 0.65:
                yield from kernel.vfs.readahead(file, offset, nbytes)
            elif op < 0.80:
                yield from kernel.vfs.write(file, offset, nbytes)
            elif op < 0.87:
                yield from kernel.vfs.fsync(file)
            elif op < 0.95:
                yield from kernel.vfs.fadvise(file, "dontneed", offset,
                                              nbytes)
            else:
                yield from kernel.vfs.fincore(file, offset, nbytes)
            if rng.random() < 0.2:
                yield kernel.sim.timeout(rng.uniform(0.0, 50.0))

    make_worker = worker_durable if has_durable else worker
    for tid in range(nthreads):
        kernel.sim.process(make_worker(tid), name=f"stress[{tid}]")

    if faults is not None and faults.crash is not None:
        return _finish_stress_crash(kernel, seed, faults,
                                    memory_mb * MB, steps, nthreads)

    kernel.sim.run()
    auditor = kernel.auditor
    auditor.check_now(kernel)
    kernel.shutdown()  # drains + final_check
    summary = {
        "seed": seed,
        "sim_time_us": kernel.sim.now,
        "read_bytes": kernel.device.stats.read_bytes,
        "mirror_checks": auditor.mirror_checks,
        "warnings": list(auditor.warnings),
    }
    if kernel.fault_engine is not None:
        summary["faults"] = kernel.device.stats.fault_summary()
        degrade = kernel.device.degrade
        if degrade is not None:
            summary["degrade_transitions"] = degrade.transitions
    if kernel.qos is not None:
        summary["qos"] = kernel.qos.snapshot()
        summary["reroutes"] = kernel.device.stats.reroutes
    if has_durable and kernel.durable is not None:
        summary["durable"] = kernel.durable.summary()
    return summary


def _finish_stress_crash(kernel, seed: int, faults, memory_bytes: int,
                         steps: int, nthreads: int) -> dict:
    """Crash-restart tail of :func:`run_stress` (crash specs only).

    Cuts the run at the seed-derived crash instant, snapshots the
    persisted remnants (which itself checks the acked-bytes invariant),
    abandons the crashed kernel — it is mid-flight, so neither
    ``check_now`` nor ``final_check`` may run on it — and rebuilds a
    fresh audited kernel from the snapshot, driving deterministic
    verification reads over the restored file.
    """
    from repro.os.kernel import Kernel
    from repro.sim.crash import restore_into, take_snapshot
    from repro.sim.faults import crash_time_us

    crash_t = crash_time_us(faults)
    kernel.sim.run(until=crash_t)
    snapshot = take_snapshot(kernel)
    crashed_faults = kernel.device.stats.fault_summary()

    restarted = Kernel(memory_bytes=memory_bytes, cross_enabled=True,
                       audit=True)
    restore_into(restarted, snapshot)
    remnant = snapshot.files["/stress"]
    bs = restarted.config.block_size

    def verifier(tid: int):
        from repro.os.crossos import CacheInfo
        vrng = random.Random((seed << 8) ^ (tid * 0x9E37 + 1))
        file = restarted.vfs.open_sync("/stress")
        for _ in range(max(4, steps // 2)):
            offset = vrng.randrange(0, remnant.size - bs)
            nbytes = vrng.choice((bs, 4 * bs, 32 * bs))
            if vrng.random() < 0.3:
                info = CacheInfo(offset=offset, nbytes=nbytes)
                yield from restarted.cross.readahead_info(file, info)
                yield info.completion
            yield from restarted.vfs.read(file, offset, nbytes)

    for tid in range(nthreads):
        restarted.sim.process(verifier(tid), name=f"verify[{tid}]")
    restarted.sim.run()
    auditor = restarted.auditor
    auditor.check_now(restarted)
    restarted.shutdown()  # drains + final_check
    return {
        "seed": seed,
        "sim_time_us": restarted.sim.now,
        "read_bytes": restarted.device.stats.read_bytes,
        "mirror_checks": auditor.mirror_checks,
        "warnings": list(auditor.warnings),
        "faults": crashed_faults,
        "durable": snapshot.durable,
        "crash": {
            "time_us": round(crash_t, 3),
            "lost_dirty_pages": snapshot.lost_dirty_pages,
            "damaged_blocks": sum(r.invalid_blocks()
                                  for r in snapshot.files.values()),
            "resolution": snapshot.resolution,
        },
    }
