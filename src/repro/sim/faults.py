"""Deterministic fault injection for the storage layer.

CrossPrefetch's pitch is that cross-layered prefetching stays ahead of
demand I/O *under pressure* — congested queues, tail-latency storms,
flaky remote fabrics (§4.4, §5, Fig. 8a).  This module turns every
experiment into a resilience experiment: a :class:`FaultEngine` attaches
to a :class:`~repro.storage.device.StorageDevice` and perturbs requests
with pluggable fault models, while the device/VFS stack (retry with
capped exponential backoff, prefetch deadlines, graceful degradation)
absorbs the damage.

Determinism is the whole design.  Fault schedules are derived from a
seed, never from wall clock or request timing:

* **Window tracks** (:class:`_Windows`) pre-generate an infinite lazy
  schedule of (start, end, magnitude) windows from a per-model
  ``random.Random`` stream.  The k-th window is a pure function of the
  seed; queries merely advance a cursor monotonically with simulated
  time, so the schedule is identical no matter how often or when the
  device asks.
* **Per-request decisions** (transient errors, latency spikes, fabric
  drops) hash a monotone request ordinal with a SplitMix64-style mixer
  (:func:`_unit`), so the n-th request's fate is a pure function of
  ``(seed, n)`` — independent of window-query interleaving.

Fault models (each optional, all composable):

* ``storms``   — tail-latency storm windows (access-latency multiplier)
  plus isolated per-request latency spikes;
* ``errors``   — transient read/write failures with error codes;
* ``bandwidth``— degraded-bandwidth windows (transfer-rate factor);
* ``stalls``   — queue stalls: dispatch frozen for the window;
* ``fabric``   — NVMe-oF drops and partition windows (every request
  fails until the partition heals), tuned to the device RTT when the
  engine is attached to a :class:`~repro.storage.remote.RemoteNVMeDevice`.

Beyond transient faults, three **durable-damage** models feed the
crash-consistency machinery (``repro.storage.durable``,
``repro.sim.crash``, ``docs/robustness.md``):

* ``torn``   — torn writes: at a crash, each un-barriered write record
  is resolved (pure function of ``(seed, record ordinal)``) to fully
  persisted, a persisted byte-prefix, or lost;
* ``wbdrop`` — dropped writeback: background (prefetch-priority)
  writeback attempts fail with a *detected* error, so the flusher keeps
  the pages dirty and ``fsync`` semantics hold by construction;
* ``crash``  — seed-deterministic crash-restart: the run is cut at a
  crash instant, only "persisted" device state survives
  (:func:`repro.sim.crash.take_snapshot`), and a fresh kernel is
  rebuilt from the remnants.

Fault scenarios can be **region-scoped**: ``FaultSpec.region`` limits
every per-request model (errors, storms, bandwidth, fabric) to streams
the device has placed in that region (``StorageDevice.place_stream`` /
``region_of``), leaving co-located streams untouched — the substrate
for the multi-tenant fairness experiments in ``docs/qos.md``.  Queue
stalls remain global (the device has one dispatch queue).  Fabric
faults only strike the primary path (``IORequest.path == 0``); with a
QoS manager attached the device re-routes a fabric-faulted request once
onto a modeled secondary path, which is fault-free but pays
``FabricSpec.secondary_latency_mult`` on access latency.

Public entry points: :func:`make_preset` builds a named
:class:`FaultSpec`; :class:`FaultEngine` (attached via
``StorageDevice.set_fault_engine``) answers :meth:`FaultEngine.decide`
and :meth:`FaultEngine.stall_until`; :class:`DegradeController` is the
hysteretic throttle consumed globally by the device (and per-tenant by
:class:`repro.sim.qos.QosManager`).  The auditor treats all of this as
part of the byte-conservation equation: every failed/aborted/retried
byte the engine causes must show up in ``DeviceStats`` (see
``repro.sim.audit``).

The retry/backoff policy and the prefetch-degradation state machine
(:class:`DegradeController`) live here too, so ``repro.storage.device``
only consumes decisions.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = [
    "CrashSpec",
    "DegradeController",
    "DegradePolicy",
    "DeviceError",
    "DeviceTimeout",
    "DroppedWritebackSpec",
    "FabricError",
    "FaultEngine",
    "FaultSpec",
    "FaultStats",
    "PRESETS",
    "TornWriteSpec",
    "crash_time_us",
    "make_preset",
]

KB = 1 << 10


# -- error types ------------------------------------------------------------


class DeviceError(Exception):
    """A device request failed with an error code (default ``EIO``).

    Raised inside processes waiting on the failed request once the
    retry policy is exhausted (or, for prefetch, the deadline passed).
    """

    code = "EIO"

    def __init__(self, message: str = "", code: Optional[str] = None):
        if code is not None:
            self.code = code
        super().__init__(f"[{self.code}] {message}" if message else self.code)


class DeviceTimeout(DeviceError):
    """A prefetch request exceeded its deadline and was abandoned."""

    code = "ETIMEDOUT"


class FabricError(DeviceError):
    """NVMe-oF fabric drop or partition (remote storage)."""

    code = "ENOTCONN"


# -- fault-model specs ------------------------------------------------------


@dataclass(frozen=True)
class LatencyStormSpec:
    """Tail-latency storms: windows where access latency multiplies,
    plus isolated per-request spikes outside the windows."""

    mean_gap_us: float = 30_000.0       # between storm windows
    mean_duration_us: float = 6_000.0
    multiplier: float = 8.0             # access-latency factor in a storm
    jitter: float = 0.4                 # per-window multiplier jitter
    spike_prob: float = 0.01            # per-request isolated spike
    spike_multiplier: float = 25.0


@dataclass(frozen=True)
class TransientErrorSpec:
    """Transient read/write failures reported after a short latency."""

    read_fail_prob: float = 0.02
    write_fail_prob: float = 0.01
    error_latency_us: float = 60.0      # time until the error is reported


@dataclass(frozen=True)
class BandwidthDegradeSpec:
    """Windows where the transfer channel runs at a fraction of rate."""

    mean_gap_us: float = 25_000.0
    mean_duration_us: float = 10_000.0
    factor: float = 0.25                # bandwidth multiplier in a window


@dataclass(frozen=True)
class QueueStallSpec:
    """Windows where the device dispatches nothing at all."""

    mean_gap_us: float = 40_000.0
    mean_duration_us: float = 2_500.0


@dataclass(frozen=True)
class FabricSpec:
    """NVMe-oF fabric faults: per-request drops + partition windows."""

    drop_prob: float = 0.01
    partition_gap_us: float = 80_000.0
    partition_duration_us: float = 4_000.0
    # Time until a drop/partition is detected and reported.  Attached to
    # a remote device this is raised to a few RTTs automatically.
    error_latency_us: float = 120.0
    # Access-latency multiplier paid by requests re-routed onto the
    # modeled secondary fabric path (longer route, cold transport).
    secondary_latency_mult: float = 2.0


@dataclass(frozen=True)
class TornWriteSpec:
    """Torn writes: how un-barriered write records resolve at a crash.

    Data written to the device but not yet covered by a flush barrier
    (``fsync``) sits in the volatile write cache.  When the machine
    crashes, each such record — in write order, by its global ordinal —
    is resolved deterministically: with ``persist_prob`` it made it to
    media whole, with ``torn_prob`` only a byte-prefix of it did (the
    torn write), and otherwise it is lost entirely.  Without this spec
    a crash loses every un-barriered byte (clean volatile-cache loss).
    """

    persist_prob: float = 0.45
    torn_prob: float = 0.30


@dataclass(frozen=True)
class DroppedWritebackSpec:
    """Dropped writeback: background flusher writes fail before media.

    Only **prefetch-priority** writes (the background flusher) are hit;
    ``fsync`` flushes at blocking priority and is never dropped.  The
    failure is *detected* — the flusher keeps the pages dirty and
    retries on a later pass — so durability invariants hold by
    construction while dirty data stays at risk longer (the window a
    crash exploits).
    """

    drop_prob: float = 0.15
    error_latency_us: float = 40.0      # time until the drop is reported


@dataclass(frozen=True)
class CrashSpec:
    """Seed-deterministic crash-restart.

    The crash instant for self-timed harnesses (``run_stress``) is a
    pure function of the spec seed — see :func:`crash_time_us`.
    Harnesses that pick their own crash point (the crash-point fuzzer,
    the recovery experiment) pass an explicit instant instead and use
    this spec only as the "this scenario crashes" marker.
    """

    mean_crash_us: float = 60_000.0
    min_crash_us: float = 5_000.0


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff, differentiated by request class.

    Blocking I/O retries essentially until the fault clears (the cap is
    a safety bound, not a policy); prefetch I/O gets a couple of cheap
    retries and a hard deadline — a stale prefetch is worthless, and
    abandoning it must clean up in-flight markers rather than wedge the
    readers waiting behind them.
    """

    base_backoff_us: float = 50.0
    backoff_multiplier: float = 2.0
    max_backoff_us: float = 5_000.0
    blocking_retries: int = 1000
    prefetch_retries: int = 2
    prefetch_timeout_us: float = 50_000.0


@dataclass(frozen=True)
class DegradePolicy:
    """The prefetch-degradation state machine's constants.

    Fault pressure is an exponentially-decayed accumulator fed by
    failures and timeouts; levels escalate immediately when pressure
    crosses a threshold and step down one level at a time only after a
    quiet dwell (hysteresis, so the controller never flaps)."""

    halflife_us: float = 4_000.0        # pressure decay half-life
    throttle_threshold: float = 3.0     # level 1: throttled
    pause_threshold: float = 8.0        # level 2: paused
    recover_us: float = 15_000.0        # quiet dwell before stepping down
    recover_factor: float = 0.5         # and pressure below threshold*this


@dataclass(frozen=True)
class FaultSpec:
    """One reproducible fault scenario: seed + models + policies."""

    seed: int = 0
    intensity: float = 1.0
    preset: str = "custom"
    # Restrict per-request faults to streams the device placed in this
    # region (None = device-wide).  Queue stalls stay global.
    region: Optional[int] = None
    storms: Optional[LatencyStormSpec] = None
    errors: Optional[TransientErrorSpec] = None
    bandwidth: Optional[BandwidthDegradeSpec] = None
    stalls: Optional[QueueStallSpec] = None
    fabric: Optional[FabricSpec] = None
    torn: Optional[TornWriteSpec] = None
    wbdrop: Optional[DroppedWritebackSpec] = None
    crash: Optional[CrashSpec] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    degrade: DegradePolicy = field(default_factory=DegradePolicy)

    @property
    def durable(self) -> bool:
        """True when any durable-damage model is active (the kernel then
        attaches persistence accounting — ``repro.storage.durable``)."""
        return self.intensity > 0 and (
            self.torn is not None or self.wbdrop is not None
            or self.crash is not None)

    @property
    def enabled(self) -> bool:
        return self.intensity > 0 and (
            self.storms is not None or self.errors is not None
            or self.bandwidth is not None or self.stalls is not None
            or self.fabric is not None or self.torn is not None
            or self.wbdrop is not None or self.crash is not None)

    def describe(self) -> str:
        models = [name for name in
                  ("storms", "errors", "bandwidth", "stalls", "fabric",
                   "torn", "wbdrop", "crash")
                  if getattr(self, name) is not None]
        scope = "" if self.region is None else f", region={self.region}"
        return (f"{self.preset} (seed={self.seed}, "
                f"intensity={self.intensity:g}, "
                f"models={'+'.join(models) or 'none'}{scope})")


# -- presets ----------------------------------------------------------------


def _p(prob: float, intensity: float) -> float:
    """Scale a per-request probability by intensity, capped sanely."""
    return min(0.5, prob * intensity)


def _gap(gap: float, intensity: float) -> float:
    """More intense -> windows arrive more often."""
    return max(500.0, gap / intensity)


def _mult(mult: float, intensity: float) -> float:
    """More intense -> deeper latency multipliers (1.0 at intensity 0)."""
    return 1.0 + (mult - 1.0) * intensity


def make_preset(name: str, *, seed: int = 0, intensity: float = 1.0,
                region: Optional[int] = None) -> FaultSpec:
    """Build a named fault scenario scaled by ``intensity``.

    ``intensity <= 0`` (or the ``"none"`` preset) returns a disabled
    spec; the kernel then attaches no engine and the run is
    byte-identical to a healthy one.  ``region`` scopes per-request
    faults to streams placed in that device region.
    """
    if name not in PRESETS:
        raise ValueError(
            f"unknown fault preset {name!r}; choose from "
            f"{', '.join(PRESETS)}")
    if name == "none" or intensity <= 0:
        return FaultSpec(seed=seed, intensity=0.0, preset=name)
    i = intensity
    kwargs: dict = {}
    if name in ("storm", "chaos"):
        kwargs["storms"] = LatencyStormSpec(
            mean_gap_us=_gap(30_000.0, i),
            multiplier=_mult(8.0, i),
            spike_prob=_p(0.01, i),
            spike_multiplier=_mult(25.0, i))
        # Mild transient errors ride along so the retry/degradation
        # machinery (not just the latency model) is exercised.
        kwargs["errors"] = TransientErrorSpec(
            read_fail_prob=_p(0.008, i), write_fail_prob=_p(0.004, i))
    if name in ("flaky", "chaos"):
        kwargs["errors"] = TransientErrorSpec(
            read_fail_prob=_p(0.03, i), write_fail_prob=_p(0.015, i))
    if name in ("degraded", "chaos"):
        kwargs["bandwidth"] = BandwidthDegradeSpec(
            mean_gap_us=_gap(25_000.0, i),
            factor=max(0.05, 0.25 / max(1.0, i)))
    if name in ("stall", "chaos"):
        kwargs["stalls"] = QueueStallSpec(mean_gap_us=_gap(40_000.0, i))
    if name in ("fabric", "chaos"):
        kwargs["fabric"] = FabricSpec(
            drop_prob=_p(0.01, i),
            partition_gap_us=_gap(80_000.0, i))
    # Durable-damage presets are deliberately NOT folded into "chaos":
    # the existing transient presets stay byte-identical, and a durable
    # scenario is diagnosable on its own.  "crash" composes all three.
    if name in ("torn", "crash"):
        kwargs["torn"] = TornWriteSpec(
            persist_prob=max(0.15, 0.45 / max(1.0, i)),
            torn_prob=_p(0.30, i))
        kwargs["crash"] = CrashSpec(mean_crash_us=_gap(60_000.0, i))
    if name in ("wbdrop", "crash"):
        kwargs["wbdrop"] = DroppedWritebackSpec(drop_prob=_p(0.15, i))
    return FaultSpec(seed=seed, intensity=i, preset=name,
                     region=region, **kwargs)


PRESETS = ("none", "storm", "flaky", "degraded", "stall", "fabric", "chaos",
           "torn", "wbdrop", "crash")


# -- deterministic schedules ------------------------------------------------


_M64 = (1 << 64) - 1


def _unit(seed: int, salt: int, n: int) -> float:
    """Deterministic hash of (seed, salt, n) to [0, 1).

    SplitMix64-style finalizer; the per-request fault decisions use this
    instead of a shared RNG stream so they cannot be perturbed by how
    often the window tracks are queried.
    """
    x = (seed * 0x9E3779B97F4A7C15
         + salt * 0xBF58476D1CE4E5B9
         + n * 0x94D049BB133111EB) & _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x / 2**64


def crash_time_us(spec: FaultSpec) -> float:
    """Deterministic crash instant for a spec with a crash model.

    A pure function of ``(seed, CrashSpec)`` — self-timed harnesses
    (``run_stress``) crash here; if the workload finishes earlier the
    "crash" lands on an idle machine, which still exercises snapshot +
    restart.  Harnesses that choose their own crash points (the fuzzer)
    ignore this and pass explicit instants.
    """
    if spec.crash is None:
        raise ValueError("spec has no crash model")
    c = spec.crash
    return max(c.min_crash_us,
               c.mean_crash_us * (0.25 + 1.5 * _unit(spec.seed, 31, 1)))


class _Windows:
    """A lazy, deterministic schedule of (start, end, magnitude) windows.

    Gaps and durations are exponentially distributed from a dedicated
    ``random.Random(seed)`` stream; the cursor only moves forward, and
    simulated time is monotone, so the realized schedule is a pure
    function of the seed.
    """

    __slots__ = ("_rng", "_mean_gap", "_mean_dur", "_jitter", "_base_mag",
                 "start", "end", "magnitude", "index")

    def __init__(self, seed: int, mean_gap_us: float, mean_dur_us: float,
                 magnitude: float = 1.0, jitter: float = 0.0):
        self._rng = random.Random(seed)
        self._mean_gap = max(1.0, mean_gap_us)
        self._mean_dur = max(1.0, mean_dur_us)
        self._base_mag = magnitude
        self._jitter = jitter
        self.start = 0.0
        self.end = 0.0
        self.magnitude = magnitude
        self.index = -1
        self._advance(0.0)

    def _advance(self, now: float) -> None:
        rng = self._rng
        while self.end <= now:
            gap = rng.expovariate(1.0 / self._mean_gap)
            duration = max(1.0, rng.expovariate(1.0 / self._mean_dur))
            self.start = self.end + gap
            self.end = self.start + duration
            self.index += 1
            if self._jitter:
                swing = self._jitter * (2.0 * rng.random() - 1.0)
                self.magnitude = max(1.0, self._base_mag * (1.0 + swing))
            else:
                self.magnitude = self._base_mag

    def current(self, now: float) -> Optional[tuple[float, float, int]]:
        """``(magnitude, end, index)`` if ``now`` is inside a window."""
        if now >= self.end:
            self._advance(now)
        if now >= self.start:
            return (self.magnitude, self.end, self.index)
        return None


# -- the engine -------------------------------------------------------------


@dataclass
class FaultStats:
    """What the engine injected (the device's stats count the damage)."""

    decisions: int = 0          # requests inspected
    storm_requests: int = 0     # served inside a latency-storm window
    spikes: int = 0
    error_faults: int = 0
    degraded_requests: int = 0  # served inside a bandwidth window
    stall_windows: int = 0
    fabric_faults: int = 0
    wbdrop_faults: int = 0      # background writeback attempts dropped
    timeouts: int = 0           # prefetch deadlines that fired

    @property
    def injected(self) -> int:
        return (self.spikes + self.error_faults + self.fabric_faults
                + self.wbdrop_faults
                + self.storm_requests + self.degraded_requests)


class FaultDecision(tuple):
    """(exc, fail_latency_us, latency_mult, bandwidth_factor) — plain
    tuple subclass purely for readable reprs in tests."""

    __slots__ = ()


_HEALTHY = (None, 0.0, 1.0, 1.0)


class FaultEngine:
    """Per-device fault oracle: consulted once per dispatched request.

    Attach with :meth:`StorageDevice.set_fault_engine`; a device with no
    engine never calls in here (the healthy path is byte-identical).
    """

    def __init__(self, sim, spec: FaultSpec):
        self.sim = sim
        self.spec = spec
        self.stats = FaultStats()
        self.device = None
        # Learned adaptive policy (None unless the kernel links one):
        # fault-class attribution feeds its per-stream features.  Pure
        # bookkeeping; healthy/no-policy runs never call through it.
        self.adaptive = None
        seed = spec.seed
        self._seed = seed
        self._n = 0
        self._storms = None
        if spec.storms is not None:
            s = spec.storms
            self._storms = _Windows(seed ^ 0x5701, s.mean_gap_us,
                                    s.mean_duration_us, s.multiplier,
                                    s.jitter)
        self._bw = None
        if spec.bandwidth is not None:
            b = spec.bandwidth
            self._bw = _Windows(seed ^ 0xBDB2, b.mean_gap_us,
                                b.mean_duration_us, b.factor)
        self._stalls = None
        if spec.stalls is not None:
            q = spec.stalls
            self._stalls = _Windows(seed ^ 0x57A1, q.mean_gap_us,
                                    q.mean_duration_us)
        self._partitions = None
        self._fabric_latency = 0.0
        if spec.fabric is not None:
            f = spec.fabric
            self._partitions = _Windows(seed ^ 0xFAB0, f.partition_gap_us,
                                        f.partition_duration_us)
            self._fabric_latency = f.error_latency_us
        self._last_stall = -1

    def attach(self, device) -> None:
        """Called by ``StorageDevice.set_fault_engine``.

        On a remote (NVMe-oF) device the fabric error latency is raised
        to a few RTTs — a drop is only *detected* after the transport
        timeout, not instantly."""
        self.device = device
        remote = getattr(device, "remote", None)
        if remote is not None and self.spec.fabric is not None:
            self._fabric_latency = max(self._fabric_latency,
                                       4.0 * remote.rtt)

    # -- per-request oracle ------------------------------------------------

    def decide(self, req, now: float):
        """Fate of one dispatched request.

        Returns ``(exc, fail_latency_us, latency_mult, bw_factor)``;
        ``exc`` non-None means the attempt fails after ``fail_latency``.
        """
        self._n += 1
        n = self._n
        st = self.stats
        st.decisions += 1
        spec = self.spec
        if spec.region is not None and self.device is not None \
                and self.device.region_of(req.stream) != spec.region:
            # Region-scoped scenario: streams placed elsewhere are
            # untouched.  The ordinal still advanced above, so fates
            # stay a pure function of (seed, request ordinal).
            return _HEALTHY
        fabric = spec.fabric
        if fabric is not None and getattr(req, "path", 0) == 0:
            if self._partitions.current(now) is not None:
                st.fabric_faults += 1
                if self.adaptive is not None:
                    self.adaptive.note_fault_class(req.stream,
                                                   "fabric", now)
                return (FabricError(
                    f"fabric partition (window {self._partitions.index})"),
                    self._fabric_latency, 1.0, 1.0)
            if fabric.drop_prob and \
                    _unit(self._seed, 11, n) < fabric.drop_prob:
                st.fabric_faults += 1
                if self.adaptive is not None:
                    self.adaptive.note_fault_class(req.stream,
                                                   "fabric", now)
                return (FabricError("fabric packet drop"),
                        self._fabric_latency, 1.0, 1.0)
        wbdrop = spec.wbdrop
        if wbdrop is not None and req.kind == "write" \
                and req.priority != 0:
            # Background writeback only: priority 0 is BLOCKING (fsync
            # and friends), everything else is flusher/prefetch-class.
            if wbdrop.drop_prob and \
                    _unit(self._seed, 23, n) < wbdrop.drop_prob:
                st.wbdrop_faults += 1
                if self.adaptive is not None:
                    self.adaptive.note_fault_class(req.stream,
                                                   "wbdrop", now)
                return (DeviceError("writeback dropped before media",
                                    code="EIO"),
                        wbdrop.error_latency_us, 1.0, 1.0)
        errors = spec.errors
        if errors is not None:
            prob = (errors.read_fail_prob if req.kind == "read"
                    else errors.write_fail_prob)
            if prob and _unit(self._seed, 13, n) < prob:
                st.error_faults += 1
                if self.adaptive is not None:
                    self.adaptive.note_fault_class(req.stream,
                                                   "error", now)
                return (DeviceError(f"transient {req.kind} failure"),
                        errors.error_latency_us, 1.0, 1.0)
        mult = 1.0
        storms = spec.storms
        if storms is not None:
            window = self._storms.current(now)
            if window is not None:
                mult = window[0]
                st.storm_requests += 1
            if storms.spike_prob and \
                    _unit(self._seed, 17, n) < storms.spike_prob:
                if storms.spike_multiplier > mult:
                    mult = storms.spike_multiplier
                st.spikes += 1
        factor = 1.0
        if self._bw is not None:
            window = self._bw.current(now)
            if window is not None:
                factor = window[0]
                st.degraded_requests += 1
        if mult == 1.0 and factor == 1.0:
            return _HEALTHY
        return (None, 0.0, mult, factor)

    def stall_until(self, now: float) -> float:
        """End of the current queue-stall window, or 0.0 if dispatching."""
        if self._stalls is None:
            return 0.0
        window = self._stalls.current(now)
        if window is None:
            return 0.0
        _mag, end, index = window
        if index != self._last_stall:
            self._last_stall = index
            self.stats.stall_windows += 1
        return end


# -- graceful degradation ---------------------------------------------------


class DegradeController:
    """Prefetch degradation state machine (healthy/throttled/paused).

    Deterministic: pressure is a function of fault events and simulated
    time only.  The device feeds :meth:`note_fault` on failures and
    timeouts and :meth:`note_ok` on completions; consumers (device
    dispatch, Cross-OS submission, CROSS-LIB planning/workers) read
    :meth:`current_level`:

    * level 0 (*healthy*) — full prefetch;
    * level 1 (*throttled*) — relaxed (multi-MB) windows withheld,
      Cross-OS submissions clamped to the conservative cap, prefetch
      in-flight slots halved;
    * level 2 (*paused*) — no new prefetch is planned or dispatched
      until the fault pressure drains.

    Transitions invoke ``on_transition(level, now)`` (the device wires a
    counter + span instant into it) so recovery is observable.
    """

    LEVEL_NAMES = ("healthy", "throttled", "paused")

    def __init__(self, sim, policy: Optional[DegradePolicy] = None,
                 on_transition: Optional[Callable[[int, float], None]]
                 = None):
        self.sim = sim
        self.policy = policy or DegradePolicy()
        self.on_transition = on_transition
        self.level = 0
        self.transitions = 0
        self.pressure = 0.0
        self._stamp = 0.0
        self._last_fault = float("-inf")

    def _decay(self, now: float) -> None:
        dt = now - self._stamp
        if dt > 0.0:
            self.pressure *= 2.0 ** (-dt / self.policy.halflife_us)
            self._stamp = now

    def note_fault(self, now: float, weight: float = 1.0) -> None:
        self._decay(now)
        self.pressure += weight
        self._last_fault = now
        self._update(now)

    def note_ok(self, now: float) -> None:
        self._decay(now)
        self._update(now)

    def current_level(self, now: float) -> int:
        self._decay(now)
        self._update(now)
        return self.level

    def _update(self, now: float) -> None:
        p = self.policy
        new = self.level
        if self.pressure >= p.pause_threshold:
            new = 2
        elif self.pressure >= p.throttle_threshold and new < 1:
            new = 1
        elif new > 0 and now - self._last_fault >= p.recover_us:
            gate = (p.pause_threshold if new == 2
                    else p.throttle_threshold)
            if self.pressure < gate * p.recover_factor:
                new -= 1   # step down one level per quiet update
        if new != self.level:
            self.level = new
            self.transitions += 1
            if self.on_transition is not None:
                self.on_transition(new, now)
