"""Seed-deterministic crash-restart: snapshot persisted state, rebuild.

A crash is modeled as cutting the event loop at an instant ``t``
(``Simulator.run(until=t)``), then asking the persistence ledger
(:class:`~repro.storage.durable.DurableState`) what actually survives:
persisted intervals stay, volatile write-cache records resolve to
persisted / torn / lost (pure function of ``(seed, write ordinal)``),
and every dirty page that never reached the device is gone.

:func:`take_snapshot` freezes that into a :class:`CrashSnapshot` — a
plain-data description of the surviving device contents, one
:class:`FileRemnant` per file.  The crashed kernel is then **abandoned**
(it is mid-flight, so its auditor must never run ``final_check`` on it);
:func:`restore_into` rebuilds the namespace in a *fresh* kernel, after
which recovery runs as an ordinary workload
(:mod:`repro.workloads.lsm.recovery`) and the new kernel can carry a
fresh auditor end to end.

The snapshot itself enforces the first recovery invariant at crash
time: **no acknowledged-durable bytes lost** — every byte a flush
barrier acknowledged must be covered by the resolved surviving
intervals.  A hole raises :class:`~repro.sim.audit.AuditError`
immediately, naming the stream and range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.audit import AuditError
from repro.storage.durable import IntervalSet

__all__ = ["CrashSnapshot", "FileRemnant", "restore_into", "take_snapshot"]


@dataclass
class FileRemnant:
    """What one file looks like on media after the crash."""

    path: str
    size: int
    block_size: int
    persisted: IntervalSet

    @property
    def nblocks(self) -> int:
        return (self.size + self.block_size - 1) // self.block_size

    def covered(self, offset: int, nbytes: int) -> bool:
        """True iff every byte of ``[offset, offset+nbytes)`` survived."""
        return self.persisted.covers(offset, offset + nbytes)

    def covered_prefix(self, offset: int, nbytes: int) -> int:
        return self.persisted.covered_prefix(offset, offset + nbytes)

    def block_valid(self, block: int) -> bool:
        """True iff the (size-clipped) block is fully persisted."""
        start = block * self.block_size
        end = min(start + self.block_size, self.size)
        return end <= start or self.persisted.covers(start, end)

    def invalid_blocks(self) -> int:
        """Blocks with at least one lost byte — what a scrub must find."""
        bs = self.block_size
        bad = 0
        next_uncounted = 0
        for gap_start, gap_end in self.persisted.gaps(0, self.size):
            first = max(gap_start // bs, next_uncounted)
            last = (gap_end - 1) // bs
            if last >= first:
                bad += last - first + 1
                next_uncounted = last + 1
        return bad


@dataclass
class CrashSnapshot:
    """Frozen post-crash device state (plain data, kernel-free)."""

    seed: int
    time_us: float
    block_size: int
    files: dict[str, FileRemnant] = field(default_factory=dict)
    lost_dirty_pages: int = 0
    resolution: dict = field(default_factory=dict)
    durable: dict = field(default_factory=dict)

    def covered(self, path: str, offset: int, nbytes: int) -> bool:
        remnant = self.files.get(path)
        return remnant is not None and remnant.covered(offset, nbytes)

    def block_valid(self, path: str, block: int) -> bool:
        remnant = self.files.get(path)
        return remnant is not None and remnant.block_valid(block)

    def describe(self) -> str:
        bad = sum(r.invalid_blocks() for r in self.files.values())
        return (f"crash@{self.time_us:.0f}us: {len(self.files)} files, "
                f"{self.lost_dirty_pages} dirty pages lost, "
                f"{bad} damaged blocks, "
                f"resolution={self.resolution}")


def take_snapshot(kernel) -> CrashSnapshot:
    """Freeze the surviving device state of a crashed kernel.

    The kernel must carry a persistence ledger (``kernel.durable``,
    attached for any durable-damage fault spec).  The kernel is not
    required to be quiescent — that is the point: call this right after
    ``kernel.run(until=crash_t)`` and then abandon the kernel without
    ``shutdown()``.  Raises :class:`AuditError` if any
    acknowledged-durable byte failed to survive resolution.
    """
    durable = kernel.durable
    if durable is None:
        raise ValueError(
            "kernel has no persistence ledger; crash-restart needs a "
            "durable fault spec (e.g. make_preset('crash', seed=...))")
    resolved, resolution = durable.resolve_crash()
    violations = durable.verify_acked(resolved)
    if violations:
        raise AuditError(
            "crash resolution lost acknowledged-durable bytes:\n  "
            + "\n  ".join(violations))
    vfs = kernel.vfs
    bs = kernel.config.block_size
    snapshot = CrashSnapshot(seed=durable.seed, time_us=kernel.sim.now,
                             block_size=bs, resolution=resolution,
                             durable=durable.summary())
    for path in vfs.paths():
        inode = vfs.lookup(path)
        survived = IntervalSet()
        have = resolved.get(inode.id)
        if have is not None:
            for start, end in have.intersect(0, inode.size):
                survived.add(start, end)
        snapshot.files[path] = FileRemnant(
            path=path, size=inode.size, block_size=bs, persisted=survived)
        snapshot.lost_dirty_pages += inode.cache.dirty_pages
    return snapshot


def restore_into(kernel, snapshot: CrashSnapshot) -> None:
    """Rebuild the crashed namespace in a fresh (healthy) kernel.

    Files come back at their crashed sizes with cold caches; which
    bytes are *valid* stays a snapshot query (the simulator models
    time, not contents).  The fresh kernel is typically built without
    faults and with a fresh auditor, so the whole recovery workload
    runs under the full invariant audit.
    """
    for path in sorted(snapshot.files):
        kernel.create_file(path, snapshot.files[path].size)
