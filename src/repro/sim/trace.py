"""Optional event tracing for simulations.

A :class:`Tracer` records structured events — I/O submissions and
completions, lock acquisitions, prefetch decisions, spans from
:mod:`repro.sim.observe` — with simulated timestamps, so experiments can
be inspected after the fact ("when did the prefetch for block X land
relative to the demand read?").  Tracing is opt-in and costs nothing
when disabled.

Storage is a ring of **preallocated append-only segments**: fixed-size
slot arrays allocated on demand the first time the write cursor enters
them and reused in place forever after.  A record is a single slot store
plus cursor arithmetic — no per-event allocation beyond the event
itself, no deque node churn, and no separately maintained time index.
Events are recorded in nondecreasing time order (simulated time never
goes backward), so :meth:`Tracer.between` binary-searches the ring
directly on the stored events' times: O(log n + matches) per query with
zero bookkeeping on the record path.

Usage::

    tracer = Tracer(capacity=100_000)
    tracer.record(kernel.now, "prefetch", inode=3, start=128, count=64)
    ...
    for event in tracer.between(1_000, 2_000):
        print(event)
    print(tracer.summary())
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterator, Optional

__all__ = ["TraceEvent", "Tracer"]

# Slots per ring segment.  Segments are allocated lazily, so a tracer
# with a large capacity that records few events stays small; the hot
# append path touches one preallocated list the cache already holds.
_SEG_SLOTS = 4096


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str
    attrs: tuple = ()

    def attr(self, name: str, default: Any = None) -> Any:
        for key, value in self.attrs:
            if key == name:
                return value
        return default

    def __str__(self) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs)
        return f"[{self.time:>12.1f}us] {self.kind:<18} {attrs}"


class Tracer:
    """Bounded in-memory event recorder (segmented ring buffer)."""

    def __init__(self, capacity: int = 100_000, enabled: bool = True):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        # Ring geometry: slot s lives in segment s // _SEG_SLOTS at
        # offset s % _SEG_SLOTS.  Segments are preallocated [None]*N
        # lists created the first time the cursor reaches them and
        # reused in place once the ring wraps.
        self._segs: list[Optional[list]] = \
            [None] * ((capacity + _SEG_SLOTS - 1) // _SEG_SLOTS)
        self._head = 0          # slot index of the oldest retained event
        self._size = 0          # retained events
        self._dropped = 0
        self._kind_counts: Counter = Counter()

    def __len__(self) -> int:
        return self._size

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def recorded(self) -> int:
        """Total events ever recorded (retained + dropped)."""
        return self._size + self._dropped

    def record(self, time: float, kind: str, **attrs: Any) -> None:
        if not self.enabled:
            return
        self._kind_counts[kind] += 1
        capacity = self.capacity
        size = self._size
        head = self._head
        if size < capacity:
            slot = head + size
            if slot >= capacity:
                slot -= capacity
            self._size = size + 1
        else:
            # Ring full: the oldest event's slot is recycled in place.
            slot = head
            head += 1
            self._head = 0 if head == capacity else head
            self._dropped += 1
        segs = self._segs
        si = slot // _SEG_SLOTS
        seg = segs[si]
        if seg is None:
            seg = segs[si] = [None] * _SEG_SLOTS
        seg[slot - si * _SEG_SLOTS] = \
            TraceEvent(time, kind, tuple(sorted(attrs.items())))

    def _at(self, index: int) -> TraceEvent:
        """The ``index``-th oldest retained event."""
        slot = self._head + index
        if slot >= self.capacity:
            slot -= self.capacity
        si = slot // _SEG_SLOTS
        return self._segs[si][slot - si * _SEG_SLOTS]

    # -- queries ------------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> Iterator[TraceEvent]:
        at = self._at
        for i in range(self._size):
            event = at(i)
            if kind is None or event.kind == kind:
                yield event

    def between(self, start: float, end: float,
                kind: Optional[str] = None) -> Iterator[TraceEvent]:
        # Times are nondecreasing in ring order; bisect on the events
        # themselves (no side index to maintain on the record path).
        at = self._at
        lo, hi = 0, self._size
        while lo < hi:
            mid = (lo + hi) // 2
            if at(mid).time < start:
                lo = mid + 1
            else:
                hi = mid
        first = lo
        hi = self._size
        while lo < hi:
            mid = (lo + hi) // 2
            if at(mid).time <= end:
                lo = mid + 1
            else:
                hi = mid
        for i in range(first, lo):
            event = at(i)
            if kind is None or event.kind == kind:
                yield event

    def last(self, kind: Optional[str] = None) -> Optional[TraceEvent]:
        at = self._at
        for i in range(self._size - 1, -1, -1):
            event = at(i)
            if kind is None or event.kind == kind:
                return event
        return None

    def count(self, kind: str) -> int:
        return self._kind_counts[kind]

    def summary(self) -> str:
        lines = [f"{self._size} events retained "
                 f"({self._dropped} dropped)"]
        for kind, count in self._kind_counts.most_common():
            lines.append(f"  {kind:<24} {count}")
        return "\n".join(lines)

    def clear(self) -> None:
        # Keep the allocated segments for reuse; only reset the cursor.
        self._head = 0
        self._size = 0
        self._dropped = 0
        self._kind_counts.clear()
