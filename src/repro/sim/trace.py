"""Optional event tracing for simulations.

A :class:`Tracer` records structured events — I/O submissions and
completions, lock acquisitions, prefetch decisions, spans from
:mod:`repro.sim.observe` — with simulated timestamps, so experiments can
be inspected after the fact ("when did the prefetch for block X land
relative to the demand read?").  Tracing is opt-in and costs nothing
when disabled.

Events are recorded in nondecreasing time order (simulated time never
goes backward), which :meth:`Tracer.between` exploits: a kept-sorted
time index makes range queries O(log n + matches) instead of rebuilding
the full time list per call, and the ring drop path is O(1) via a deque
(``list.pop(0)`` used to make every record O(n) once full).

Usage::

    tracer = Tracer(capacity=100_000)
    tracer.record(kernel.now, "prefetch", inode=3, start=128, count=64)
    ...
    for event in tracer.between(1_000, 2_000):
        print(event)
    print(tracer.summary())
"""

from __future__ import annotations

import bisect
from collections import Counter, deque
from dataclasses import dataclass
from itertools import islice
from typing import Any, Deque, Iterator, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str
    attrs: tuple = ()

    def attr(self, name: str, default: Any = None) -> Any:
        for key, value in self.attrs:
            if key == name:
                return value
        return default

    def __str__(self) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs)
        return f"[{self.time:>12.1f}us] {self.kind:<18} {attrs}"


class Tracer:
    """Bounded in-memory event recorder (ring buffer)."""

    def __init__(self, capacity: int = 100_000, enabled: bool = True):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._events: Deque[TraceEvent] = deque()
        # Sorted time index mirroring _events; drops trim it lazily
        # (_stale counts dead leading entries) so record() stays O(1)
        # amortized and between() stays a pure bisect.
        self._times: list[float] = []
        self._stale = 0
        self._dropped = 0
        self._kind_counts: Counter = Counter()

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def recorded(self) -> int:
        """Total events ever recorded (retained + dropped)."""
        return len(self._events) + self._dropped

    def record(self, time: float, kind: str, **attrs: Any) -> None:
        if not self.enabled:
            return
        self._kind_counts[kind] += 1
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self._dropped += 1
            self._stale += 1
            if self._stale >= self.capacity:
                # Amortized compaction: at most one entry copied per drop.
                del self._times[:self._stale]
                self._stale = 0
        self._events.append(
            TraceEvent(time, kind, tuple(sorted(attrs.items()))))
        self._times.append(time)

    # -- queries ------------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> Iterator[TraceEvent]:
        for event in self._events:
            if kind is None or event.kind == kind:
                yield event

    def between(self, start: float, end: float,
                kind: Optional[str] = None) -> Iterator[TraceEvent]:
        times = self._times
        lo = max(bisect.bisect_left(times, start), self._stale)
        hi = bisect.bisect_right(times, end)
        if hi <= lo:
            return
        for event in islice(self._events, lo - self._stale,
                            hi - self._stale):
            if kind is None or event.kind == kind:
                yield event

    def last(self, kind: Optional[str] = None) -> Optional[TraceEvent]:
        for event in reversed(self._events):
            if kind is None or event.kind == kind:
                return event
        return None

    def count(self, kind: str) -> int:
        return self._kind_counts[kind]

    def summary(self) -> str:
        lines = [f"{len(self._events)} events retained "
                 f"({self._dropped} dropped)"]
        for kind, count in self._kind_counts.most_common():
            lines.append(f"  {kind:<24} {count}")
        return "\n".join(lines)

    def clear(self) -> None:
        self._events.clear()
        self._times.clear()
        self._stale = 0
        self._dropped = 0
        self._kind_counts.clear()
