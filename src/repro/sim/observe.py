"""Span-based observability: request lifecycles, Chrome traces, lock profiles.

The paper's headline evidence is *where time goes* — lock-wait
percentages (Table 1), miss orderings (Table 3), prefetch-vs-demand
overlap — and scalar counters cannot show it.  This module adds a span
layer on top of :class:`~repro.sim.trace.Tracer`: every demand read,
prefetch, writeback, lock wait, and device request gets a span with a
begin/end in simulated µs, a subsystem category, an optional parent, and
free-form attributes.

Three consumers:

* :func:`export_chrome_trace` writes the span stream as Chrome/Perfetto
  ``trace_event`` JSON — load it in ``chrome://tracing`` or
  https://ui.perfetto.dev to scrub through a run;
* :class:`ContentionProfile` aggregates lock wait/hold spans into
  per-category histograms and reproduces Table 1's "time on locks %"
  directly from spans (it must agree with
  ``StatsRegistry.lock_wait_fraction`` — both are fed by the same
  grant events);
* :func:`spans_from` reconstructs structured :class:`Span` objects from
  a tracer for ad-hoc analysis.

Tracing is opt-in: when no :class:`Observer` is attached (the default),
instrumentation sites see ``None`` and pay one attribute load.

Usage::

    tracer = Tracer(capacity=1_000_000)
    kernel = Kernel(tracer=tracer, cross_enabled=True)   # wires an Observer
    ... run a workload ...
    export_chrome_trace(tracer, "run.trace.json")
    print(kernel.observer.profile.format_table(busy_time_us))
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from repro.sim.engine import Simulator
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "ContentionProfile",
    "Observer",
    "Span",
    "SpanHandle",
    "export_chrome_trace",
    "profile_from_spans",
    "spans_from",
]

# Tracer event kinds used by the span layer.  Reserved attribute keys are
# underscore-prefixed so span payload attrs (inode=, pages=, ...) cannot
# collide with them.
SPAN_KIND = "span"
INSTANT_KIND = "instant"
_RESERVED = ("_cat", "_name", "_begin", "_id", "_parent")


@dataclass(frozen=True)
class Span:
    """One completed span, reconstructed from the tracer stream."""

    id: int
    parent: Optional[int]
    category: str
    name: str
    begin: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.begin


class SpanHandle:
    """An open span; call :meth:`end` (or use as a context manager)."""

    __slots__ = ("observer", "id", "parent", "category", "name",
                 "begin", "attrs", "_open")

    def __init__(self, observer: "Observer", span_id: int,
                 parent: Optional[int], category: str, name: str,
                 begin: float, attrs: Dict[str, Any]):
        self.observer = observer
        self.id = span_id
        self.parent = parent
        self.category = category
        self.name = name
        self.begin = begin
        self.attrs = attrs
        self._open = True

    def end(self, **attrs: Any) -> None:
        """Close the span at the current simulated time."""
        if not self._open:
            return
        self._open = False
        if attrs:
            self.attrs.update(attrs)
        self.observer._emit(self.category, self.name, self.begin,
                            self.id, self.parent, self.attrs)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.end()


class _Histogram:
    """Log2-bucketed duration histogram (µs)."""

    # Bucket upper bounds in µs; the last bucket is open-ended.
    BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
              512.0, 1024.0, 4096.0, 16384.0, 65536.0)

    __slots__ = ("counts", "overflow")

    def __init__(self):
        self.counts = [0] * len(self.BOUNDS)
        self.overflow = 0

    def add(self, value: float) -> None:
        for i, bound in enumerate(self.BOUNDS):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.overflow

    def to_dict(self) -> Dict[str, int]:
        out = {f"le_{bound:g}us": count
               for bound, count in zip(self.BOUNDS, self.counts)
               if count}
        if self.overflow:
            out["overflow"] = self.overflow
        return out


class _CategoryProfile:
    """Wait/hold aggregates for one lock category."""

    __slots__ = ("category", "waits", "wait_total", "max_wait",
                 "wait_hist", "holds", "hold_total", "max_hold",
                 "hold_hist")

    def __init__(self, category: str):
        self.category = category
        self.waits = 0
        self.wait_total = 0.0
        self.max_wait = 0.0
        self.wait_hist = _Histogram()
        self.holds = 0
        self.hold_total = 0.0
        self.max_hold = 0.0
        self.hold_hist = _Histogram()

    def record_wait(self, waited: float) -> None:
        self.waits += 1
        self.wait_total += waited
        if waited > self.max_wait:
            self.max_wait = waited
        self.wait_hist.add(waited)

    def record_hold(self, held: float) -> None:
        self.holds += 1
        self.hold_total += held
        if held > self.max_hold:
            self.max_hold = held
        self.hold_hist.add(held)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "waits": self.waits,
            "wait_total_us": self.wait_total,
            "max_wait_us": self.max_wait,
            "wait_histogram": self.wait_hist.to_dict(),
            "holds": self.holds,
            "hold_total_us": self.hold_total,
            "max_hold_us": self.max_hold,
            "hold_histogram": self.hold_hist.to_dict(),
        }


class ContentionProfile:
    """Per-category lock contention, aggregated from wait/hold spans.

    ``total_wait`` over every category equals
    ``StatsRegistry.total_lock_wait`` for the same run: both are charged
    at the same lock-grant instants.  ``lock_wait_fraction`` therefore
    reproduces the paper's Table-1 "time on locks %" from spans alone.
    """

    def __init__(self):
        self.categories: Dict[str, _CategoryProfile] = {}

    def _cat(self, category: str) -> _CategoryProfile:
        prof = self.categories.get(category)
        if prof is None:
            prof = _CategoryProfile(category)
            self.categories[category] = prof
        return prof

    def record_wait(self, category: str, waited: float) -> None:
        self._cat(category).record_wait(waited)

    def record_hold(self, category: str, held: float) -> None:
        self._cat(category).record_hold(held)

    @property
    def total_wait(self) -> float:
        return sum(c.wait_total for c in self.categories.values())

    @property
    def total_hold(self) -> float:
        return sum(c.hold_total for c in self.categories.values())

    def lock_wait_fraction(self, busy_time: float) -> float:
        """Fraction of ``busy_time`` lost queued on locks (Table 1)."""
        if busy_time <= 0:
            return 0.0
        return min(1.0, self.total_wait / busy_time)

    def top(self, n: int = 5) -> list:
        """The ``n`` most contended categories by total wait time."""
        ranked = sorted(self.categories.values(),
                        key=lambda c: c.wait_total, reverse=True)
        return ranked[:n]

    def to_dict(self) -> Dict[str, Any]:
        return {name: prof.to_dict()
                for name, prof in sorted(self.categories.items())}

    def format_table(self, busy_time: Optional[float] = None) -> str:
        lines = [f"{'category':<16} {'waits':>8} {'wait us':>12} "
                 f"{'max us':>10} {'holds':>10} {'hold us':>12}"]
        for prof in sorted(self.categories.values(),
                           key=lambda c: c.wait_total, reverse=True):
            lines.append(
                f"{prof.category:<16} {prof.waits:>8} "
                f"{prof.wait_total:>12.1f} {prof.max_wait:>10.1f} "
                f"{prof.holds:>10} {prof.hold_total:>12.1f}")
        total = self.total_wait
        summary = f"total lock wait: {total:.1f} us"
        if busy_time:
            summary += (f" ({100.0 * self.lock_wait_fraction(busy_time):.2f}%"
                        f" of {busy_time:.0f} us busy time)")
        lines.append(summary)
        return "\n".join(lines)


class Observer:
    """The span emitter attached to one simulation.

    Spans flow through the kernel's :class:`Tracer` (so capacity,
    dropping, and kind counts are shared with plain events) while lock
    wait/hold durations are additionally aggregated into
    :attr:`profile` online — ring-buffer drops never distort Table-1
    numbers.
    """

    def __init__(self, sim: Simulator, tracer: Tracer, *,
                 emit_holds: bool = False):
        self.sim = sim
        self.tracer = tracer
        # Lock *hold* spans outnumber everything else; they only enter
        # the timeline when asked for (the profile sees them always).
        self.emit_holds = emit_holds
        self.profile = ContentionProfile()
        self._next_id = 0
        self.spans_emitted = 0

    # -- span API -----------------------------------------------------------

    def begin(self, category: str, name: str,
              parent: Optional[SpanHandle] = None,
              **attrs: Any) -> SpanHandle:
        """Open a span at the current simulated time."""
        self._next_id += 1
        return SpanHandle(self, self._next_id,
                          parent.id if parent is not None else None,
                          category, name, self.sim.now, attrs)

    def complete(self, category: str, name: str, begin: float, *,
                 parent: Optional[int] = None, **attrs: Any) -> None:
        """Record a span that ends now and began at ``begin``."""
        self._next_id += 1
        self._emit(category, name, begin, self._next_id, parent, attrs)

    def instant(self, category: str, name: str, **attrs: Any) -> None:
        """Record a point event (a decision, an eviction, a drop)."""
        if not self.tracer.enabled:
            return
        self.tracer.record(self.sim.now, INSTANT_KIND,
                           _cat=category, _name=name, **attrs)

    # -- lock feed (called by sim.sync via LockStats.observer) ---------------

    def lock_wait(self, category: str, since: float, **attrs: Any) -> None:
        """A waiter queued at ``since`` was granted the lock now."""
        waited = self.sim.now - since
        self.profile.record_wait(category, waited)
        self.complete("lock", category, since, **attrs)

    def lock_hold(self, category: str, since: float, **attrs: Any) -> None:
        """A lock held since ``since`` was released now."""
        held = self.sim.now - since
        self.profile.record_hold(category, held)
        if self.emit_holds:
            self.complete("lock", f"{category}.hold", since, **attrs)

    # -- internals -----------------------------------------------------------

    def _emit(self, category: str, name: str, begin: float,
              span_id: int, parent: Optional[int],
              attrs: Dict[str, Any]) -> None:
        if not self.tracer.enabled:
            return
        self.spans_emitted += 1
        self.tracer.record(self.sim.now, SPAN_KIND,
                           _cat=category, _name=name, _begin=begin,
                           _id=span_id, _parent=parent, **attrs)


# -- reconstruction & export ---------------------------------------------------


def spans_from(tracer: Tracer,
               category: Optional[str] = None) -> Iterator[Span]:
    """Rebuild :class:`Span` objects from a tracer's retained events."""
    for event in tracer.events(SPAN_KIND):
        span = _span_of(event)
        if category is None or span.category == category:
            yield span


def _span_of(event: TraceEvent) -> Span:
    reserved: Dict[str, Any] = {}
    attrs: Dict[str, Any] = {}
    for key, value in event.attrs:
        if key in _RESERVED:
            reserved[key] = value
        else:
            attrs[key] = value
    return Span(id=reserved.get("_id", 0),
                parent=reserved.get("_parent"),
                category=reserved.get("_cat", ""),
                name=reserved.get("_name", ""),
                begin=reserved.get("_begin", event.time),
                end=event.time,
                attrs=attrs)


def profile_from_spans(spans) -> ContentionProfile:
    """Aggregate a span stream into a fresh :class:`ContentionProfile`.

    Only meaningful when the tracer dropped nothing; the live
    ``Observer.profile`` is immune to drops and should be preferred.
    """
    profile = ContentionProfile()
    for span in spans:
        if span.category != "lock":
            continue
        if span.name.endswith(".hold"):
            profile.record_hold(span.name[:-len(".hold")], span.duration)
        else:
            profile.record_wait(span.name, span.duration)
    return profile


def export_chrome_trace(tracer: Tracer, path: str, *,
                        pretty: bool = False) -> Dict[str, Any]:
    """Write the tracer's retained events as Chrome ``trace_event`` JSON.

    Spans become complete ("X") events, instants and legacy flat events
    become instant ("i") events.  Each category gets its own named track
    (tid), so ``chrome://tracing`` shows vfs / pagecache / crossos /
    storage / lock timelines stacked.  Returns a small summary dict.
    """
    events: list = []
    tids: Dict[str, int] = {}

    def tid_of(category: str) -> int:
        tid = tids.get(category)
        if tid is None:
            tid = len(tids) + 1
            tids[category] = tid
        return tid

    n_spans = n_instants = 0
    for event in tracer.events():
        if event.kind == SPAN_KIND:
            span = _span_of(event)
            args = dict(span.attrs)
            if span.parent is not None:
                args["parent_span"] = span.parent
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.begin,
                "dur": max(0.0, span.duration),
                "pid": 0,
                "tid": tid_of(span.category),
                "id": span.id,
                "args": args,
            })
            n_spans += 1
        else:
            if event.kind == INSTANT_KIND:
                attrs = dict(event.attrs)
                cat = attrs.pop("_cat", "trace")
                name = attrs.pop("_name", "instant")
            else:
                cat = "trace"
                name = event.kind
                attrs = dict(event.attrs)
            events.append({
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": event.time,
                "pid": 0,
                "tid": tid_of(cat),
                "args": attrs,
            })
            n_instants += 1

    meta = [{"name": "process_name", "ph": "M", "pid": 0,
             "args": {"name": "repro-sim"}}]
    for category, tid in tids.items():
        meta.append({"name": "thread_name", "ph": "M", "pid": 0,
                     "tid": tid, "args": {"name": category}})

    doc = {"traceEvents": meta + events, "displayTimeUnit": "ms",
           "otherData": {"dropped_events": tracer.dropped}}
    with open(path, "w") as fh:
        # default=str: attr payloads are caller-supplied; a stray object
        # should degrade to its repr, not kill the export.
        json.dump(doc, fh, indent=2 if pretty else None, default=str)
    return {"path": path, "spans": n_spans, "instants": n_instants,
            "dropped": tracer.dropped}
