"""Discrete-event simulation kernel.

This package is the concurrency substrate for the whole reproduction.
The paper's CrossPrefetch runs real threads against a real kernel; Python
cannot reproduce that contention natively, so every "thread" in this repo
is a generator-based simulated process scheduled by :class:`Simulator`,
and every lock is a FIFO-queued simulated lock that accumulates wait time
into a stats registry.  This makes contention deterministic, measurable,
and faithful to the *ordering* semantics of the kernel locks the paper
talks about (cache-tree rw-lock, inode rw-lock, bitmap rw-lock).

Typical usage::

    sim = Simulator()

    def worker(sim, lock):
        yield lock.acquire()
        try:
            yield sim.timeout(5.0)
        finally:
            lock.release()

    lock = Lock(sim, name="demo")
    sim.process(worker(sim, lock))
    sim.process(worker(sim, lock))
    sim.run()
"""

from repro.sim.audit import AuditError, Auditor
from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.observe import (
    ContentionProfile,
    Observer,
    Span,
    SpanHandle,
    export_chrome_trace,
    profile_from_spans,
    spans_from,
)
from repro.sim.stats import Counter, LockStats, StatsRegistry
from repro.sim.sync import Condition, Lock, Queue, RwLock, Semaphore
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "AuditError",
    "Auditor",
    "Condition",
    "ContentionProfile",
    "Counter",
    "Event",
    "Interrupt",
    "Lock",
    "LockStats",
    "Observer",
    "Process",
    "Queue",
    "RwLock",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "Span",
    "SpanHandle",
    "StatsRegistry",
    "TraceEvent",
    "Tracer",
    "Timeout",
    "export_chrome_trace",
    "profile_from_spans",
    "spans_from",
]
