"""Per-tenant QoS: token buckets, fair-share arbitration, re-routing.

PR 4's :class:`~repro.sim.faults.DegradeController` throttles prefetch
*globally*: pressure from one stream's retries withholds relaxed
readahead windows from every other stream, even when their regions of
the device are perfectly healthy.  The paper's Cross-OS design is the
opposite — prefetch resources are arbitrated *per application* (§4.4
per-inode state, §4.7 congestion classes) — so this module makes the
degradation machinery tenant-scoped and adds explicit budgets:

* every open file stream (keyed by inode id, the same key the device
  scheduler uses for sequential-stream detection) is tagged with a
  **tenant**;
* each tenant owns a deterministic **token bucket** (prefetch bytes per
  second), a share of the device's **in-flight prefetch slots**, an
  optional **latency SLO**, and its *own* ``DegradeController``;
* a **weighted-fair arbiter** re-leases a paused tenant's bucket rate
  and prefetch slots to the remaining healthy tenants, and hands them
  back when the tenant recovers (re-leasing is driven purely by
  controller transitions, so it is a deterministic function of the
  fault schedule);
* fabric-faulted requests **re-route** once to a modeled secondary path
  (see ``StorageDevice._submit_resilient``) before entering the backoff
  ladder;
* with the learned adaptive policy attached (``Kernel(adaptive=)``,
  :mod:`repro.crosslib.adaptive`), **SLO violations move weights**: a
  tenant missing its latency SLO earns a capped ``slo_boost``
  multiplier on its fair-share weight (decayed again by violation-free
  reads), so re-leasing favors the tenant that is actually hurting —
  without the policy, violations are counted only, and the share
  arithmetic is bit-identical to the static split.

Everything here is consulted through ``device.qos`` / ``kernel.qos``
``is not None`` guards — with no manager attached, no code in this
module runs and healthy simulations stay byte-identical (the same
contract the tracer, auditor, and fault engine follow).

Invariants the auditor (:mod:`repro.sim.audit`) checks when a manager
is attached:

* Σ per-tenant ``admitted_blocks`` ≡ the ``cross.prefetch_blocks``
  counter (every admitted prefetch block is attributed to exactly one
  tenant);
* token buckets never go negative;
* per-tenant in-flight prefetch counts return to zero at shutdown.

See ``docs/qos.md`` for the tenant model, the bucket math, and the
re-routing state machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.faults import DegradeController, DegradePolicy

__all__ = ["QosManager", "QosSpec", "TenantSpec", "TenantState",
           "TokenBucket"]

KB = 1 << 10
MB = 1 << 20

# Conservative OS-readahead window (blocks) for streams of a throttled
# tenant: 8 blocks = 32 KB, a quarter of the stock 128 KB window.
DEGRADED_RA_BLOCKS = 8


class TokenBucket:
    """Deterministic lazily-refilled token bucket (bytes).

    Refill is a pure function of elapsed simulated time — no background
    process, no wall clock — so runs stay bit-deterministic per seed:
    ``tokens = min(capacity, tokens + (now - stamp) * rate)``.

    The bucket can be *trimmed* but never overdrawn: :meth:`grant`
    returns how many bytes fit, and only subtracts what it granted, so
    ``tokens`` is never negative (an auditor invariant).
    """

    __slots__ = ("rate", "capacity", "tokens", "_stamp")

    def __init__(self, rate: float, capacity: float, now: float = 0.0):
        if rate < 0 or capacity <= 0:
            raise ValueError(
                f"bad bucket: rate={rate}, capacity={capacity}")
        self.rate = rate          # bytes per simulated µs
        self.capacity = capacity  # bytes
        self.tokens = capacity    # start full: cold tenants may burst
        self._stamp = now

    def refill(self, now: float) -> None:
        dt = now - self._stamp
        if dt > 0.0:
            tokens = self.tokens + dt * self.rate
            self.tokens = tokens if tokens < self.capacity \
                else self.capacity
            self._stamp = now

    def set_rate(self, rate: float, now: float) -> None:
        """Re-lease: refill at the old rate up to ``now``, then switch."""
        self.refill(now)
        self.rate = rate

    def grant(self, nbytes: float, now: float) -> float:
        """Admit up to ``nbytes``; returns the granted amount (≥ 0)."""
        self.refill(now)
        granted = nbytes if nbytes <= self.tokens else self.tokens
        if granted > 0.0:
            self.tokens -= granted
        return granted


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a name, a fair-share weight, an optional SLO."""

    name: str
    weight: float = 1.0
    slo_us: Optional[float] = None  # blocking-read latency SLO

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be positive, "
                f"got {self.weight}")
        if self.slo_us is not None and self.slo_us <= 0:
            raise ValueError(
                f"tenant {self.name!r}: slo_us must be positive, "
                f"got {self.slo_us}")


@dataclass(frozen=True)
class QosSpec:
    """The QoS configuration one kernel runs under.

    ``rate_mb_per_s`` is the *total* prefetch byte budget shared by all
    tenants in weight proportion; ``prefetch_slots`` is the total
    in-flight prefetch slot pool (None = the device's own
    ``max_prefetch_in_flight``).  ``burst_us`` sizes each bucket's
    capacity: a tenant may burst its rate × this much time.
    """

    tenants: tuple[TenantSpec, ...] = ()
    rate_mb_per_s: float = 4096.0
    prefetch_slots: Optional[int] = None
    burst_us: float = 25_000.0

    @property
    def enabled(self) -> bool:
        return bool(self.tenants)

    @property
    def rate_bytes_per_us(self) -> float:
        # MB/s == 2^20 bytes per 10^6 µs.
        return self.rate_mb_per_s * MB / 1e6

    @classmethod
    def parse(cls, text: str, **kwargs) -> "QosSpec":
        """Parse a ``--tenants`` spec: ``name[:weight[:slo_us]],...``.

        Examples: ``"A,B"`` (equal weights), ``"A:2,B:1"``,
        ``"latency:1:2500,batch:3"``.
        """
        tenants = []
        seen = set()
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            fields = part.split(":")
            if len(fields) > 3:
                raise ValueError(
                    f"bad tenant spec {part!r}: expected "
                    f"name[:weight[:slo_us]]")
            name = fields[0].strip()
            if name in seen:
                raise ValueError(f"duplicate tenant {name!r}")
            seen.add(name)
            weight = float(fields[1]) if len(fields) > 1 else 1.0
            slo = float(fields[2]) if len(fields) > 2 else None
            tenants.append(TenantSpec(name, weight, slo))
        if not tenants:
            raise ValueError(f"no tenants in spec {text!r}")
        return cls(tenants=tuple(tenants), **kwargs)

    def describe(self) -> str:
        parts = []
        for t in self.tenants:
            s = f"{t.name}:{t.weight:g}"
            if t.slo_us is not None:
                s += f":{t.slo_us:g}us"
            parts.append(s)
        return (f"{','.join(parts)} (rate={self.rate_mb_per_s:g} MB/s, "
                f"slots={self.prefetch_slots or 'device'})")


class TenantState:
    """Mutable runtime state of one tenant inside a :class:`QosManager`."""

    __slots__ = ("spec", "bucket", "controller", "slots", "inflight",
                 "admitted_blocks", "trimmed_blocks", "reroutes",
                 "slo_violations", "faults", "streams", "slo_boost",
                 "slo_clean")

    def __init__(self, spec: TenantSpec, bucket: TokenBucket,
                 controller: DegradeController, slots: int):
        self.spec = spec
        self.bucket = bucket
        self.controller = controller
        self.slots = slots            # effective in-flight prefetch cap
        self.inflight = 0             # prefetch requests on the device
        self.admitted_blocks = 0      # bucket-admitted Cross-OS blocks
        self.trimmed_blocks = 0       # blocks the bucket withheld
        self.reroutes = 0             # secondary-path failovers
        self.slo_violations = 0       # blocking reads past slo_us
        self.faults = 0               # fault events attributed here
        self.streams: set[int] = set()
        # SLO-driven weight multiplier (adaptive policy only): stays at
        # exactly 1.0 without it, so the fair-share arithmetic below is
        # bit-identical to the static weight split.
        self.slo_boost = 1.0
        self.slo_clean = 0            # violation-free reads since bump

    @property
    def name(self) -> str:
        return self.spec.name

    def snapshot(self, now: float) -> dict:
        return {
            "weight": self.spec.weight,
            "level": self.controller.level,
            "state": DegradeController.LEVEL_NAMES[self.controller.level],
            "transitions": self.controller.transitions,
            "rate_bytes_per_us": self.bucket.rate,
            "tokens": self.bucket.tokens,
            "slots": self.slots,
            "slo_boost": self.slo_boost,
            "inflight": self.inflight,
            "admitted_blocks": self.admitted_blocks,
            "trimmed_blocks": self.trimmed_blocks,
            "reroutes": self.reroutes,
            "slo_violations": self.slo_violations,
            "faults": self.faults,
            "streams": len(self.streams),
        }


class QosManager:
    """Per-kernel tenant registry, fair-share arbiter, and re-leaser.

    Public entry points (everything the rest of the stack calls):

    * :meth:`register_stream` — tag a stream (inode id) with a tenant
      (round-robin over the spec's tenants when none is named);
    * :meth:`level_of` / :meth:`window_cap` — per-tenant degradation
      level, consulted by Cross-OS admission, CROSS-LIB planning and
      workers, and the VFS readahead clamp *instead of* the global
      controller;
    * :meth:`trim_runs` — token-bucket admission for a Cross-OS
      prefetch submission (block-granular);
    * :meth:`can_dispatch` / :meth:`note_dispatch` /
      :meth:`note_complete` — per-tenant in-flight slot gate used by
      the device's prefetch picker;
    * :meth:`note_fault` / :meth:`note_ok` / :meth:`note_reroute` /
      :meth:`note_latency` — completion feeds from the device.
    """

    def __init__(self, sim, spec: QosSpec,
                 policy: Optional[DegradePolicy] = None,
                 registry=None):
        if not spec.enabled:
            raise ValueError("QosSpec has no tenants")
        self.sim = sim
        self.spec = spec
        self.registry = registry
        self.device = None
        # Learned adaptive policy (set by the kernel when both are
        # attached).  While present, SLO violations *move* tenant
        # weights via slo_boost instead of only being counted.
        self.adaptive = None
        self._policy = policy or DegradePolicy()
        self._stream_tenant: dict[int, TenantState] = {}
        self._rr = 0
        total_w = sum(t.weight for t in spec.tenants)
        rate = spec.rate_bytes_per_us
        slots = spec.prefetch_slots or 4
        self._total_slots = slots
        self.tenants: dict[str, TenantState] = {}
        for t in spec.tenants:
            share = t.weight / total_w
            bucket = TokenBucket(rate * share,
                                 max(1.0, rate * share * spec.burst_us))
            controller = DegradeController(
                sim, self._policy,
                on_transition=self._make_transition_hook(t.name))
            self.tenants[t.name] = TenantState(
                t, bucket, controller, max(1, round(slots * share)))

    # -- wiring ------------------------------------------------------------

    def attach_device(self, device) -> None:
        """Called by ``StorageDevice.set_qos``; adopts the device's
        prefetch slot pool when the spec did not fix one."""
        self.device = device
        if self.spec.prefetch_slots is None:
            self._total_slots = device.max_prefetch_in_flight
            self._rebalance(self.sim.now)

    def _make_transition_hook(self, name: str):
        def on_transition(level: int, now: float) -> None:
            # Re-lease budgets on every state change, then export.
            self._rebalance(now)
            registry = self.registry
            if registry is not None:
                registry.count("qos.degrade_transitions")
                observer = registry.observer
                if observer is not None:
                    observer.instant(
                        "qos", "tenant_degrade", tenant=name,
                        level=level,
                        state=DegradeController.LEVEL_NAMES[level])
        return on_transition

    # -- registration ------------------------------------------------------

    def register_stream(self, stream: int,
                        tenant: Optional[str] = None) -> TenantState:
        """Tag ``stream`` (an inode id) with a tenant.

        Unnamed registrations round-robin across the spec's tenants in
        declaration order — deterministic because stream creation order
        is deterministic.  Re-registering moves the stream.
        """
        if tenant is None:
            names = list(self.tenants)
            tenant = names[self._rr % len(names)]
            self._rr += 1
        state = self.tenants.get(tenant)
        if state is None:
            raise KeyError(f"unknown tenant {tenant!r}; "
                           f"spec has {', '.join(self.tenants)}")
        previous = self._stream_tenant.get(stream)
        if previous is not None:
            previous.streams.discard(stream)
        self._stream_tenant[stream] = state
        state.streams.add(stream)
        return state

    def tenant_of(self, stream: int) -> Optional[TenantState]:
        return self._stream_tenant.get(stream)

    def _tenant_or_register(self, stream: int) -> TenantState:
        state = self._stream_tenant.get(stream)
        if state is None:
            state = self.register_stream(stream)
        return state

    # -- degradation (per-tenant) ------------------------------------------

    def level_of(self, stream: int, now: float) -> int:
        """The stream's tenant's degradation level (0 if unregistered)."""
        state = self._stream_tenant.get(stream)
        if state is None:
            return 0
        return state.controller.current_level(now)

    def window_cap(self, stream: int, now: float) -> Optional[int]:
        """OS-readahead window clamp (blocks) while the stream's tenant
        is degraded; None leaves the stock window untouched."""
        if self.level_of(stream, now) >= 1:
            return DEGRADED_RA_BLOCKS
        return None

    def note_fault(self, stream: int, now: float,
                   weight: float = 1.0) -> None:
        state = self._tenant_or_register(stream)
        state.faults += 1
        state.controller.note_fault(now, weight)

    def note_ok(self, stream: int, now: float) -> None:
        state = self._stream_tenant.get(stream)
        if state is not None:
            state.controller.note_ok(now)

    def note_reroute(self, stream: int) -> None:
        state = self._tenant_or_register(stream)
        state.reroutes += 1
        if self.registry is not None:
            self.registry.count("qos.reroutes")

    def note_latency(self, stream: int, latency_us: float,
                     now: float) -> None:
        """SLO accounting for one completed blocking read.

        Without the adaptive policy, violations are counted only (the
        pre-adaptive behavior, byte-identical).  With it, a violation
        multiplies the tenant's ``slo_boost`` (capped) and re-leases
        budgets immediately, so an SLO-missing tenant takes a larger
        share of rate and prefetch slots; a run of violation-free reads
        decays the boost back toward 1.0, re-leasing again on the way
        down.  Both directions are pure functions of the completion
        stream — deterministic per seed.
        """
        state = self._stream_tenant.get(stream)
        if state is None or state.spec.slo_us is None:
            return
        if latency_us > state.spec.slo_us:
            state.slo_violations += 1
            if self.registry is not None:
                self.registry.count("qos.slo_violations")
            adaptive = self.adaptive
            if adaptive is not None:
                spec = adaptive.spec
                state.slo_clean = 0
                boosted = min(spec.slo_boost_max,
                              state.slo_boost * spec.slo_boost_step)
                if boosted != state.slo_boost:
                    state.slo_boost = boosted
                    if self.registry is not None:
                        self.registry.count("qos.slo_boosts")
                    self._rebalance(now)
        elif self.adaptive is not None and state.slo_boost > 1.0:
            state.slo_clean += 1
            if state.slo_clean >= self.adaptive.spec.slo_clean_reads:
                state.slo_clean = 0
                decayed = state.slo_boost                     * self.adaptive.spec.slo_boost_decay
                state.slo_boost = decayed if decayed > 1.0 else 1.0
                self._rebalance(now)

    # -- fair-share re-leasing ---------------------------------------------

    def _rebalance(self, now: float) -> None:
        """Weighted-fair re-lease of rate and slots.

        Paused tenants (level 2) are excluded from the share: their
        bucket rate drops to zero and their prefetch slots move to the
        healthy tenants, weight-proportionally.  Recovery transitions
        run the same computation in reverse.  With every tenant healthy
        this reproduces the static weight split exactly.
        """
        active = [t for t in self.tenants.values()
                  if t.controller.level < 2]
        if not active:          # everyone paused: keep base shares
            active = list(self.tenants.values())
        # Effective weight = static weight x SLO boost.  The boost is
        # exactly 1.0 unless the adaptive policy moved it, and
        # weight * 1.0 == weight bit-for-bit, so non-adaptive runs
        # reproduce the static split exactly.
        total_w = sum(t.spec.weight * t.slo_boost for t in active)
        rate = self.spec.rate_bytes_per_us
        for t in self.tenants.values():
            if t not in active:
                t.bucket.set_rate(0.0, now)
                t.slots = 0
                continue
            share = t.spec.weight * t.slo_boost / total_w
            t.bucket.set_rate(rate * share, now)
            t.slots = max(1, round(self._total_slots * share))

    # -- admission (Cross-OS submission path) ------------------------------

    def trim_runs(self, stream: int, runs: list, block_size: int,
                  now: float) -> list:
        """Token-bucket admission for one ``readahead_info`` submission.

        Trims ``runs`` (block runs) to the tenant's remaining byte
        budget at block granularity and charges the bucket for exactly
        what was admitted.  The admitted total is attributed to the
        tenant — Σ per-tenant ``admitted_blocks`` must equal the
        ``cross.prefetch_blocks`` counter (auditor invariant).
        """
        state = self._tenant_or_register(stream)
        requested = sum(n for _s, n in runs)
        granted = state.bucket.grant(requested * block_size, now)
        admit = int(granted) // block_size
        if admit >= requested:
            admitted = runs
        elif admit <= 0:
            # Nothing fit: return the unused grant remainder.
            state.bucket.tokens += granted
            admitted = []
        else:
            # Partial: keep whole leading runs, cut the boundary run.
            state.bucket.tokens += granted - admit * block_size
            admitted = []
            left = admit
            for run_start, run_len in runs:
                if left <= 0:
                    break
                n = run_len if run_len <= left else left
                admitted.append((run_start, n))
                left -= n
        taken = sum(n for _s, n in admitted)
        state.admitted_blocks += taken
        state.trimmed_blocks += requested - taken
        if self.registry is not None and requested > taken:
            self.registry.count("qos.trimmed_blocks", requested - taken)
        return admitted

    # -- dispatch gate (device prefetch picker) ----------------------------

    def can_dispatch(self, stream: int, now: float) -> bool:
        """May a prefetch request of this stream enter the device now?"""
        state = self._stream_tenant.get(stream)
        if state is None:
            return True
        if state.controller.current_level(now) >= 2:
            return False
        return state.inflight < state.slots

    def note_dispatch(self, stream: int) -> None:
        state = self._stream_tenant.get(stream)
        if state is not None:
            state.inflight += 1

    def note_complete(self, stream: int) -> None:
        state = self._stream_tenant.get(stream)
        if state is not None:
            state.inflight -= 1

    # -- reporting ---------------------------------------------------------

    @property
    def transitions(self) -> int:
        return sum(t.controller.transitions
                   for t in self.tenants.values())

    def snapshot(self) -> dict:
        """Per-tenant counters for reports / ``extra["qos"]``."""
        now = self.sim.now
        return {name: state.snapshot(now)
                for name, state in self.tenants.items()}
