"""Core discrete-event engine: events, processes, and the scheduler.

The design follows the classic SimPy structure but is deliberately small:
an :class:`Event` is a one-shot future, a :class:`Process` wraps a Python
generator that yields events, and the :class:`Simulator` pops (time, event)
pairs off a heap.  Simulated time is a float in microseconds; the unit is a
convention of this repo, not enforced by the engine.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for illegal engine operations (double-trigger, bad yields)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot future tied to a :class:`Simulator`.

    Events move through three states: pending (just created), triggered
    (scheduled to fire), and processed (callbacks ran).  Processes wait on
    events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value read before event triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        The exception is raised inside every process waiting on the event.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._value = exc
        self._ok = False
        self.sim._schedule(self, delay)
        return self


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class AllOf(Event):
    """Fires when every child event has fired; value is a list of values."""

    __slots__ = ("_pending", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._events:
            if ev.processed:
                self._child_done(ev)
            else:
                ev.callbacks.append(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Fires when the first child event fires; value is that event."""

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf needs at least one event")
        for ev in self._events:
            if ev.processed:
                self._child_done(ev)
                break
            ev.callbacks.append(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
        else:
            self.succeed(ev)


class Process(Event):
    """A simulated thread of control wrapping a generator.

    The generator yields :class:`Event` instances (or other processes); it
    resumes when the yielded event fires, receiving the event's value via
    ``send``.  The process itself is an event that fires with the
    generator's return value, so processes can wait on each other.
    """

    __slots__ = ("gen", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume on the next scheduling round.
        boot = Event(sim)
        boot.succeed()
        boot.callbacks.append(self._resume)
        self._waiting_on = boot

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        kick = Event(self.sim)
        kick.fail(Interrupt(cause))
        kick.callbacks.append(self._resume)

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        sim = self.sim
        # The generator below runs in this process's context; sync
        # primitives and the auditor read ``current_process`` to learn
        # who is acquiring/waiting.  _resume never re-enters (triggers
        # always round-trip through the event heap), so plain
        # set-and-clear is safe.
        sim.current_process = self
        while True:
            try:
                if trigger.ok:
                    target = self.gen.send(trigger.value)
                else:
                    target = self.gen.throw(trigger.value)
            except StopIteration as stop:
                sim.current_process = None
                if sim.auditor is not None:
                    sim.auditor.process_exited(self)
                self.succeed(stop.value)
                return
            except Interrupt:
                # An uncaught interrupt terminates the process normally;
                # this is how daemon workers are shut down at teardown.
                sim.current_process = None
                if sim.auditor is not None:
                    sim.auditor.process_exited(self)
                self.succeed(None)
                return
            except Exception as exc:
                sim.current_process = None
                if sim.auditor is not None:
                    sim.auditor.process_exited(self)
                self.fail(exc)
                return
            if target is None:
                # Fast path: "nothing to wait for" (e.g. an uncontended
                # lock acquire).  Resume immediately without touching
                # the event heap.
                trigger = _IMMEDIATE
                continue
            if not isinstance(target, Event):
                # Synthesise an already-processed failed trigger (never
                # scheduled, so run() won't see it as an orphan failure)
                # and throw it straight back into the generator.
                err = Event(sim)
                err._triggered = True
                err._processed = True
                err._ok = False
                err._value = SimulationError(
                    f"process {self.name!r} yielded non-event: {target!r}"
                )
                err.callbacks = None
                trigger = err
                continue
            if target.processed:
                trigger = target
                continue
            target.callbacks.append(self._resume)
            self._waiting_on = target
            sim.current_process = None
            return


class _ImmediateEvent(Event):
    """Shared already-processed trigger for the yield-None fast path."""

    __slots__ = ()

    def __init__(self):  # noqa: D401 - deliberately bypasses Event init
        self.sim = None
        self.callbacks = None
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = True


_IMMEDIATE = _ImmediateEvent()


class Simulator:
    """The event loop.  ``now`` is the current simulated time (µs)."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._processes: list[Process] = []
        # The process whose generator is executing right now (None
        # between resumptions).  Sync primitives use it to attribute
        # acquires/waits to a simulated thread.
        self.current_process: Optional[Process] = None
        # Optional invariant auditor (repro.sim.audit.Auditor).  When
        # None — the default — every audit site is a single None check.
        self.auditor: Optional[Any] = None

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, gen: Generator, name: str = "") -> Process:
        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        return proc

    # -- running ---------------------------------------------------------

    def step(self) -> None:
        """Process one event off the heap."""
        at, _seq, event = heapq.heappop(self._heap)
        self.now = at
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for cb in callbacks:
                cb(event)
        elif not event.ok:
            # A failed event nobody waited on: surface the error rather
            # than letting it pass silently.
            raise event.value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the final simulated time.  Unhandled process failures
        propagate to the caller.
        """
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                break
            self.step()
        return self.now
