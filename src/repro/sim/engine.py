"""Core discrete-event engine: events, processes, and the scheduler.

The design follows the classic SimPy structure but is deliberately small:
an :class:`Event` is a one-shot future, a :class:`Process` wraps a Python
generator that yields events, and the :class:`Simulator` dispatches
events in (time, sequence) order.  Simulated time is a float in
microseconds; the unit is a convention of this repo, not enforced by the
engine.

Fast-path notes (see docs/performance.md for the full design):

* The scheduler is a **bucket-batching calendar queue**: the instant the
  run loop is currently draining owns a FIFO bucket (``_cur_fifo``), and
  every event scheduled *at exactly that instant* — the delay-0 flood of
  lock grants, condition broadcasts, completion fan-outs — is appended
  to the bucket with one float compare and a list append: no sequence
  increment, no tuple allocation, no heap sift.  Events at any other
  time take the classic ``(time, seq, event)`` binary-heap fallback.
  Event times in this engine are dense and short-horizon (~1.5 events
  share each instant in the Fig. 5 sweep), which is exactly the regime
  where the bucket absorbs most scheduling traffic.
* Dispatch is **batched per instant**: the run loop advances the clock
  once per distinct time, drains every heap event at that time, then
  drains the bucket — including same-instant wakeups appended *during*
  the drain — without re-popping the heap.  Heap events at an instant
  always carry lower sequence numbers than bucket events (the bucket
  only accepts events scheduled while the instant is live), so dispatch
  order is bit-identical to a single global ``(time, seq)`` heap.
* ``Event.callbacks`` is lazily allocated — ``None`` until the first
  waiter registers, a *bare callable* while there is exactly one, and a
  list only from the second waiter on.  Most events in an experiment
  run are timeouts that exactly one process waits on, and a large
  minority (immediate lock grants, fire-and-forget device completions)
  are never waited on at all; skipping the list allocation per wait is
  worth ~10% of raw engine throughput.  External code must use
  :meth:`Event.add_callback` rather than appending to the attribute.
* Timeouts are pooled per simulator.  A timeout is recycled in the run
  loop only when the engine holds the *only* remaining reference
  (checked with ``sys.getrefcount``), so user code that keeps a yielded
  timeout alive — ``AllOf``/``AnyOf`` children, the device's stored
  completion events, tests poking at ``.value`` — keeps an untouched
  object.  Recycled timeouts are reissued by :meth:`Simulator.timeout`
  with a fresh sequence position, preserving deterministic FIFO
  ordering exactly as if a new object had been allocated.
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]

# Timeout recycling needs CPython reference counts; on other runtimes
# the pool simply never fills and every timeout is freshly allocated.
_getrefcount = getattr(sys, "getrefcount", None)

_TIMEOUT_POOL_CAP = 512


class SimulationError(Exception):
    """Raised for illegal engine operations (double-trigger, bad yields)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot future tied to a :class:`Simulator`.

    Events move through three states: pending (just created), triggered
    (scheduled to fire), and processed (callbacks ran).  Processes wait on
    events by yielding them.  ``callbacks`` is ``None`` both before the
    first waiter registers and after the event is processed; use
    :meth:`add_callback` to register.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value read before event triggered")
        return self._value

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event is processed.

        ``callbacks`` holds ``None`` (no waiters), a bare callable (one
        waiter — the overwhelmingly common case, so no list is
        allocated), or a list of callables.
        """
        if self._processed:
            raise SimulationError("callback added to already-processed event")
        callbacks = self.callbacks
        if callbacks is None:
            self.callbacks = fn
        elif type(callbacks) is list:
            callbacks.append(fn)
        else:
            self.callbacks = [callbacks, fn]

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        sim = self.sim
        at = sim.now + delay
        if at == sim._cur_at:
            # Same-instant wakeup while that instant is being drained:
            # join the live bucket, no heap traffic.
            sim._cur_fifo.append(self)
        else:
            sim._seq += 1
            heappush(sim._heap, (at, sim._seq, self))
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        The exception is raised inside every process waiting on the event.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._value = exc
        self._ok = False
        sim = self.sim
        at = sim.now + delay
        if at == sim._cur_at:
            sim._cur_fifo.append(self)
        else:
            sim._seq += 1
            heappush(sim._heap, (at, sim._seq, self))
        return self


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = None
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.delay = delay
        at = sim.now + delay
        if at == sim._cur_at:
            sim._cur_fifo.append(self)
        else:
            sim._seq += 1
            heappush(sim._heap, (at, sim._seq, self))


class AllOf(Event):
    """Fires when every child event has fired; value is a list of values."""

    __slots__ = ("_pending", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._events:
            if ev._processed:
                self._child_done(ev)
            else:
                ev.add_callback(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(Event):
    """Fires when the first child event fires; value is that event."""

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf needs at least one event")
        for ev in self._events:
            if ev._processed:
                self._child_done(ev)
                break
            ev.add_callback(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
        else:
            self.succeed(ev)


class Process(Event):
    """A simulated thread of control wrapping a generator.

    The generator yields :class:`Event` instances (or other processes); it
    resumes when the yielded event fires, receiving the event's value via
    ``send``.  The process itself is an event that fires with the
    generator's return value, so processes can wait on each other.
    """

    __slots__ = ("gen", "name", "_waiting_on", "_bound_resume")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # Accessing ``self._resume`` builds a fresh bound method each
        # time; the process registers it as a callback once per wait,
        # so cache one instance for its lifetime.
        self._bound_resume = self._resume
        # Bootstrap: resume on the next scheduling round.
        boot = Event(sim)
        boot._triggered = True
        boot.callbacks = self._bound_resume
        sim._schedule(boot, 0.0)
        self._waiting_on: Optional[Event] = boot

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None:
            callbacks = target.callbacks
            if type(callbacks) is list:
                try:
                    callbacks.remove(self._bound_resume)
                except ValueError:
                    pass
            elif callbacks == self._bound_resume:
                target.callbacks = None
        self._waiting_on = None
        kick = Event(self.sim)
        kick.fail(Interrupt(cause))
        kick.callbacks = self._bound_resume

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        sim = self.sim
        gen = self.gen
        # The generator below runs in this process's context; sync
        # primitives and the auditor read ``current_process`` to learn
        # who is acquiring/waiting.  _resume never re-enters (triggers
        # always round-trip through the scheduler), so plain
        # set-and-clear is safe.
        sim.current_process = self
        while True:
            try:
                if trigger._ok:
                    target = gen.send(trigger._value)
                else:
                    target = gen.throw(trigger._value)
            except StopIteration as stop:
                sim.current_process = None
                if sim.auditor is not None:
                    sim.auditor.process_exited(self)
                self.succeed(stop.value)
                return
            except Interrupt:
                # An uncaught interrupt terminates the process normally;
                # this is how daemon workers are shut down at teardown.
                sim.current_process = None
                if sim.auditor is not None:
                    sim.auditor.process_exited(self)
                self.succeed(None)
                return
            except Exception as exc:
                sim.current_process = None
                if sim.auditor is not None:
                    sim.auditor.process_exited(self)
                self.fail(exc)
                return
            if target is None:
                # Fast path: "nothing to wait for" (e.g. an uncontended
                # lock acquire).  Resume immediately without touching
                # the scheduler.
                trigger = _IMMEDIATE
                continue
            # Events are the overwhelmingly common yield; probe the
            # attribute instead of paying an isinstance per resume and
            # handle the stray non-event in the except arm.
            try:
                if target._processed:
                    trigger = target
                    continue
            except AttributeError:
                # Synthesise an already-processed failed trigger (never
                # scheduled, so run() won't see it as an orphan failure)
                # and throw it straight back into the generator.
                err = Event(sim)
                err._triggered = True
                err._processed = True
                err._ok = False
                err._value = SimulationError(
                    f"process {self.name!r} yielded non-event: {target!r}"
                )
                trigger = err
                continue
            callbacks = target.callbacks
            if callbacks is None:
                target.callbacks = self._bound_resume
            elif type(callbacks) is list:
                callbacks.append(self._bound_resume)
            else:
                target.callbacks = [callbacks, self._bound_resume]
            self._waiting_on = target
            sim.current_process = None
            return


class _ImmediateEvent(Event):
    """Shared already-processed trigger for the yield-None fast path."""

    __slots__ = ()

    def __init__(self):  # noqa: D401 - deliberately bypasses Event init
        self.sim = None
        self.callbacks = None
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = True


_IMMEDIATE = _ImmediateEvent()


class Simulator:
    """The event loop.  ``now`` is the current simulated time (µs)."""

    __slots__ = ("now", "_heap", "_seq", "_cur_at", "_cur_fifo",
                 "events_processed", "_timeout_pool", "_processes",
                 "current_process", "auditor")

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        # The instant the run loop is currently draining, and its FIFO
        # bucket.  Scheduling at exactly this time appends straight to
        # the live batch; -1.0 means "no drain active" (times are never
        # negative, so the compare cannot false-positive).
        self._cur_at: float = -1.0
        self._cur_fifo: list[Event] = []
        # Events dispatched so far; the perf suite divides this by
        # wall-clock to report simulated events per second.
        self.events_processed = 0
        # Processed Timeout objects with no surviving external
        # references, ready for reissue by timeout().
        self._timeout_pool: list[Timeout] = []
        self._processes: list[Process] = []
        # The process whose generator is executing right now (None
        # between resumptions).  Sync primitives use it to attribute
        # acquires/waits to a simulated thread.
        self.current_process: Optional[Process] = None
        # Optional invariant auditor (repro.sim.audit.Auditor).  When
        # None — the default — every audit site is a single None check.
        self.auditor: Optional[Any] = None

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        at = self.now + delay
        if at == self._cur_at:
            self._cur_fifo.append(event)
        else:
            self._seq += 1
            heappush(self._heap, (at, self._seq, event))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            ev = pool.pop()
            ev._value = value
            ev._ok = True
            ev._triggered = True
            ev._processed = False
            ev.delay = delay
            at = self.now + delay
            if at == self._cur_at:
                self._cur_fifo.append(ev)
            else:
                self._seq += 1
                heappush(self._heap, (at, self._seq, ev))
            return ev
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, gen: Generator, name: str = "") -> Process:
        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        return proc

    # -- running ---------------------------------------------------------

    def step(self) -> None:
        """Process one event in (time, seq) order.

        Test/debug entry point; the hot loop is :meth:`run`.  Outside a
        run the live bucket is always empty (run() flushes it even on
        exceptions), so stepping works on the heap alone.
        """
        at, _seq, event = heappop(self._heap)
        self.now = at
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks is not None:
            if type(callbacks) is list:
                for cb in callbacks:
                    cb(event)
            else:
                callbacks(event)
        elif not event._ok:
            # A failed event nobody waited on: surface the error rather
            # than letting it pass silently.
            raise event._value
        if (
            type(event) is Timeout
            and _getrefcount is not None
            and _getrefcount(event) == 2  # `event` local + getrefcount arg
            and len(self._timeout_pool) < _TIMEOUT_POOL_CAP
        ):
            self._timeout_pool.append(event)

    def _flush_cur_fifo(self, pos: int) -> None:
        """Exception recovery: push undispatched bucket events back onto
        the heap (fresh seqs keep their FIFO order) so a later run()
        resumes exactly where this one stopped."""
        fifo = self._cur_fifo
        at = self._cur_at
        self._cur_at = -1.0
        for event in fifo[pos:]:
            self._seq += 1
            heappush(self._heap, (at, self._seq, event))
        fifo.clear()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the final simulated time.  Unhandled process failures
        propagate to the caller.

        Batched dispatch: the loop advances the clock to a heap event's
        time, marks that instant live, and dispatches.  If the dispatch
        coalesced same-instant wakeups into the bucket, the remaining
        heap events at this time are drained first (they were scheduled
        before the instant went live, so they carry lower seqs), then
        the bucket in FIFO order — including events appended while the
        bucket itself drains.  When nothing lands in the bucket — the
        common case for pure-timeout stretches — the only extra work
        versus a plain heap loop is two slot stores and one truthiness
        check per event.  The engine spends most of its self-time here,
        so locals are hoisted and both loop variants are inlined.
        """
        heap = self._heap
        fifo = self._cur_fifo
        pool = self._timeout_pool
        pop = heappop
        timeout_t = Timeout
        getref = _getrefcount
        cap = _TIMEOUT_POOL_CAP
        processed = 0
        try:
            if until is None:
                # Unbounded run (the normal experiment case): no horizon
                # compare in the loop — it is a per-event cost.
                while heap:
                    at, _seq, event = pop(heap)
                    self.now = at
                    self._cur_at = at
                    while True:
                        processed += 1
                        callbacks = event.callbacks
                        event.callbacks = None
                        event._processed = True
                        if callbacks is not None:
                            if type(callbacks) is list:
                                for cb in callbacks:
                                    cb(event)
                            else:
                                callbacks(event)
                        elif not event._ok:
                            raise event._value
                        if (
                            type(event) is timeout_t
                            and getref is not None
                            and getref(event) == 2
                            and len(pool) < cap
                        ):
                            pool.append(event)
                        # Once wakeups land in the bucket, the rest of
                        # the heap events at this instant must dispatch
                        # before it (lower seq — scheduled before the
                        # instant went live).
                        if fifo and heap and heap[0][0] == at:
                            _at, _s, event = pop(heap)
                            continue
                        break
                    if fifo:
                        pos = 0
                        try:
                            while pos < len(fifo):
                                event = fifo[pos]
                                pos += 1
                                processed += 1
                                callbacks = event.callbacks
                                event.callbacks = None
                                event._processed = True
                                if callbacks is not None:
                                    if type(callbacks) is list:
                                        for cb in callbacks:
                                            cb(event)
                                    else:
                                        callbacks(event)
                                elif not event._ok:
                                    raise event._value
                                if (
                                    type(event) is timeout_t
                                    and getref is not None
                                    # `event` local + getrefcount arg +
                                    # the bucket slot it occupies.
                                    and getref(event) == 3
                                    and len(pool) < cap
                                ):
                                    pool.append(event)
                        except BaseException:
                            self._flush_cur_fifo(pos)
                            raise
                        fifo.clear()
            else:
                while heap:
                    if heap[0][0] > until:
                        self.now = until
                        break
                    at, _seq, event = pop(heap)
                    self.now = at
                    self._cur_at = at
                    while True:
                        processed += 1
                        callbacks = event.callbacks
                        event.callbacks = None
                        event._processed = True
                        if callbacks is not None:
                            if type(callbacks) is list:
                                for cb in callbacks:
                                    cb(event)
                            else:
                                callbacks(event)
                        elif not event._ok:
                            raise event._value
                        if (
                            type(event) is timeout_t
                            and getref is not None
                            and getref(event) == 2
                            and len(pool) < cap
                        ):
                            pool.append(event)
                        if fifo and heap and heap[0][0] == at:
                            _at, _s, event = pop(heap)
                            continue
                        break
                    if fifo:
                        pos = 0
                        try:
                            while pos < len(fifo):
                                event = fifo[pos]
                                pos += 1
                                processed += 1
                                callbacks = event.callbacks
                                event.callbacks = None
                                event._processed = True
                                if callbacks is not None:
                                    if type(callbacks) is list:
                                        for cb in callbacks:
                                            cb(event)
                                    else:
                                        callbacks(event)
                                elif not event._ok:
                                    raise event._value
                                if (
                                    type(event) is timeout_t
                                    and getref is not None
                                    and getref(event) == 3
                                    and len(pool) < cap
                                ):
                                    pool.append(event)
                        except BaseException:
                            self._flush_cur_fifo(pos)
                            raise
                        fifo.clear()
        except BaseException:
            if self._cur_at >= 0.0 and fifo:
                # A dispatch raised before the bucket drain began:
                # everything in the bucket is undispatched.
                self._flush_cur_fifo(0)
            raise
        finally:
            self._cur_at = -1.0
            self.events_processed += processed
        return self.now
