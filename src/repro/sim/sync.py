"""Simulated synchronization primitives with FIFO queueing.

Each primitive takes an optional :class:`~repro.sim.stats.LockStats`
record (or a registry + category) and charges the simulated time a waiter
spends queued to it.  This is how the reproduction measures the paper's
lock-contention numbers: the cache-tree rw-lock, inode rw-lock, and
Cross-OS bitmap rw-lock are all instances of :class:`RwLock` wired to
different stat categories.

When an :class:`~repro.sim.audit.Auditor` is attached to the simulator,
every primitive additionally reports acquire/block/grant/release
transitions so the auditor can maintain its wait-for graph (deadlock
detection), lock-order history, and leak checks.

Fast/slow dispatch: whether a primitive needs the auditor hooks and the
span-observer hooks is known the moment it is constructed — the kernel
wires ``sim.auditor`` and ``registry.attach_observer`` *before* building
any subsystem (see ``Kernel.__init__`` ordering), and both stay fixed
for the kernel's lifetime.  So each primitive selects bound fast or slow
method implementations once in ``__init__`` instead of re-checking
``auditor is not None`` / ``stats.observer is not None`` on every
operation.  The fast variants still record :class:`LockStats` (wait and
hold totals are experiment outputs, not diagnostics); only the auditor
and observer hooks are compiled out.

Usage inside a process generator::

    yield lock.acquire()
    try:
        ...critical section...
    finally:
        lock.release()

or, for the common scoped pattern::

    yield from lock.held(critical_section())
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.stats import LockStats

__all__ = ["Condition", "Lock", "Queue", "RwLock", "Semaphore"]


def _use_fast_path(sim: Simulator, stats: Optional[LockStats]) -> bool:
    """True when neither auditor nor span observer hooks are needed."""
    return sim.auditor is None and (stats is None or stats.observer is None)


class Lock:
    """A mutual-exclusion lock with FIFO granting."""

    __slots__ = ("sim", "name", "stats", "_locked", "_waiters",
                 "_acquired_at", "acquire", "release")

    def __init__(self, sim: Simulator, name: str = "lock",
                 stats: Optional[LockStats] = None):
        self.sim = sim
        self.name = name
        self.stats = stats
        self._locked = False
        self._waiters: Deque[tuple[Event, float]] = deque()
        self._acquired_at = 0.0
        if _use_fast_path(sim, stats):
            self.acquire = self._acquire_fast
            self.release = self._release_fast
        else:
            self.acquire = self._acquire_slow
            self.release = self._release_slow
        if sim.auditor is not None:
            sim.auditor.lock_registered(self)

    @property
    def locked(self) -> bool:
        return self._locked

    # acquire() returns None when granted immediately (yielding None
    # resumes the process with no event-heap traffic) or an event that
    # fires when the lock is eventually granted.

    def _acquire_fast(self) -> Optional[Event]:
        if not self._locked:
            self._locked = True
            self._acquired_at = self.sim.now
            stats = self.stats
            if stats is not None:
                stats.acquisitions += 1
            return None
        ev = Event(self.sim)
        self._waiters.append((ev, self.sim.now))
        return ev

    def _release_fast(self) -> None:
        if not self._locked:
            raise SimulationError(f"release of unheld lock {self.name!r}")
        sim = self.sim
        stats = self.stats
        if stats is not None:
            stats.total_hold += sim.now - self._acquired_at
        if self._waiters:
            ev, enqueued = self._waiters.popleft()
            self._acquired_at = sim.now
            if stats is not None:
                stats.record_acquire(sim.now - enqueued)
            ev.succeed()
        else:
            self._locked = False

    def _acquire_slow(self) -> Optional[Event]:
        if not self._locked:
            self._locked = True
            self._acquired_at = self.sim.now
            if self.stats is not None:
                self.stats.record_acquire(0.0)
            if self.sim.auditor is not None:
                self.sim.auditor.lock_acquired(self)
            return None
        ev = Event(self.sim)
        self._waiters.append((ev, self.sim.now))
        if self.sim.auditor is not None:
            self.sim.auditor.lock_blocked(self, ev)
        return ev

    def _release_slow(self) -> None:
        if not self._locked:
            raise SimulationError(f"release of unheld lock {self.name!r}")
        if self.stats is not None:
            self.stats.record_hold(self.sim.now - self._acquired_at)
            obs = self.stats.observer
            if obs is not None:
                obs.lock_hold(self.stats.category, self._acquired_at,
                              lock=self.name)
        if self.sim.auditor is not None:
            self.sim.auditor.lock_released(self)
        if self._waiters:
            ev, enqueued = self._waiters.popleft()
            self._acquired_at = self.sim.now
            if self.stats is not None:
                self.stats.record_acquire(self.sim.now - enqueued)
                obs = self.stats.observer
                if obs is not None and self.sim.now > enqueued:
                    obs.lock_wait(self.stats.category, enqueued,
                                  lock=self.name)
            if self.sim.auditor is not None:
                self.sim.auditor.lock_granted(self, ev)
            ev.succeed()
        else:
            self._locked = False

    def held(self, body: Generator) -> Generator:
        """Run generator ``body`` while holding the lock."""
        yield self.acquire()
        try:
            result = yield from body
        finally:
            self.release()
        return result


class RwLock:
    """A reader-writer lock, writer-preferring, FIFO within each class.

    Writer preference mirrors the kernel rw-semaphore behaviour that makes
    prefetch inserts (writers on the cache tree) block readers — the
    contention pathology §3.2 of the paper describes.

    Reader *hold* time is recorded per reader grant: grant timestamps are
    queued FIFO and matched to releases.  The aggregate
    ``LockStats.total_hold`` is exact regardless of release order (the
    total is sum-of-releases minus sum-of-grants, which is invariant to
    the pairing); only per-span durations assume FIFO release.
    """

    __slots__ = ("sim", "name", "stats", "_readers", "_writer",
                 "_wait_readers", "_wait_writers", "_writer_since",
                 "_reader_since", "acquire_read", "acquire_write",
                 "release_read", "release_write")

    def __init__(self, sim: Simulator, name: str = "rwlock",
                 stats: Optional[LockStats] = None):
        self.sim = sim
        self.name = name
        self.stats = stats
        self._readers = 0
        self._writer = False
        self._wait_readers: Deque[tuple[Event, float]] = deque()
        self._wait_writers: Deque[tuple[Event, float]] = deque()
        self._writer_since = 0.0
        # Grant times of current read holders (FIFO-paired at release).
        self._reader_since: Deque[float] = deque()
        if _use_fast_path(sim, stats):
            self.acquire_read = self._acquire_read_fast
            self.acquire_write = self._acquire_write_fast
            self.release_read = self._release_read_fast
            self.release_write = self._release_write_fast
        else:
            self.acquire_read = self._acquire_read_slow
            self.acquire_write = self._acquire_write_slow
            self.release_read = self._release_read_slow
            self.release_write = self._release_write_slow
        if sim.auditor is not None:
            sim.auditor.lock_registered(self)

    @property
    def read_locked(self) -> bool:
        return self._readers > 0

    @property
    def write_locked(self) -> bool:
        return self._writer

    # acquire_*() return None when granted immediately, else an event
    # (see Lock).

    def _acquire_read_fast(self) -> Optional[Event]:
        if not self._writer and not self._wait_writers:
            self._readers += 1
            stats = self.stats
            if stats is not None:
                stats.acquisitions += 1
                self._reader_since.append(self.sim.now)
            return None
        ev = Event(self.sim)
        self._wait_readers.append((ev, self.sim.now))
        return ev

    def _acquire_write_fast(self) -> Optional[Event]:
        if not self._writer and self._readers == 0:
            self._writer = True
            self._writer_since = self.sim.now
            stats = self.stats
            if stats is not None:
                stats.acquisitions += 1
            return None
        ev = Event(self.sim)
        self._wait_writers.append((ev, self.sim.now))
        return ev

    def _release_read_fast(self) -> None:
        if self._readers <= 0:
            raise SimulationError(f"release_read of unheld {self.name!r}")
        stats = self.stats
        if stats is not None and self._reader_since:
            stats.total_hold += self.sim.now - self._reader_since.popleft()
        self._readers -= 1
        if self._readers == 0 and (self._wait_writers or self._wait_readers):
            self._grant()

    def _release_write_fast(self) -> None:
        if not self._writer:
            raise SimulationError(f"release_write of unheld {self.name!r}")
        stats = self.stats
        if stats is not None:
            stats.total_hold += self.sim.now - self._writer_since
        self._writer = False
        if self._wait_writers or self._wait_readers:
            self._grant()

    def _acquire_read_slow(self) -> Optional[Event]:
        if not self._writer and not self._wait_writers:
            self._readers += 1
            if self.stats is not None:
                self.stats.record_acquire(0.0)
                self._reader_since.append(self.sim.now)
            if self.sim.auditor is not None:
                self.sim.auditor.lock_acquired(self, mode="read")
            return None
        ev = Event(self.sim)
        self._wait_readers.append((ev, self.sim.now))
        if self.sim.auditor is not None:
            self.sim.auditor.lock_blocked(self, ev, mode="read")
        return ev

    def _acquire_write_slow(self) -> Optional[Event]:
        if not self._writer and self._readers == 0:
            self._writer = True
            self._writer_since = self.sim.now
            if self.stats is not None:
                self.stats.record_acquire(0.0)
            if self.sim.auditor is not None:
                self.sim.auditor.lock_acquired(self, mode="write")
            return None
        ev = Event(self.sim)
        self._wait_writers.append((ev, self.sim.now))
        if self.sim.auditor is not None:
            self.sim.auditor.lock_blocked(self, ev, mode="write")
        return ev

    def _release_read_slow(self) -> None:
        if self._readers <= 0:
            raise SimulationError(f"release_read of unheld {self.name!r}")
        if self.stats is not None and self._reader_since:
            since = self._reader_since.popleft()
            self.stats.record_hold(self.sim.now - since)
            obs = self.stats.observer
            if obs is not None:
                obs.lock_hold(self.stats.category, since, lock=self.name)
        if self.sim.auditor is not None:
            self.sim.auditor.lock_released(self, mode="read")
        self._readers -= 1
        if self._readers == 0:
            self._grant()

    def _release_write_slow(self) -> None:
        if not self._writer:
            raise SimulationError(f"release_write of unheld {self.name!r}")
        if self.stats is not None:
            self.stats.record_hold(self.sim.now - self._writer_since)
            obs = self.stats.observer
            if obs is not None:
                obs.lock_hold(self.stats.category, self._writer_since,
                              lock=self.name, writer=True)
        if self.sim.auditor is not None:
            self.sim.auditor.lock_released(self, mode="write")
        self._writer = False
        self._grant()

    def _granted_after_wait(self, enqueued: float) -> None:
        if self.stats is None:
            return
        self.stats.record_acquire(self.sim.now - enqueued)
        obs = self.stats.observer
        if obs is not None and self.sim.now > enqueued:
            obs.lock_wait(self.stats.category, enqueued, lock=self.name)

    def _grant(self) -> None:
        if self._wait_writers:
            ev, enqueued = self._wait_writers.popleft()
            self._writer = True
            self._writer_since = self.sim.now
            self._granted_after_wait(enqueued)
            if self.sim.auditor is not None:
                self.sim.auditor.lock_granted(self, ev, mode="write")
            ev.succeed()
            return
        while self._wait_readers:
            ev, enqueued = self._wait_readers.popleft()
            self._readers += 1
            self._granted_after_wait(enqueued)
            if self.stats is not None:
                self._reader_since.append(self.sim.now)
            if self.sim.auditor is not None:
                self.sim.auditor.lock_granted(self, ev, mode="read")
            ev.succeed()

    def read_held(self, body: Generator) -> Generator:
        yield self.acquire_read()
        try:
            result = yield from body
        finally:
            self.release_read()
        return result

    def write_held(self, body: Generator) -> Generator:
        yield self.acquire_write()
        try:
            result = yield from body
        finally:
            self.release_write()
        return result


class Semaphore:
    """A counting semaphore; used for device queue-depth slots."""

    __slots__ = ("sim", "name", "capacity", "stats", "_in_use",
                 "_waiters", "acquire", "release")

    def __init__(self, sim: Simulator, capacity: int, name: str = "sem",
                 stats: Optional[LockStats] = None):
        if capacity <= 0:
            raise SimulationError(f"semaphore capacity must be > 0: {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.stats = stats
        self._in_use = 0
        self._waiters: Deque[tuple[Event, float]] = deque()
        if _use_fast_path(sim, stats):
            self.acquire = self._acquire_fast
            self.release = self._release_fast
        else:
            self.acquire = self._acquire_slow
            self.release = self._release_slow
        if sim.auditor is not None:
            sim.auditor.lock_registered(self)

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    # acquire() returns None when a slot is free immediately, else an
    # event.

    def _acquire_fast(self) -> Optional[Event]:
        if self._in_use < self.capacity:
            self._in_use += 1
            stats = self.stats
            if stats is not None:
                stats.acquisitions += 1
            return None
        ev = Event(self.sim)
        self._waiters.append((ev, self.sim.now))
        return ev

    def _release_fast(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle semaphore {self.name!r}")
        if self._waiters:
            ev, enqueued = self._waiters.popleft()
            stats = self.stats
            if stats is not None:
                stats.record_acquire(self.sim.now - enqueued)
            ev.succeed()
        else:
            self._in_use -= 1

    def _acquire_slow(self) -> Optional[Event]:
        if self._in_use < self.capacity:
            self._in_use += 1
            if self.stats is not None:
                self.stats.record_acquire(0.0)
            if self.sim.auditor is not None:
                self.sim.auditor.lock_acquired(self, mode="slot")
            return None
        ev = Event(self.sim)
        self._waiters.append((ev, self.sim.now))
        if self.sim.auditor is not None:
            self.sim.auditor.lock_blocked(self, ev, mode="slot")
        return ev

    def _release_slow(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle semaphore {self.name!r}")
        if self.sim.auditor is not None:
            self.sim.auditor.lock_released(self, mode="slot")
        if self._waiters:
            ev, enqueued = self._waiters.popleft()
            if self.stats is not None:
                self.stats.record_acquire(self.sim.now - enqueued)
                obs = self.stats.observer
                if obs is not None and self.sim.now > enqueued:
                    obs.lock_wait(self.stats.category, enqueued,
                                  lock=self.name)
            if self.sim.auditor is not None:
                self.sim.auditor.lock_granted(self, ev, mode="slot")
            ev.succeed()
        else:
            self._in_use -= 1


class Condition:
    """Broadcast condition variable (no associated mutex; sim is serial)."""

    __slots__ = ("sim", "name", "_waiters")

    def __init__(self, sim: Simulator, name: str = "cond"):
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []

    def wait(self) -> Event:
        ev = Event(self.sim)
        self._waiters.append(ev)
        return ev

    def notify_all(self, value: Any = None) -> None:
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)

    def notify_one(self, value: Any = None) -> None:
        if self._waiters:
            self._waiters.pop(0).succeed(value)


class Queue:
    """Unbounded FIFO queue for producer/consumer processes.

    ``get`` returns an event that fires with the next item; waiting
    consumers are served FIFO.  Used for the CROSS-LIB background
    prefetch-worker request queue.
    """

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: Simulator, name: str = "queue"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self._items:
            return True, self._items.popleft()
        return False, None
