"""Measurement plumbing: counters and lock-contention accounting.

The paper reports "time spent on locks (%)" (Table 1) and cache hit/miss
percentages (Tables 1 and 3).  Every simulated lock feeds a
:class:`LockStats` record in a shared :class:`StatsRegistry`, keyed by a
category string such as ``"cache_tree"`` or ``"inode_bitmap"``, so
experiments can report contention per lock class exactly the way the
paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Counter", "LockStats", "StatsRegistry"]


@dataclass(slots=True)
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass(slots=True)
class LockStats:
    """Aggregate contention record for one lock category."""

    category: str
    acquisitions: int = 0
    contended: int = 0
    total_wait: float = 0.0  # simulated µs spent queued
    total_hold: float = 0.0  # simulated µs the lock was held
    # Optional span observer (repro.sim.observe.Observer); the sync
    # primitives reach it through here to emit lock wait/hold spans.
    observer: Optional[Any] = field(default=None, repr=False, compare=False)

    def record_acquire(self, waited: float) -> None:
        self.acquisitions += 1
        if waited > 0:
            self.contended += 1
            self.total_wait += waited

    def record_hold(self, held: float) -> None:
        self.total_hold += held


class StatsRegistry:
    """Shared home for counters and lock stats inside one simulation."""

    def __init__(self):
        self.locks: Dict[str, LockStats] = {}
        self.counters: Dict[str, Counter] = {}
        # Span observer shared by every subsystem holding this registry
        # (None when tracing is off; see repro.sim.observe).
        self.observer: Optional[Any] = None

    def attach_observer(self, observer: Any) -> None:
        """Wire a span observer into the registry and every lock category."""
        self.observer = observer
        for stats in self.locks.values():
            stats.observer = observer

    def lock_stats(self, category: str) -> LockStats:
        stats = self.locks.get(category)
        if stats is None:
            stats = LockStats(category, observer=self.observer)
            self.locks[category] = stats
        return stats

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = Counter(name)
            self.counters[name] = counter
        return counter

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).add(amount)

    def get(self, name: str, default: float = 0.0) -> float:
        counter = self.counters.get(name)
        return counter.value if counter is not None else default

    @property
    def total_lock_wait(self) -> float:
        return sum(stats.total_wait for stats in self.locks.values())

    def lock_wait_fraction(self, busy_time: float) -> float:
        """Fraction of ``busy_time`` lost to lock waiting (paper Table 1)."""
        if busy_time <= 0:
            return 0.0
        return min(1.0, self.total_lock_wait / busy_time)

    def prefixed(self, prefix: str) -> Dict[str, float]:
        """Counters under ``prefix.``, keyed by the stripped suffix.

        ``registry.prefixed("qos")`` -> ``{"reroutes": 3.0, ...}`` —
        the grouping reports use for per-subsystem counter families.
        """
        dot = prefix if prefix.endswith(".") else prefix + "."
        start = len(dot)
        return {name[start:]: counter.value
                for name, counter in self.counters.items()
                if name.startswith(dot)}

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of every counter plus per-category lock waits."""
        out = {name: counter.value for name, counter in self.counters.items()}
        for category, stats in self.locks.items():
            out[f"lock.{category}.wait"] = stats.total_wait
            out[f"lock.{category}.acquisitions"] = float(stats.acquisitions)
            out[f"lock.{category}.contended"] = float(stats.contended)
        return out
