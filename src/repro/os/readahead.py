"""Linux-style incremental readahead state machine.

This is the stock OS prefetcher the paper's baselines rely on (§2.1):

* incremental window growth, doubling on sequential access up to
  ``ra_pages`` (32 blocks = 128 KB by default — the "static limit" the
  paper attacks);
* window shrink on random access, down to nothing;
* a ``PG_readahead`` marker placed inside the readahead window so a later
  hit on the marked page triggers the *async* readahead of the next
  window;
* ``fadvise(SEQUENTIAL)`` doubles the window cap, ``fadvise(RANDOM)``
  disables readahead entirely.

The state lives per *open file description* (Linux's ``file->f_ra``),
not per inode, so two FDs on one file age independently.

Invariants:

* the window never exceeds :attr:`ReadaheadState.max_window` — the
  fadvise-scaled ``ra_pages`` cap, further clamped by whichever of the
  two per-stream caps is set: ``degraded_cap`` (QoS, while the FD's
  tenant is throttled) and ``adaptive_cap`` (the learned policy layer,
  while the stream classifies temporal/random — see
  :mod:`repro.crosslib.adaptive` and ``docs/prefetching.md``);
* both caps clamp only — they can shrink the window, never grow it —
  and both default to None, leaving the stock §3.1 behavior
  byte-identical when neither subsystem is attached;
* ``prev_end`` always advances to the end of the observed access, even
  when readahead is disabled, so stream-position tracking survives
  fadvise toggles.

Determinism/threading: pure state-machine arithmetic — no simulation
events, no randomness, no locks.  All mutation happens inline on the
calling (simulated) thread's read path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ReadaheadPlan", "ReadaheadState"]


@dataclass
class ReadaheadPlan:
    """What the readahead engine wants read beyond the demand range.

    ``sync_start/sync_count`` extend the blocking read itself;
    ``marker`` is the block on which to set PG_readahead.  ``reason``
    names the state-machine transition that produced the plan
    ("init" | "ramp" | "collapse" | "marker" | "off"), so traces can
    show *why* each readahead was (or was not) issued.
    """

    sync_start: int = 0
    sync_count: int = 0
    marker: Optional[int] = None
    reason: str = "off"


class ReadaheadState:
    """Per-FD readahead window."""

    def __init__(self, ra_pages: int = 32):
        self.ra_pages = ra_pages      # max window, blocks
        self.enabled = True
        self.sequential_hint = False  # fadvise(SEQUENTIAL)
        self.window = 0               # current window size, blocks
        self.prev_end: Optional[int] = None  # block after previous read
        self.async_triggers = 0
        self.sync_expansions = 0
        # Per-stream degradation clamp (blocks).  Set by the VFS from
        # the QoS manager while the FD's tenant is throttled; None
        # leaves the stock window untouched.
        self.degraded_cap: Optional[int] = None
        # Per-stream adaptive clamp (blocks).  Set by the VFS from the
        # learned policy layer while the stream classifies as temporal
        # or random (repro.crosslib.adaptive); None = stock window.
        self.adaptive_cap: Optional[int] = None

    # -- hints ---------------------------------------------------------------

    def set_random(self) -> None:
        self.enabled = False
        self.window = 0

    def set_sequential(self) -> None:
        self.enabled = True
        self.sequential_hint = True

    def set_normal(self) -> None:
        self.enabled = True
        self.sequential_hint = False

    @property
    def max_window(self) -> int:
        cap = self.ra_pages * 2 if self.sequential_hint else self.ra_pages
        if self.degraded_cap is not None and self.degraded_cap < cap:
            cap = self.degraded_cap
        if self.adaptive_cap is not None and self.adaptive_cap < cap:
            cap = self.adaptive_cap
        return cap

    # -- the on-demand algorithm ----------------------------------------------

    def on_demand_miss(self, start: int, count: int,
                       nblocks: int) -> ReadaheadPlan:
        """A demand read missed the cache at ``start``; plan sync readahead.

        Mirrors ``ondemand_readahead``: initial window for a fresh
        sequential stream, doubling for a continuing one, collapse for
        random access.
        """
        plan = ReadaheadPlan()
        if not self.enabled or nblocks <= 0:
            self.prev_end = start + count
            return plan
        # §3.1: the prefetcher works in 32-block batches and deems an
        # access sequential if it lands within that range of the
        # previous one — so short forward strides keep the stream alive.
        sequential = self.prev_end is None and start == 0
        if self.prev_end is not None:
            sequential = 0 <= start - self.prev_end <= self.ra_pages
        if sequential:
            if self.window == 0:
                # get_init_ra_size: 2-4x the request, capped.
                self.window = min(self.max_window, max(4, 2 * count))
                self.sync_expansions += 1
                plan.reason = "init"
            else:
                self.window = min(self.max_window, self.window * 2)
                plan.reason = "ramp"
        else:
            # A truly random miss restarts the stream: no readahead for
            # this access, window collapses (the paper: "initially to 0").
            self.window = 0
            plan.reason = "collapse"
        self.prev_end = start + count
        if self.window > 0:
            ra_start = start + count
            ra_count = min(self.window, max(0, nblocks - ra_start))
            if ra_count > 0:
                plan.sync_start = ra_start
                plan.sync_count = ra_count
                # Marker sits at the start of the back half of the window
                # so the async trigger fires with lead time.
                plan.marker = ra_start + max(0, ra_count - ra_count // 2 - 1)
        return plan

    def on_marker_hit(self, marker: int, nblocks: int) -> ReadaheadPlan:
        """A read touched PG_readahead: plan the next async window."""
        plan = ReadaheadPlan()
        if not self.enabled:
            return plan
        plan.reason = "marker"
        self.window = min(self.max_window, max(self.window * 2, 4))
        ra_start = marker + 1
        ra_count = min(self.window, max(0, nblocks - ra_start))
        if ra_count > 0:
            plan.sync_start = ra_start
            plan.sync_count = ra_count
            plan.marker = ra_start + max(0, ra_count - ra_count // 2 - 1)
            self.async_triggers += 1
        return plan

    def note_sequential_pos(self, start: int, count: int) -> bool:
        """Track position on a fully cached read; returns True if it
        continued the stream (keeps the window warm).

        Uses the same forward-stride tolerance as :meth:`on_demand_miss`:
        a short stride over cached blocks must not kill a window the
        identical stride over a miss would have grown.
        """
        sequential = (self.prev_end is not None
                      and 0 <= start - self.prev_end <= self.ra_pages)
        self.prev_end = start + count
        return sequential
