"""Block bitmaps backed by arrays of 64-bit words.

The per-inode cache-state bitmap is the central Cross-OS data structure
(§4.4 of the paper): one bit per file block, set when the block is
resident in the page cache.  Like the kernel's unsigned-long arrays, the
backing store is a list of 64-bit words, so a range operation touches
O(words in range) — not O(file size) — and the total popcount is
maintained incrementally, making ``count_set()`` O(1).

A 1 TB file at 4 KB blocks is ~268 M bits = 32 MB of words, matching the
paper's memory-cost estimate; experiments here run far smaller.

Hot-path layout: almost every query an experiment issues covers a tiny
window (a 4-block read, a 32-block readahead plan), so the range
operations special-case windows that land in a single 64-bit word, and
:meth:`missing_runs` / :meth:`set_runs` extract runs from one assembled
window integer with bit tricks — cost O(runs), no per-word generator
chain.  Windows wider than ``_WINDOW_LIMIT`` bits fall back to a
streaming per-word scan so whole-file iteration stays O(words).
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["BlockBitmap"]

_WORD = 64
_FULL = (1 << _WORD) - 1

# Run extraction assembles windows up to this many bits into one int;
# beyond it (whole-file scans) the per-word streaming path is used to
# avoid quadratic big-int shifting.
_WINDOW_LIMIT = 4096


def _mask(nbits: int) -> int:
    return (1 << nbits) - 1


class BlockBitmap:
    """A growable bitmap over file blocks.

    ``shift`` coarsens granularity: one bit covers ``2**shift`` blocks
    (the artifact's ``CROSS_BITMAP_SHIFT`` knob).  All public offsets are
    expressed in *blocks*; the class translates to bit positions
    internally.
    """

    __slots__ = ("_words", "_count", "nblocks", "shift")

    def __init__(self, nblocks: int = 0, shift: int = 0):
        if nblocks < 0:
            raise ValueError(f"negative bitmap size: {nblocks}")
        if shift < 0:
            raise ValueError(f"negative bitmap shift: {shift}")
        self._words: list[int] = []
        self._count = 0
        self.nblocks = nblocks
        self.shift = shift

    # -- geometry ---------------------------------------------------------

    def _bit_range(self, start: int, count: int) -> tuple[int, int]:
        """Map a block range to a bit range (first_bit, nbits)."""
        if start < 0 or count < 0:
            raise ValueError(f"bad block range: start={start} count={count}")
        if count == 0:
            return 0, 0
        first = start >> self.shift
        last = (start + count - 1) >> self.shift
        return first, last - first + 1

    @property
    def nbits(self) -> int:
        if self.nblocks == 0:
            return 0
        return ((self.nblocks - 1) >> self.shift) + 1

    def _ensure(self, word_index: int) -> None:
        if word_index >= len(self._words):
            self._words.extend([0] * (word_index + 1 - len(self._words)))

    def resize(self, nblocks: int) -> None:
        """Grow or shrink with the file; shrinking clears truncated bits."""
        if nblocks < 0:
            raise ValueError(f"negative bitmap size: {nblocks}")
        old_bits = self.nbits
        self.nblocks = nblocks
        new_bits = self.nbits
        if new_bits < old_bits:
            self._clear_bits(new_bits, old_bits - new_bits)

    # -- word-level helpers -------------------------------------------------

    def _apply(self, first: int, nbits: int, set_bits: bool) -> None:
        if nbits <= 0:
            return
        words = self._words
        last = first + nbits - 1
        fw = first >> 6
        lw = last >> 6
        if fw == lw:
            # Single-word window: the dominant case for 4 KB-block reads.
            mask = ((1 << nbits) - 1) << (first & 63)
            if set_bits:
                if lw >= len(words):
                    self._ensure(lw)
                before = words[fw]
                after = before | mask
            else:
                if fw >= len(words):
                    return
                before = words[fw]
                after = before & ~mask
            if after != before:
                self._count += after.bit_count() - before.bit_count()
                words[fw] = after
            return
        fb = first & 63
        lb = last & 63
        if set_bits:
            self._ensure(lw)
        elif fw >= len(words):
            return
        for wi in range(fw, lw + 1):
            if not set_bits and wi >= len(words):
                break
            lo = fb if wi == fw else 0
            hi = lb if wi == lw else _WORD - 1
            mask = (_mask(hi - lo + 1)) << lo
            before = words[wi]
            after = (before | mask) if set_bits else (before & ~mask)
            if after != before:
                self._count += after.bit_count() - before.bit_count()
                words[wi] = after

    def _clear_bits(self, first: int, nbits: int) -> None:
        self._apply(first, nbits, set_bits=False)

    # -- mutation ---------------------------------------------------------

    def set_range(self, start: int, count: int) -> None:
        if count <= 0:
            return
        if start < 0:
            raise ValueError(f"bad block range: start={start} count={count}")
        shift = self.shift
        first = start >> shift
        last = (start + count - 1) >> shift
        fw = first >> 6
        if fw == (last >> 6):
            words = self._words
            if fw >= len(words):
                self._ensure(fw)
            mask = ((1 << (last - first + 1)) - 1) << (first & 63)
            before = words[fw]
            after = before | mask
            if after != before:
                self._count += after.bit_count() - before.bit_count()
                words[fw] = after
            return
        self._apply(first, last - first + 1, set_bits=True)

    def clear_range(self, start: int, count: int) -> None:
        if count <= 0:
            return
        if start < 0:
            raise ValueError(f"bad block range: start={start} count={count}")
        shift = self.shift
        first = start >> shift
        last = (start + count - 1) >> shift
        fw = first >> 6
        if fw == (last >> 6):
            words = self._words
            if fw >= len(words):
                return
            mask = ((1 << (last - first + 1)) - 1) << (first & 63)
            before = words[fw]
            after = before & ~mask
            if after != before:
                self._count += after.bit_count() - before.bit_count()
                words[fw] = after
            return
        self._apply(first, last - first + 1, set_bits=False)

    def clear_all(self) -> None:
        self._words = []
        self._count = 0

    # -- queries ----------------------------------------------------------

    def test(self, block: int) -> bool:
        if block < 0:
            raise ValueError(f"negative block: {block}")
        bit = block >> self.shift
        wi = bit >> 6
        if wi >= len(self._words):
            return False
        return bool((self._words[wi] >> (bit & 63)) & 1)

    def _window_bits(self, first: int, nbits: int) -> int:
        """Assemble bits [first, first+nbits) into a small int."""
        if nbits <= 0:
            return 0
        words = self._words
        nwords = len(words)
        fw = first >> 6
        off = first & 63
        last = first + nbits - 1
        if fw == (last >> 6):
            word = words[fw] if fw < nwords else 0
            return (word >> off) & ((1 << nbits) - 1)
        out = 0
        filled = 0
        pos = first
        end = first + nbits
        while pos < end:
            wi = pos >> 6
            off = pos & 63
            take = _WORD - off
            remaining = end - pos
            if take > remaining:
                take = remaining
            word = words[wi] if wi < nwords else 0
            seg = (word >> off) & _mask(take)
            out |= seg << filled
            filled += take
            pos += take
        return out

    def all_set(self, start: int, count: int) -> bool:
        if count <= 0:
            return True
        if start < 0:
            raise ValueError(f"bad block range: start={start} count={count}")
        shift = self.shift
        first = start >> shift
        last = (start + count - 1) >> shift
        nbits = last - first + 1
        mask = (1 << nbits) - 1
        fw = first >> 6
        if fw == (last >> 6):
            words = self._words
            word = words[fw] if fw < len(words) else 0
            return ((word >> (first & 63)) & mask) == mask
        return self._window_bits(first, nbits) == mask

    def any_set(self, start: int, count: int) -> bool:
        if count <= 0:
            return False
        first, nbits = self._bit_range(start, count)
        return self._window_bits(first, nbits) != 0

    def count_set(self, start: Optional[int] = None,
                  count: Optional[int] = None) -> int:
        """Popcount over a bit window (whole bitmap by default, O(1))."""
        if start is None:
            return self._count
        if count is None:
            raise ValueError("count required when start is given")
        if count <= 0:
            return 0
        first, nbits = self._bit_range(start, count)
        return self._window_bits(first, nbits).bit_count()

    def resident_blocks(self, start: int, count: int) -> int:
        """Blocks in [start, start+count) whose covering bit is set.

        With shift == 0 this equals :meth:`count_set`; with a coarser
        shift the result is exact at block granularity.
        """
        if count <= 0:
            return 0
        if self.shift == 0:
            return self.count_set(start, count)
        return sum(run_len for _s, run_len in self.set_runs(start, count))

    # -- run iteration ------------------------------------------------------

    def missing_runs(self, start: int, count: int) -> list[tuple[int, int]]:
        """Return (block_start, block_count) runs NOT covered by set bits.

        This is the gap-finding primitive ``readahead_info`` uses to turn
        a prefetch request into the minimal set of device reads.  The
        body specialises :meth:`_block_runs` for the complement case —
        this is the single hottest bitmap entry point (every read's
        residency check lands here), so it skips the extra call layer.
        """
        if count <= 0:
            return []
        if start < 0:
            raise ValueError(f"bad block range: start={start} count={count}")
        shift = self.shift
        first = start >> shift
        last = (start + count - 1) >> shift
        nbits = last - first + 1
        if nbits > _WINDOW_LIMIT:
            return self._block_runs_streamed(start, count, first, nbits,
                                             want_set=False)
        full = (1 << nbits) - 1
        fw = first >> 6
        if fw == (last >> 6):
            words = self._words
            word = words[fw] if fw < len(words) else 0
            window = ~(word >> (first & 63)) & full
        else:
            window = ~self._window_bits(first, nbits) & full
        if window == 0:
            return []
        if window == full:
            return [(start, count)]
        end_block = start + count
        out = []
        pos = 0
        while window:
            zeros = (window & -window).bit_length() - 1
            pos += zeros
            window >>= zeros
            ones = (~window & (window + 1)).bit_length() - 1
            bit_lo = first + pos
            blk_lo = bit_lo << shift
            if blk_lo < start:
                blk_lo = start
            blk_hi = (bit_lo + ones) << shift
            if blk_hi > end_block:
                blk_hi = end_block
            out.append((blk_lo, blk_hi - blk_lo))
            pos += ones
            window >>= ones
        return out

    def set_runs(self, start: int, count: int) -> list[tuple[int, int]]:
        """Return (block_start, block_count) runs covered by set bits."""
        return self._block_runs(start, count, want_set=True)

    def _block_runs(self, start: int, count: int,
                    want_set: bool) -> list[tuple[int, int]]:
        if count <= 0:
            return []
        if start < 0:
            raise ValueError(f"bad block range: start={start} count={count}")
        shift = self.shift
        first = start >> shift
        last = (start + count - 1) >> shift
        nbits = last - first + 1
        if nbits > _WINDOW_LIMIT:
            return self._block_runs_streamed(start, count, first, nbits,
                                             want_set)
        full = (1 << nbits) - 1
        fw = first >> 6
        if fw == (last >> 6):
            words = self._words
            word = words[fw] if fw < len(words) else 0
            window = (word >> (first & 63)) & full
        else:
            window = self._window_bits(first, nbits)
        if not want_set:
            window = ~window & full
        if window == 0:
            return []
        if window == full:
            return [(start, count)]
        end_block = start + count
        out = []
        pos = 0
        while window:
            zeros = (window & -window).bit_length() - 1
            pos += zeros
            window >>= zeros
            ones = (~window & (window + 1)).bit_length() - 1
            bit_lo = first + pos
            blk_lo = bit_lo << shift
            if blk_lo < start:
                blk_lo = start
            blk_hi = (bit_lo + ones) << shift
            if blk_hi > end_block:
                blk_hi = end_block
            out.append((blk_lo, blk_hi - blk_lo))
            pos += ones
            window >>= ones
        return out

    def _block_runs_streamed(self, start: int, count: int, first: int,
                             nbits: int, want_set: bool
                             ) -> list[tuple[int, int]]:
        """Wide-window fallback: stream runs word by word, O(words)."""
        shift = self.shift
        end_block = start + count
        out = []
        for bit_lo, bit_len in self._bit_runs(first, nbits, want_set):
            blk_lo = bit_lo << shift
            if blk_lo < start:
                blk_lo = start
            blk_hi = (bit_lo + bit_len) << shift
            if blk_hi > end_block:
                blk_hi = end_block
            if blk_hi > blk_lo:
                out.append((blk_lo, blk_hi - blk_lo))
        return out

    def _bit_runs(self, first: int, nbits: int,
                  want_set: bool) -> Iterator[tuple[int, int]]:
        words = self._words
        end = first + nbits
        pos = first
        open_start: Optional[int] = None
        while pos < end:
            wi, off = divmod(pos, _WORD)
            word = words[wi] if wi < len(words) else 0
            if not want_set:
                word = ~word & _FULL
            take = min(_WORD - off, end - pos)
            seg = (word >> off) & _mask(take)
            cursor = 0
            while cursor < take:
                if seg == 0:
                    if open_start is not None:
                        yield open_start, (pos + cursor) - open_start
                        open_start = None
                    cursor = take
                    break
                if seg & 1:
                    ones = (~seg & (seg + 1)).bit_length() - 1
                    ones = min(ones, take - cursor)
                    if open_start is None:
                        open_start = pos + cursor
                    seg >>= ones
                    cursor += ones
                    if cursor < take:
                        yield open_start, (pos + cursor) - open_start
                        open_start = None
                else:
                    zeros = (seg & -seg).bit_length() - 1
                    zeros = min(zeros, take - cursor)
                    if open_start is not None:
                        yield open_start, (pos + cursor) - open_start
                        open_start = None
                    seg >>= zeros
                    cursor += zeros
            pos += take
        if open_start is not None:
            yield open_start, end - open_start

    # -- import/export ------------------------------------------------------

    def window(self, start: int, count: int) -> int:
        """Raw bit window for a block range (what the OS copies to user)."""
        if count <= 0:
            return 0
        first, nbits = self._bit_range(start, count)
        return self._window_bits(first, nbits)

    def load_window(self, start: int, count: int, bits: int) -> None:
        """Overwrite a block range from an exported window."""
        if count <= 0:
            return
        first, nbits = self._bit_range(start, count)
        bits &= _mask(nbits)
        pos = first
        end = first + nbits
        consumed = 0
        self._ensure((end - 1) // _WORD)
        while pos < end:
            wi, off = divmod(pos, _WORD)
            take = min(_WORD - off, end - pos)
            seg = (bits >> consumed) & _mask(take)
            mask = _mask(take) << off
            before = self._words[wi]
            after = (before & ~mask) | (seg << off)
            if after != before:
                self._count += after.bit_count() - before.bit_count()
                self._words[wi] = after
            consumed += take
            pos += take

    def copy(self) -> "BlockBitmap":
        dup = BlockBitmap(self.nblocks, self.shift)
        dup._words = list(self._words)
        dup._count = self._count
        return dup

    def export_nbytes(self, start: int, count: int) -> int:
        """Bytes a user-space copy of this window costs (for the cost model)."""
        if count <= 0:
            return 0
        _first, nbits = self._bit_range(start, count)
        return (nbits + 7) // 8

    def __repr__(self) -> str:
        return (f"BlockBitmap(nblocks={self.nblocks}, shift={self.shift}, "
                f"set={self._count})")
