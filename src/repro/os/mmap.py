"""Memory-mapped I/O: page faults, fault-around, and madvise.

mmap reads skip the syscall/copy path entirely — hits cost nothing — but
every non-resident page costs a fault.  Linux softens this with
fault-around (mapping ~16 resident-adjacent pages per fault) and by
running the same readahead engine on the fault path; ``madvise(RANDOM)``
disables both, which is why the paper's APPonly mmap numbers collapse
(Table 4).
"""

from __future__ import annotations

from typing import Generator

from repro.os.inode import Inode
from repro.os.vfs import VFS, File
from repro.storage.device import BLOCKING, PREFETCH

__all__ = ["MmapRegion"]

FAULT_AROUND_BLOCKS = 16


class MmapRegion:
    """One mapping of a whole file."""

    def __init__(self, vfs: VFS, file: File):
        self.vfs = vfs
        self.file = file
        self.inode: Inode = file.inode
        self.random_advice = False
        self.faults = 0
        self.minor_hits = 0

    def madvise_random(self) -> None:
        """madvise(MADV_RANDOM): single-page faults, no readahead."""
        self.random_advice = True
        self.file.ra.set_random()

    def madvise_normal(self) -> None:
        self.random_advice = False
        self.file.ra.set_normal()

    def access(self, offset: int, nbytes: int) -> Generator:
        """Load/store over [offset, offset+nbytes).

        Returns (hit_pages, fault_pages).  Resident pages cost nothing
        (no syscall, no copy); missing pages fault.
        """
        cfg = self.vfs.config
        inode = self.inode
        cache = inode.cache
        nbytes = min(nbytes, max(0, inode.size - offset))
        if nbytes <= 0:
            return (0, 0)
        b0 = offset // cfg.block_size
        count = inode.blocks_of(offset + nbytes) - b0

        missing = cache.missing_runs(b0, count)
        fault_pages = sum(n for _s, n in missing)
        hit_pages = count - fault_pages
        self.minor_hits += hit_pages
        inode.hit_pages += hit_pages
        inode.miss_pages += fault_pages
        self.vfs.registry.count("cache.demand_hits", hit_pages)
        self.vfs.registry.count("cache.demand_misses", fault_pages)
        cache.touch_range(b0, count)
        if not missing:
            return (hit_pages, 0)

        if self.random_advice:
            # One hard fault per missing page; no batching, no readahead.
            for run_start, run_len in missing:
                for blk in range(run_start, run_start + run_len):
                    self.faults += 1
                    yield self.vfs.sim.timeout(cfg.fault_overhead)
                    yield from self.vfs._fill_range(
                        inode, blk, 1, priority=BLOCKING,
                        honor_planned=True)
        else:
            # Fault-around: one fault per FAULT_AROUND_BLOCKS window,
            # plus the filemap readahead engine on the fault path.
            for run_start, run_len in missing:
                nfaults = (run_len + FAULT_AROUND_BLOCKS - 1) \
                    // FAULT_AROUND_BLOCKS
                self.faults += nfaults
                yield self.vfs.sim.timeout(nfaults * cfg.fault_overhead)
            plan = self.file.ra.on_demand_miss(b0, count, inode.nblocks)
            yield from self.vfs._fill_range(inode, b0, count,
                                            priority=BLOCKING,
                                            honor_planned=True)
            if plan.sync_count:
                self.vfs._spawn_fill(inode, plan.sync_start,
                                     plan.sync_count, priority=PREFETCH,
                                     tag="mmap_ra")
        return (hit_pages, fault_pages)
