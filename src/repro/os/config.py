"""Kernel cost model and policy knobs.

Every simulated CPU cost and kernel policy constant lives here so
experiments can perturb them (e.g., the Fig. 10 prefetch-limit sweep).
Times are simulated microseconds; sizes are bytes or blocks as named.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelConfig"]

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30


@dataclass
class KernelConfig:
    """Cost and policy constants for the simulated kernel."""

    # -- geometry ----------------------------------------------------------
    page_size: int = 4 * KB
    # LRU / reclaim granularity, in blocks (128 KB chunks like Linux scan).
    chunk_blocks: int = 32
    # Extension (paper §4.6 future work): per-inode LRU lists with
    # round-robin reclaim instead of the global two-list LRU.
    per_inode_lru: bool = False

    # -- CPU cost model (µs) -------------------------------------------------
    syscall_overhead: float = 1.2
    # Xarray walk per block looked up (pvec batching makes this small).
    tree_walk_per_block: float = 0.015
    # Xarray insert per block (under the tree write lock).
    tree_insert_per_block: float = 0.12
    # Copy between kernel and user space, per page of data.
    copy_per_page: float = 0.35
    # One bitmap range operation (Cross-OS fast path) — constant-ish.
    bitmap_op: float = 0.25
    # Copying exported bitmap bytes to user space, per byte.
    bitmap_copy_per_byte: float = 0.002
    # fincore: per resident page walked, plus the mm-lock serialization.
    fincore_per_block: float = 0.04
    fincore_base: float = 3.0
    # mmap fault entry/exit.
    fault_overhead: float = 1.8

    # -- readahead policy ------------------------------------------------------
    # Default Linux window cap: 32 blocks = 128 KB.
    ra_pages: int = 32
    # readahead(2)/fadvise(WILLNEED) are clamped to this many blocks per
    # call (the Fig. 1 pathology: a 4 MB request yields 128 KB).
    ra_syscall_cap_blocks: int = 32
    # VFS splits any single device I/O at this many bytes (§4.7: "the VFS
    # layer limits an I/O request to a maximum of 2MB").
    io_chunk_bytes: int = 2 * MB

    # -- Cross-OS ---------------------------------------------------------------
    # Hard cap on a single readahead_info request (§4.7: 64 MB).
    cross_max_request_bytes: int = 64 * MB
    # Cap while the device's fault-pressure controller is throttled
    # (degradation level 1): relaxed multi-MB requests shrink back to a
    # conservative window until the device recovers.
    cross_degraded_request_bytes: int = 128 * KB
    # Granularity knob for the exported bitmap (CROSS_BITMAP_SHIFT).
    cross_bitmap_shift: int = 0

    # -- writeback ----------------------------------------------------------------
    # Background flusher wakes at this interval (µs) ...
    writeback_interval: float = 50_000.0
    # ... and starts work above this many dirty pages.
    writeback_dirty_pages: int = 2048
    # Max pages flushed per wakeup burst.
    writeback_batch_pages: int = 4096

    @property
    def block_size(self) -> int:
        return self.page_size

    def blocks_of(self, nbytes: int) -> int:
        if nbytes <= 0:
            return 0
        return (nbytes + self.page_size - 1) // self.page_size
