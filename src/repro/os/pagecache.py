"""Per-inode page cache: the simulated Xarray and its tree lock.

Linux keeps one radix tree (Xarray) per inode, guarded by a tree-wide
lock that both regular I/O and prefetch inserts take — the contention
source §3.2 of the paper measures.  This model keeps the residency truth
in a :class:`~repro.os.bitmap.BlockBitmap`, the tree-wide rw-lock as a
simulated :class:`~repro.sim.sync.RwLock` (category ``cache_tree``), and
chunk-granular LRU bookkeeping through the memory manager.

All methods here are *pure state transitions*; the VFS and Cross-OS
layers orchestrate lock acquisition and simulated CPU cost around them.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.os.bitmap import BlockBitmap
from repro.os.memory import MemoryManager
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.sync import RwLock

__all__ = ["PageCache"]


class _ChunkRange:
    """A contiguous (inode, chunk) key range, usable as a reclaim
    ``exclude`` set without materializing the keys.

    An insert always populates a contiguous chunk range, so protecting
    those chunks from the reclaim the insert itself triggers only needs
    membership and length — not a per-call temporary set.
    """

    __slots__ = ("inode_id", "first", "last")

    def __init__(self, inode_id: int, first: int, last: int):
        self.inode_id = inode_id
        self.first = first
        self.last = last

    def __contains__(self, key) -> bool:
        return key[0] == self.inode_id and self.first <= key[1] <= self.last

    def __len__(self) -> int:
        return self.last - self.first + 1

    def __iter__(self):
        inode_id = self.inode_id
        return iter((inode_id, chunk)
                    for chunk in range(self.first, self.last + 1))


class PageCache:
    """Residency, dirty state and LRU hooks for one inode."""

    def __init__(self, sim: Simulator, inode_id: int, nblocks: int,
                 mem: MemoryManager, registry: StatsRegistry):
        self.sim = sim
        self.inode_id = inode_id
        self.mem = mem
        self.registry = registry
        self.present = BlockBitmap(nblocks)
        self.dirty = BlockBitmap(nblocks)
        self.tree_lock = RwLock(sim, name=f"cache_tree[{inode_id}]",
                                stats=registry.lock_stats("cache_tree"))
        # PG_readahead marker: block index that triggers async readahead
        # when hit, or None.
        self.ra_marker: Optional[int] = None
        mem.register_cache(self)
        # Hooks fired as (start, nblocks) on insert/evict; Cross-OS uses
        # them to mirror residency into the exported bitmap.
        self.insert_hooks: list[Callable[[int, int], None]] = []
        self.evict_hooks: list[Callable[[int, int], None]] = []
        # Fired as (start, nblocks) for each *dirty* run an eviction is
        # about to clear.  Eviction counts dirty pages as written back
        # (see evict_chunk); the durability ledger needs to see those
        # implied writes or a crash model would silently lose them.
        self.dirty_evict_hooks: list[Callable[[int, int], None]] = []
        # Bound LRU entry points, hoisted once past the MemoryManager
        # delegation: touch/insert run for every chunk of every read.
        self._lru_inserted = mem.lru.inserted
        self._lru_touched = mem.lru.touched

    # -- geometry -----------------------------------------------------------

    @property
    def nblocks(self) -> int:
        return self.present.nblocks

    @property
    def cached_pages(self) -> int:
        return self.present.count_set()

    def resize(self, nblocks: int) -> None:
        self.present.resize(nblocks)
        self.dirty.resize(nblocks)

    def _chunks(self, start: int, count: int) -> Iterator[int]:
        cb = self.mem.chunk_blocks
        first = start // cb
        last = (start + count - 1) // cb
        return iter(range(first, last + 1))

    def resident_chunks(self) -> Iterator[int]:
        for run_start, run_len in self.present.set_runs(0, self.nblocks or 1):
            yield from self._chunks(run_start, run_len)

    # -- queries (caller holds tree read lock) --------------------------------

    def missing_runs(self, start: int, count: int) -> list[tuple[int, int]]:
        return self.present.missing_runs(start, count)

    def resident_count(self, start: int, count: int) -> int:
        return self.present.count_set(start, count)

    def all_resident(self, start: int, count: int) -> bool:
        return self.present.all_set(start, count)

    # -- mutation (caller holds tree write lock) ------------------------------

    def insert_range(self, start: int, count: int,
                     dirty: bool = False) -> int:
        """Mark blocks resident; returns the number of *new* pages.

        Charges the memory manager (which may trigger reclaim of other
        chunks) and registers LRU entries.
        """
        if count <= 0:
            return 0
        present = self.present
        new_pages = count - present.count_set(start, count)
        present.set_range(start, count)
        if dirty:
            self.dirty.set_range(start, count)
        cb = self.mem.chunk_blocks
        first = start // cb
        last = (start + count - 1) // cb
        inode_id = self.inode_id
        lru_inserted = self._lru_inserted
        for chunk in range(first, last + 1):
            lru_inserted((inode_id, chunk))
        for hook in self.insert_hooks:
            hook(start, count)
        if new_pages > 0:
            # Protect the chunks this insert populated from the reclaim
            # it may trigger, or the filler would evict itself.
            self.mem.charge(new_pages,
                            exclude=_ChunkRange(inode_id, first, last))
        return new_pages

    def touch_range(self, start: int, count: int) -> None:
        """Record a cache hit for LRU aging (caller holds read lock)."""
        cb = self.mem.chunk_blocks
        first = start // cb
        last = (start + count - 1) // cb
        inode_id = self.inode_id
        if first == last:
            self._lru_touched((inode_id, first))
            return
        lru_touched = self._lru_touched
        for chunk in range(first, last + 1):
            lru_touched((inode_id, chunk))

    def evict_chunk(self, chunk: int) -> int:
        """Evict one LRU chunk; returns pages freed.

        Dirty pages in the chunk are counted as written back (the device
        write is the flusher's job; see VFS writeback).
        """
        cb = self.mem.chunk_blocks
        start = chunk * cb
        count = min(cb, max(0, self.nblocks - start))
        if count <= 0:
            self.mem.chunk_removed((self.inode_id, chunk))
            return 0
        freed = self.present.count_set(start, count)
        if freed:
            self._note_dirty_evicted(start, count)
            self.present.clear_range(start, count)
            self.dirty.clear_range(start, count)
            self.mem.uncharge(freed)
            for hook in self.evict_hooks:
                hook(start, count)
            self.mem.notify_evicted(self.inode_id, start, count)
        self.mem.chunk_removed((self.inode_id, chunk))
        return freed

    def evict_range(self, start: int, count: int) -> int:
        """Evict an arbitrary block range (fadvise(DONTNEED) path)."""
        if count <= 0:
            return 0
        freed = self.present.count_set(start, count)
        if freed == 0:
            return 0
        observer = self.registry.observer
        if observer is not None:
            observer.instant("pagecache", "evict", inode=self.inode_id,
                             block=start, pages=freed)
        self._note_dirty_evicted(start, count)
        self.present.clear_range(start, count)
        self.dirty.clear_range(start, count)
        self.mem.uncharge(freed)
        for hook in self.evict_hooks:
            hook(start, count)
        self.mem.notify_evicted(self.inode_id, start, count)
        cb = self.mem.chunk_blocks
        for chunk in self._chunks(start, count):
            cstart = chunk * cb
            clen = min(cb, max(0, self.nblocks - cstart))
            if clen <= 0 or not self.present.any_set(cstart, clen):
                self.mem.chunk_removed((self.inode_id, chunk))
        return freed

    def _note_dirty_evicted(self, start: int, count: int) -> None:
        """Report the dirty runs an eviction is about to clear (no-op
        without registered hooks — the common case)."""
        if self.dirty_evict_hooks and self.dirty.any_set(start, count):
            for run_start, run_len in self.dirty.set_runs(start, count):
                for hook in self.dirty_evict_hooks:
                    hook(run_start, run_len)

    def clean_range(self, start: int, count: int) -> None:
        self.dirty.clear_range(start, count)

    @property
    def dirty_pages(self) -> int:
        return self.dirty.count_set()
