"""In-core inode: file metadata plus its cache and locks."""

from __future__ import annotations

import itertools
from typing import Optional

from repro.os.bitmap import BlockBitmap
from repro.os.memory import MemoryManager
from repro.os.pagecache import PageCache
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.sync import Condition, RwLock

__all__ = ["Inode"]

_ids = itertools.count(1)


class Inode:
    """One file's kernel-side identity.

    Holds the per-inode rw-lock (``inode rw-lock`` in the paper — shared
    by readers, exclusive for writers/truncate) and the page cache.
    Cross-OS attaches its exported cache bitmap lazily via
    :class:`repro.os.crossos.CrossOS`.
    """

    def __init__(self, sim: Simulator, path: str, size: int,
                 block_size: int, mem: MemoryManager,
                 registry: StatsRegistry,
                 inode_id: Optional[int] = None):
        if size < 0:
            raise ValueError(f"negative file size: {size}")
        # The VFS hands out per-kernel ids so two identically-seeded
        # runs produce identical id streams (and thus identical traces);
        # the process-global counter is only a fallback for direct
        # construction in tests.
        self.id = next(_ids) if inode_id is None else inode_id
        self.path = path
        self.size = size
        self.block_size = block_size
        self.cache = PageCache(sim, self.id, self.blocks_of(size),
                               mem, registry)
        self.rwlock = RwLock(sim, name=f"inode[{self.id}]",
                             stats=registry.lock_stats("inode"))
        # Fill-path state, held on the inode so the read hot path does
        # not pay a per-read dict lookup keyed on inode id.  The VFS
        # mirrors these in id-keyed dicts for auditing and teardown.
        self.inflight = BlockBitmap(self.blocks_of(size))
        self.planned = BlockBitmap(self.blocks_of(size))
        self.fill_cond = Condition(sim, f"fill[{self.id}]")
        # Per-inode telemetry Cross-OS exports (§4.4): demand hits/misses.
        self.hit_pages = 0
        self.miss_pages = 0
        # Set by CrossOS.attach(); None when CrossPrefetch is disabled.
        self.cross: Optional[object] = None

    @property
    def nblocks(self) -> int:
        return self.blocks_of(self.size)

    def blocks_of(self, nbytes: int) -> int:
        if nbytes <= 0:
            return 0
        return (nbytes + self.block_size - 1) // self.block_size

    def set_size(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"negative file size: {size}")
        self.size = size
        self.cache.resize(self.nblocks)

    def __repr__(self) -> str:
        return f"Inode({self.id}, {self.path!r}, {self.size}B)"
