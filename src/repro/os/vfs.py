"""The virtual file system: files, reads/writes, and prefetch syscalls.

This module is the syscall surface every workload talks to.  It
orchestrates the page cache (lookups under the tree read lock, inserts
under the tree write lock), the stock readahead engine, writeback, and
the prefetch-related system calls the paper discusses:

* ``readahead(2)`` — blocking, clamped to 128 KB per call (the Fig. 1
  pathology);
* ``fadvise`` — SEQUENTIAL / RANDOM / NORMAL / WILLNEED / DONTNEED;
* ``fincore`` — cache-residency query that serializes on the mm lock and
  walks the cache tree (the expensive baseline §2.1 measures).

In-flight tracking: blocks being read from the device are marked in a
per-inode ``inflight`` bitmap so concurrent readers (and prefetchers)
never issue duplicate device I/O; a waiter sleeps on the inode's
condition until overlapping fills complete.  This is the page-lock
deduplication the kernel performs, and it is what lets a demand read
overlap with an in-flight prefetch instead of re-reading the blocks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, Optional

from repro.os.bitmap import BlockBitmap
from repro.os.config import KernelConfig
from repro.os.inode import Inode
from repro.os.memory import MemoryManager
from repro.os.readahead import ReadaheadState
from repro.sim.engine import Simulator
from repro.sim.faults import DeviceError
from repro.sim.stats import StatsRegistry
from repro.sim.sync import Condition, Lock
from repro.storage.device import BLOCKING, PREFETCH, StorageDevice

__all__ = [
    "FADV_DONTNEED",
    "FADV_NORMAL",
    "FADV_RANDOM",
    "FADV_SEQUENTIAL",
    "FADV_WILLNEED",
    "File",
    "ReadResult",
    "VFS",
]

FADV_NORMAL = "normal"
FADV_SEQUENTIAL = "sequential"
FADV_RANDOM = "random"
FADV_WILLNEED = "willneed"
FADV_DONTNEED = "dontneed"

_fd_ids = itertools.count(3)  # 0-2 are stdio, naturally


class ReadResult:
    """What a read() returned, for workload accounting.

    Hand-rolled instead of a dataclass: one is allocated per read().
    """

    __slots__ = ("nbytes", "hit_pages", "miss_pages")

    def __init__(self, nbytes: int, hit_pages: int, miss_pages: int):
        self.nbytes = nbytes
        self.hit_pages = hit_pages
        self.miss_pages = miss_pages

    def __repr__(self) -> str:
        return (f"ReadResult(nbytes={self.nbytes}, "
                f"hit_pages={self.hit_pages}, "
                f"miss_pages={self.miss_pages})")

    def __eq__(self, other) -> bool:
        return (isinstance(other, ReadResult)
                and self.nbytes == other.nbytes
                and self.hit_pages == other.hit_pages
                and self.miss_pages == other.miss_pages)


class File:
    """An open file description: position + per-FD readahead state."""

    def __init__(self, inode: Inode, ra_pages: int,
                 fd: Optional[int] = None):
        self.fd = next(_fd_ids) if fd is None else fd
        self.inode = inode
        self.pos = 0
        self.ra = ReadaheadState(ra_pages)
        self.closed = False

    def __repr__(self) -> str:
        return f"File(fd={self.fd}, {self.inode.path!r}, pos={self.pos})"


class VFS:
    """The simulated VFS layer over one storage device."""

    def __init__(self, sim: Simulator, device: StorageDevice,
                 mem: MemoryManager, config: KernelConfig,
                 registry: StatsRegistry, *,
                 inode_id_start: int = 1):
        self.sim = sim
        self.device = device
        self.mem = mem
        self.config = config
        self.registry = registry
        self._inodes: dict[str, Inode] = {}
        self._by_id: dict[int, Inode] = {}
        # Blocks with device I/O in progress right now.
        self._inflight: dict[int, BlockBitmap] = {}
        # Blocks claimed by a large prefetch request whose pipeline has
        # not reached them yet.  Demand reads IGNORE planned blocks (they
        # fetch themselves at blocking priority, as the kernel would);
        # only prefetch dedup honours them.
        self._planned: dict[int, BlockBitmap] = {}
        self._fill_cond: dict[int, Condition] = {}
        self._dirty_inodes: set[int] = set()
        # fincore/mincore serialize on the process mm lock (§2.1).
        self.mm_lock = Lock(sim, name="mm", stats=registry.lock_stats("mm"))
        # The flusher sleeps on this condition when there is no dirty
        # data, so an idle kernel leaves the event heap empty and
        # Simulator.run() terminates naturally.
        self._wb_kick = Condition(sim, "writeback_kick")
        self._flusher_proc = sim.process(self._flusher(), name="flusher")
        # Optional event tracer (set by the Kernel when tracing is on).
        self.tracer = None
        # Per-kernel id streams keep identically-seeded runs identical.
        # A fleet host starts its stream at a disjoint base so inode
        # ids (= device stream ids) never collide across hosts sharing
        # one backend device.
        self._inode_ids = itertools.count(inode_id_start)
        self._fd_ids = itertools.count(3)  # 0-2 are stdio, naturally
        # Read-path counters, hoisted: three registry.count() dict
        # lookups per read add up to ~5% of an experiment's wall time.
        self._c_reads = registry.counter("syscalls.read")
        self._c_hits = registry.counter("cache.demand_hits")
        self._c_misses = registry.counter("cache.demand_misses")
        # I/O chunking geometry is config-fixed; computing it per fill
        # shows up in profiles at 78k+ calls per quick run.
        self._chunk_blocks = max(1, config.io_chunk_bytes // config.block_size)
        # Read-path cost constants, snapshotted: three config attribute
        # chases per read are measurable at 178k reads per quick run.
        self._cpu_syscall = config.syscall_overhead
        self._cpu_walk = config.tree_walk_per_block
        self._cpu_copy = config.copy_per_page
        # Span observer, snapshotted once.  The kernel attaches the
        # observer to the registry before building subsystems (the same
        # contract the sync fast/slow dispatch relies on), so the
        # per-call ``self.registry.observer`` hop is avoidable.
        self._observer = registry.observer

    # -- namespace ----------------------------------------------------------

    def create(self, path: str, size: int) -> Inode:
        """Create a file whose contents already exist on the device."""
        if path in self._inodes:
            raise FileExistsError(path)
        inode = Inode(self.sim, path, size, self.config.block_size,
                      self.mem, self.registry,
                      inode_id=next(self._inode_ids))
        self._inodes[path] = inode
        self._by_id[inode.id] = inode
        self._inflight[inode.id] = inode.inflight
        self._planned[inode.id] = inode.planned
        self._fill_cond[inode.id] = inode.fill_cond
        durable = self.device.durable
        if durable is not None:
            # Evicting a dirty page counts as writeback (see
            # PageCache.evict_chunk); the persistence ledger must see
            # those implied device writes or a crash would lose bytes
            # the model considers written.
            bs = self.config.block_size

            def _dirty_evicted(start: int, count: int,
                               _ino=inode, _d=durable, _bs=bs) -> None:
                nbytes = min(count * _bs, _ino.size - start * _bs)
                _d.note_write(_ino.id, start * _bs, nbytes)

            inode.cache.dirty_evict_hooks.append(_dirty_evicted)
        return inode

    def lookup(self, path: str) -> Inode:
        inode = self._inodes.get(path)
        if inode is None:
            raise FileNotFoundError(path)
        return inode

    def exists(self, path: str) -> bool:
        return path in self._inodes

    def unlink(self, path: str) -> None:
        inode = self._inodes.pop(path, None)
        if inode is None:
            raise FileNotFoundError(path)
        freed = inode.cache.cached_pages
        if freed:
            inode.cache.evict_range(0, inode.nblocks)
        self.mem.forget_cache(inode.id)
        self._by_id.pop(inode.id, None)
        self._inflight.pop(inode.id, None)
        self._planned.pop(inode.id, None)
        self._fill_cond.pop(inode.id, None)
        self._dirty_inodes.discard(inode.id)
        self.device.forget_stream(inode.id)

    def paths(self) -> list[str]:
        return sorted(self._inodes)

    def open_sync(self, path: str) -> File:
        """Zero-cost open for experiment setup."""
        return File(self.lookup(path), self.config.ra_pages,
                    fd=next(self._fd_ids))

    def open(self, path: str) -> Generator:
        """open(2): returns a File after the syscall cost."""
        yield self.sim.timeout(self.config.syscall_overhead)
        self.registry.count("syscalls.open")
        return File(self.lookup(path), self.config.ra_pages,
                    fd=next(self._fd_ids))

    def close(self, file: File) -> Generator:
        yield self.sim.timeout(self.config.syscall_overhead)
        self.registry.count("syscalls.close")
        file.closed = True

    # -- read path ------------------------------------------------------------

    def read(self, file: File, offset: int, nbytes: int,
             parent=None) -> Generator:
        """pread(2).  Returns a :class:`ReadResult`."""
        cfg = self.config
        inode = file.inode
        cache = inode.cache
        self._c_reads.value += 1
        # The syscall entry, pvec walk, and copy-out are accumulated and
        # charged in one timeout — fewer engine events, same total time.
        cpu = self._cpu_syscall
        avail = inode.size - offset
        if nbytes > avail:
            nbytes = avail
        if nbytes <= 0:
            yield self.sim.timeout(cpu)
            return ReadResult(0, 0, 0)
        bs = inode.block_size
        b0 = offset // bs
        count = (offset + nbytes + bs - 1) // bs - b0
        obs = self._observer
        span = obs.begin("vfs", "read", parent=parent, inode=inode.id,
                         block=b0, count=count) if obs is not None else None
        hit_pages = miss_pages = 0

        ev = inode.rwlock.acquire_read()
        if ev is not None:
            yield ev
        try:
            # Lookup under the cache-tree read lock (pvec walk).  Pages
            # already inserted by an in-flight fill count as *hits* (the
            # kernel finds them present-but-locked and waits), so misses
            # are only the blocks nobody has asked the device for.
            ev = cache.tree_lock.acquire_read()
            if ev is not None:
                yield ev
            cpu += count * self._cpu_walk
            inflight = inode.inflight
            uncovered = self._uncovered_runs(cache, inflight, b0, count)
            marker = cache.ra_marker
            cache.tree_lock.release_read()

            if uncovered:
                miss_pages = sum(n for _s, n in uncovered)
                hit_pages = count - miss_pages
            else:
                hit_pages = count
            inode.hit_pages += hit_pages
            inode.miss_pages += miss_pages
            self._c_hits.value += hit_pages
            self._c_misses.value += miss_pages
            cache.touch_range(b0, count)

            ra = file.ra
            if self.device.qos is not None and ra.enabled:
                # Per-stream degradation: clamp the OS readahead window
                # while this FD's tenant is throttled (None otherwise).
                ra.degraded_cap = self.device.qos.window_cap(
                    inode.id, self.sim.now)
            if self.device.adaptive is not None and ra.enabled:
                # Learned policy layer: clamp the window while the
                # stream classifies temporal/random (None otherwise).
                ra.adaptive_cap = self.device.adaptive.window_cap(
                    inode.id, self.sim.now)
            if not ra.enabled:
                # Stock readahead off (CROSS-LIB owns this FD, or
                # FADV_RANDOM): the engine would only record the stream
                # position — do that without the call and the plan
                # object it allocates per read.
                ra.prev_end = b0 + count
            elif miss_pages:
                plan = ra.on_demand_miss(b0, count, inode.nblocks)
                if plan.sync_count:
                    if obs is not None:
                        obs.instant("readahead", "os_ra_sync",
                                    inode=inode.id, start=plan.sync_start,
                                    count=plan.sync_count,
                                    reason=plan.reason)
                    self._spawn_fill(inode, plan.sync_start, plan.sync_count,
                                     priority=BLOCKING, tag="os_ra_sync",
                                     parent=span)
                    cache.ra_marker = plan.marker
            else:
                file.ra.note_sequential_pos(b0, count)
                if marker is not None and b0 <= marker < b0 + count:
                    cache.ra_marker = None
                    plan = file.ra.on_marker_hit(marker, inode.nblocks)
                    if plan.sync_count:
                        if obs is not None:
                            obs.instant("readahead", "os_ra_async",
                                        inode=inode.id,
                                        start=plan.sync_start,
                                        count=plan.sync_count,
                                        reason=plan.reason)
                        self._spawn_fill(inode, plan.sync_start,
                                         plan.sync_count, priority=PREFETCH,
                                         tag="os_ra_async", parent=span)
                        cache.ra_marker = plan.marker
            cpu += count * self._cpu_copy
            yield self.sim.timeout(cpu)
            # Fill whatever is still missing and wait out in-flight
            # overlaps (the page-lock wait); fully-resident reads skip
            # the fill machinery entirely.
            if not cache.present.all_set(b0, count):
                # Demand misses resume once per device completion, so
                # frame depth is a per-event cost: the common case (no
                # instrumentation, nothing planned by a prefetch
                # pipeline) runs one fill batch inline instead of
                # delegating through _fill_range -> _fill_runs, two
                # generator frames that would otherwise sit on every
                # resume.  Falls back to the general path to wait out
                # overlapping fills.  Identical event sequence.
                inflight = inode.inflight
                if (span is None and self.tracer is None
                        and self.sim.auditor is None
                        and self.device.faults is None
                        and inode.planned._count == 0):
                    runs = self._uncovered_runs(cache, inflight, b0, count)
                    if runs:
                        cond = inode.fill_cond
                        chunk_blocks = self._chunk_blocks
                        for run_start, run_len in runs:
                            inflight.set_range(run_start, run_len)
                        try:
                            events = []
                            total_pages = 0
                            device_read = self.device.read
                            for run_start, run_len in runs:
                                pos = run_start
                                run_end = run_start + run_len
                                while pos < run_end:
                                    n = run_end - pos
                                    if n > chunk_blocks:
                                        n = chunk_blocks
                                    events.append(device_read(
                                        pos * bs, n * bs,
                                        priority=BLOCKING,
                                        stream=inode.id))
                                    pos += n
                                    total_pages += n
                            yield self.sim.all_of(events)
                            ev = cache.tree_lock.acquire_write()
                            if ev is not None:
                                yield ev
                            yield self.sim.timeout(
                                total_pages * cfg.tree_insert_per_block)
                            for run_start, run_len in runs:
                                cache.insert_range(run_start, run_len)
                            cache.tree_lock.release_write()
                        finally:
                            for run_start, run_len in runs:
                                inflight.clear_range(run_start, run_len)
                            cond.notify_all()
                    if not cache.present.all_set(b0, count):
                        yield from self._fill_range(inode, b0, count,
                                                    priority=BLOCKING,
                                                    honor_planned=True,
                                                    parent=span)
                else:
                    yield from self._fill_range(inode, b0, count,
                                                priority=BLOCKING,
                                                honor_planned=True,
                                                parent=span)
        finally:
            inode.rwlock.release_read()
            if span is not None:
                span.end(hits=hit_pages, misses=miss_pages)
        if self.tracer is not None:
            self.tracer.record(self.sim.now, "read", inode=inode.id,
                               block=b0, count=count, hits=hit_pages,
                               misses=miss_pages)
        return ReadResult(nbytes, hit_pages, miss_pages)

    def read_seq(self, file: File, nbytes: int) -> Generator:
        """read(2) at the current file position."""
        result = yield from self.read(file, file.pos, nbytes)
        file.pos += result.nbytes
        return result

    # -- write path --------------------------------------------------------------

    def write(self, file: File, offset: int, nbytes: int) -> Generator:
        """pwrite(2) into the page cache; writeback happens asynchronously."""
        cfg = self.config
        inode = file.inode
        cache = inode.cache
        yield self.sim.timeout(cfg.syscall_overhead)
        self.registry.count("syscalls.write")
        if nbytes <= 0:
            return 0
        yield inode.rwlock.acquire_write()
        try:
            end = offset + nbytes
            if end > inode.size:
                inode.set_size(end)
                self._inflight[inode.id].resize(inode.nblocks)
                self._planned[inode.id].resize(inode.nblocks)
            b0 = offset // cfg.block_size
            count = inode.blocks_of(end) - b0
            yield cache.tree_lock.acquire_write()
            yield self.sim.timeout(count * cfg.tree_insert_per_block)
            cache.insert_range(b0, count, dirty=True)
            cache.tree_lock.release_write()
            self._dirty_inodes.add(inode.id)
            self._kick_writeback()
            yield self.sim.timeout(count * cfg.copy_per_page)
        finally:
            inode.rwlock.release_write()
        self.registry.count("write.bytes", nbytes)
        return nbytes

    def write_seq(self, file: File, nbytes: int) -> Generator:
        written = yield from self.write(file, file.pos, nbytes)
        file.pos += written
        return written

    def fsync(self, file: File) -> Generator:
        """Flush the file's dirty pages synchronously."""
        yield self.sim.timeout(self.config.syscall_overhead)
        self.registry.count("syscalls.fsync")
        yield from self._flush_inode(file.inode, priority=BLOCKING)
        # Flush barrier: everything the device write cache holds for
        # this stream is now persisted and acknowledged-durable.  A run
        # that failed to flush (blocking retries exhausted — practically
        # unreachable) was never reported to the ledger, so the barrier
        # cannot acknowledge bytes that did not reach the device.
        self.device.flush_stream(file.inode.id)

    # -- prefetch syscalls -----------------------------------------------------------

    def readahead(self, file: File, offset: int, nbytes: int) -> Generator:
        """readahead(2): blocking populate, clamped to the kernel cap.

        Returns the number of blocks actually submitted — which the real
        syscall does NOT report; applications assume the full range was
        prefetched (Fig. 1).
        """
        cfg = self.config
        inode = file.inode
        yield self.sim.timeout(cfg.syscall_overhead)
        self.registry.count("syscalls.readahead")
        b0 = offset // cfg.block_size
        want = inode.blocks_of(min(offset + nbytes, inode.size)) - b0
        count = min(want, cfg.ra_syscall_cap_blocks)
        if count <= 0:
            return 0
        obs = self._observer
        span = obs.begin("vfs", "readahead_syscall", inode=inode.id,
                         block=b0, count=count, clamped=want > count) \
            if obs is not None else None
        # Lookup under the tree read lock, like the kernel ra path.
        cache = inode.cache
        yield cache.tree_lock.acquire_read()
        yield self.sim.timeout(count * cfg.tree_walk_per_block)
        cache.tree_lock.release_read()
        yield from self._fill_range(inode, b0, count, priority=PREFETCH,
                                    prefetch=True, parent=span)
        if span is not None:
            span.end()
        return count

    def fadvise(self, file: File, advice: str, offset: int = 0,
                nbytes: int = 0) -> Generator:
        cfg = self.config
        inode = file.inode
        yield self.sim.timeout(cfg.syscall_overhead)
        self.registry.count("syscalls.fadvise")
        if advice == FADV_SEQUENTIAL:
            file.ra.set_sequential()
        elif advice == FADV_RANDOM:
            file.ra.set_random()
        elif advice == FADV_NORMAL:
            file.ra.set_normal()
        elif advice == FADV_WILLNEED:
            b0 = offset // cfg.block_size
            want = inode.blocks_of(min(offset + nbytes, inode.size)) - b0
            count = min(want, cfg.ra_syscall_cap_blocks)
            if count > 0:
                self._spawn_fill(inode, b0, count, priority=PREFETCH,
                                 tag="willneed", prefetch=True)
        elif advice == FADV_DONTNEED:
            b0 = offset // cfg.block_size
            if nbytes <= 0:
                count = inode.nblocks - b0
            else:
                count = inode.blocks_of(min(offset + nbytes, inode.size)) - b0
            if count > 0:
                cache = inode.cache
                yield cache.tree_lock.acquire_write()
                freed = cache.evict_range(b0, count)
                yield self.sim.timeout(freed * cfg.tree_walk_per_block)
                cache.tree_lock.release_write()
                self.registry.count("fadvise.dontneed_pages", freed)
        else:
            raise ValueError(f"unknown fadvise advice: {advice}")

    def fincore(self, file: File, offset: int = 0,
                nbytes: int = 0) -> Generator:
        """Cache residency query: walks the tree under the mm lock.

        Returns a snapshot :class:`BlockBitmap` of the queried range.
        Expensive by design — this is the baseline the paper rejects.
        """
        cfg = self.config
        inode = file.inode
        cache = inode.cache
        yield self.sim.timeout(cfg.syscall_overhead)
        self.registry.count("syscalls.fincore")
        b0 = offset // cfg.block_size
        if nbytes <= 0:
            count = inode.nblocks - b0
        else:
            count = inode.blocks_of(min(offset + nbytes, inode.size)) - b0
        count = max(0, count)
        obs = self._observer
        span = obs.begin("vfs", "fincore", inode=inode.id, block=b0,
                         count=count) if obs is not None else None
        yield self.mm_lock.acquire()
        try:
            yield cache.tree_lock.acquire_read()
            try:
                walk = cfg.fincore_base + count * cfg.fincore_per_block
                yield self.sim.timeout(walk)
                snapshot = BlockBitmap(inode.nblocks)
                window = cache.present.window(b0, count)
                snapshot.load_window(b0, count, window)
            finally:
                cache.tree_lock.release_read()
        finally:
            self.mm_lock.release()
            if span is not None:
                span.end()
        # Copying the residency vector out costs per-byte.
        yield self.sim.timeout(
            snapshot.export_nbytes(b0, count) * cfg.bitmap_copy_per_byte)
        return snapshot

    # -- fill machinery ------------------------------------------------------------

    def _spawn_fill(self, inode: Inode, start: int, count: int, *,
                    priority: int, tag: str, prefetch: bool = True,
                    parent=None) -> None:
        """Run a fill in the background (async readahead, WILLNEED)."""
        self.registry.count(f"fill.{tag}")
        gen = self._fill_range(inode, start, count, priority=priority,
                               prefetch=prefetch, parent=parent)
        if self.device.faults is not None:
            # A DeviceError escaping a detached background process would
            # crash the run loop; under fault injection an abandoned
            # readahead is routine, so absorb it here.
            gen = self._shielded_fill(gen)
        self.sim.process(gen, name=f"{tag}[{inode.id}:{start}+{count}]")

    def _shielded_fill(self, gen: Generator) -> Generator:
        try:
            yield from gen
        except DeviceError:
            self.registry.count("fill.failed_background")

    def _settle_one(self, ev) -> Generator:
        """Wait for one resilient device event; True on success.

        Never yields an already-processed event (its callbacks have run;
        subscribing again is an engine error)."""
        if ev._processed:
            return ev._ok
        try:
            yield ev
        except DeviceError:
            return False
        return True

    def _settle_chunks(self, events: list,
                       spans: list[tuple[int, int]]) -> Generator:
        """Wait out every chunk of a fill batch individually.

        ``all_of`` fails fast on the first failed chunk, which would
        leak the survivors; this returns (first_exc, succeeded_spans) so
        the caller can insert what did arrive and then propagate.
        """
        exc = None
        ok: list[tuple[int, int]] = []
        for ev, span in zip(events, spans):
            if ev._processed:
                if ev._ok:
                    ok.append(span)
                elif exc is None:
                    exc = ev._value
                continue
            try:
                yield ev
            except DeviceError as e:
                if exc is None:
                    exc = e
            else:
                ok.append(span)
        return exc, ok

    def _fill_range(self, inode: Inode, start: int, count: int, *,
                    priority: int, prefetch: bool = False,
                    wait: bool = True,
                    honor_planned: bool = False,
                    parent=None) -> Generator:
        """Ensure blocks [start, start+count) are resident.

        Deduplicates against concurrent fills through the inflight bitmap
        and returns the number of pages this call itself read from the
        device.  With ``honor_planned`` (the demand-read path), blocks a
        prefetch pipeline has claimed are waited for instead of re-read —
        the kernel's locked-page semantics.
        """
        cache = inode.cache
        inflight = inode.inflight
        planned = inode.planned if honor_planned else None
        cond = inode.fill_cond
        end = min(start + count, inode.nblocks)
        if end <= start:
            return 0
        count = end - start
        pages_read = 0
        while True:
            runs = self._uncovered_runs(cache, inflight, start, count,
                                        planned=planned)
            if runs:
                try:
                    pages_read += yield from self._fill_runs(
                        inode, runs, priority=priority, prefetch=prefetch,
                        parent=parent)
                except DeviceError:
                    if priority == BLOCKING:
                        # Blocking reads retry until the device recovers
                        # (the retry policy makes exhaustion here mean a
                        # persistent failure) — surface it to the caller.
                        raise
                    # A prefetch fill is best-effort: the blocks stay
                    # absent, in-flight markers were cleaned up by
                    # _fill_runs, and whoever actually needs the data
                    # demand-fetches it at blocking priority.
                    self.registry.count("prefetch.aborted_fills")
                    break
                continue
            if not wait or cache.present.all_set(start, count):
                break
            # Someone else is reading an overlapping range: wait for it.
            yield cond.wait()
            # If after one pipeline step our blocks are still only
            # *planned* (claimed by a prefetch whose pipeline has not
            # reached them), stop deferring and demand-fetch them at
            # blocking priority — the pipeline's per-chunk recheck skips
            # blocks that became resident, so nothing is read twice.
            # This is the kernel reality: a page the prefetcher has not
            # yet inserted is fetched by whoever faults on it first.
            planned = None
        return pages_read

    def _uncovered_runs(self, cache, inflight: BlockBitmap, start: int,
                        count: int,
                        planned: Optional[BlockBitmap] = None
                        ) -> list[tuple[int, int]]:
        missing = cache.present.missing_runs(start, count)
        if not missing:
            return missing
        # Nothing in flight (and nothing planned): the present-bitmap
        # gaps are the answer — skip the nested subtractions.
        if inflight._count == 0 and (
                planned is None or planned._count == 0):
            return missing
        runs: list[tuple[int, int]] = []
        for run_start, run_len in missing:
            for sub_start, sub_len in inflight.missing_runs(run_start,
                                                            run_len):
                if planned is None:
                    runs.append((sub_start, sub_len))
                else:
                    runs.extend(planned.missing_runs(sub_start, sub_len))
        return runs

    def _fill_runs(self, inode: Inode, runs: list[tuple[int, int]], *,
                   priority: int, prefetch: bool,
                   premarked: bool = False, parent=None) -> Generator:
        cfg = self.config
        cache = inode.cache
        inflight = inode.inflight
        cond = inode.fill_cond
        bs = cfg.block_size
        chunk_blocks = self._chunk_blocks
        obs = self._observer
        span = obs.begin("pagecache", "fill", parent=parent,
                         inode=inode.id, block=runs[0][0] if runs else 0,
                         runs=len(runs), prefetch=prefetch) \
            if obs is not None else None
        if not premarked:
            for run_start, run_len in runs:
                inflight.set_range(run_start, run_len)
        exc = None
        try:
            events = []
            spans = [] if self.device.faults is not None else None
            total_pages = 0
            for run_start, run_len in runs:
                pos = run_start
                while pos < run_start + run_len:
                    n = min(chunk_blocks, run_start + run_len - pos)
                    events.append(self.device.read(
                        pos * bs, n * bs, priority=priority,
                        stream=inode.id))
                    if spans is not None:
                        spans.append((pos, n))
                    pos += n
                    total_pages += n
            if prefetch:
                self.registry.count("prefetch.pages", total_pages)
            aud = self.sim.auditor
            if aud is not None:
                # Every device read the simulation issues flows through
                # this loop; the auditor balances it against the device's
                # own byte counter at final check.
                aud.count_fill_read(total_pages * bs)
            if spans is None:
                yield self.sim.all_of(events)
                ok_spans = None
            else:
                # Under fault injection chunks can fail independently;
                # settle each so the survivors still land in the cache.
                exc, ok_spans = yield from self._settle_chunks(events,
                                                               spans)
            # Insert under the tree write lock: this is where prefetch
            # and regular I/O contend in the baseline design.
            ev = cache.tree_lock.acquire_write()
            if ev is not None:
                yield ev
            if ok_spans is None:
                yield self.sim.timeout(
                    total_pages * cfg.tree_insert_per_block)
                for run_start, run_len in runs:
                    cache.insert_range(run_start, run_len)
                    if prefetch:
                        self._prefetched_mark(inode, run_start, run_len)
            else:
                inserted = sum(n for _s, n in ok_spans)
                yield self.sim.timeout(
                    inserted * cfg.tree_insert_per_block)
                for s, n in ok_spans:
                    cache.insert_range(s, n)
                    if prefetch:
                        self._prefetched_mark(inode, s, n)
            cache.tree_lock.release_write()
        finally:
            # On any exit — success, fault, or interrupt — the in-flight
            # markers are cleared and waiters woken, so an abandoned fill
            # can never wedge the readers queued behind it.
            for run_start, run_len in runs:
                inflight.clear_range(run_start, run_len)
            cond.notify_all()
            if span is not None:
                span.end(pages=total_pages)
        if exc is not None:
            if self.tracer is not None and runs:
                self.tracer.record(self.sim.now, "fill_failed",
                                   inode=inode.id, block=runs[0][0],
                                   error=exc.code)
            raise exc
        if self.tracer is not None and runs:
            self.tracer.record(self.sim.now, "fill", inode=inode.id,
                               block=runs[0][0], pages=total_pages,
                               prefetch=prefetch)
        return total_pages

    def plan_runs(self, inode: Inode, runs: list[tuple[int, int]]) -> None:
        """Claim runs for an upcoming prefetch pipeline (call before
        spawning :meth:`prefetch_runs` so concurrent prefetchers dedup)."""
        planned = inode.planned
        for run_start, run_len in runs:
            planned.set_range(run_start, run_len)

    def prefetch_runs(self, inode: Inode,
                      runs: list[tuple[int, int]],
                      parent=None) -> Generator:
        """Chunk-pipelined prefetch of ``runs`` (already planned).

        Each 2 MB chunk is re-checked against residency/in-flight state
        just before its I/O is issued, so blocks a demand read fetched in
        the meantime are skipped, and demand reads never wait behind the
        whole request — only behind the chunk actually on the wire.
        """
        cfg = self.config
        cache = inode.cache
        inflight = inode.inflight
        planned = inode.planned
        cond = inode.fill_cond
        bs = cfg.block_size
        chunk_blocks = self._chunk_blocks
        obs = self._observer
        span = obs.begin("pagecache", "prefetch_pipeline", parent=parent,
                         inode=inode.id, runs=len(runs)) \
            if obs is not None else None
        total_pages = 0
        try:
            for run_start, run_len in runs:
                pos = run_start
                run_end = run_start + run_len
                while pos < run_end:
                    n = min(chunk_blocks, run_end - pos)
                    sub = self._uncovered_runs(cache, inflight, pos, n)
                    if sub:
                        pages = yield from self._fill_runs(
                            inode, sub, priority=PREFETCH, prefetch=True,
                            parent=span)
                        total_pages += pages
                    planned.clear_range(pos, n)
                    pos += n
        except DeviceError:
            # Abandon the rest of the pipeline: the finally below clears
            # every still-planned block so demand readers stop deferring
            # to a prefetch that is no longer coming.
            self.registry.count("prefetch.aborted_pipelines")
        finally:
            for run_start, run_len in runs:
                planned.clear_range(run_start, run_len)
            cond.notify_all()
            if span is not None:
                span.end(pages=total_pages)
        if total_pages:
            self.registry.count("prefetch.pipeline_pages", total_pages)
        return total_pages

    # Prefetch-usefulness tracking: blocks inserted by prefetch are
    # marked; a later demand hit consumes the mark.
    def _prefetched_mark(self, inode: Inode, start: int, count: int) -> None:
        bm = getattr(inode, "_prefetched_bm", None)
        if bm is None:
            bm = BlockBitmap(inode.nblocks)
            inode._prefetched_bm = bm
        bm.set_range(start, count)

    # -- writeback ----------------------------------------------------------------

    def _total_dirty(self) -> int:
        total = 0
        for inode_id in list(self._dirty_inodes):
            inode = self._inodes_by_id(inode_id)
            if inode is None:
                self._dirty_inodes.discard(inode_id)
                continue
            total += inode.cache.dirty_pages
        return total

    def _kick_writeback(self) -> None:
        if self._total_dirty() >= self.config.writeback_dirty_pages:
            self._wb_kick.notify_all()

    def _flusher(self) -> Generator:
        cfg = self.config
        while True:
            # Sleep until a writer crosses the dirty threshold.
            yield self._wb_kick.wait()
            while self._total_dirty() >= cfg.writeback_dirty_pages:
                budget = cfg.writeback_batch_pages
                for inode_id in list(self._dirty_inodes):
                    inode = self._inodes_by_id(inode_id)
                    if inode is None:
                        self._dirty_inodes.discard(inode_id)
                        continue
                    flushed = yield from self._flush_inode(
                        inode, priority=PREFETCH, max_pages=budget)
                    budget -= flushed
                    if budget <= 0:
                        break
                yield self.sim.timeout(cfg.writeback_interval)

    def _inodes_by_id(self, inode_id: int) -> Optional[Inode]:
        return self._by_id.get(inode_id)

    def _flush_inode(self, inode: Inode, *, priority: int,
                     max_pages: Optional[int] = None) -> Generator:
        cfg = self.config
        cache = inode.cache
        bs = cfg.block_size
        amp = self.device.fs.write_amplification
        obs = self._observer
        span = obs.begin("vfs", "writeback", inode=inode.id,
                         blocking=priority == BLOCKING) \
            if obs is not None else None
        flushed = 0
        events = []
        cleaned: list[tuple[int, int]] = []
        for run_start, run_len in list(cache.dirty.set_runs(0,
                                                            inode.nblocks)):
            if max_pages is not None and flushed >= max_pages:
                break
            if max_pages is not None:
                run_len = min(run_len, max_pages - flushed)
            events.append(self.device.write(
                run_start * bs, int(run_len * bs * amp),
                priority=priority, stream=inode.id))
            cleaned.append((run_start, run_len))
            flushed += run_len
        durable = self.device.durable
        if events:
            if self.device.faults is None:
                yield self.sim.all_of(events)
                for run_start, run_len in cleaned:
                    cache.clean_range(run_start, run_len)
                    if durable is not None:
                        durable.note_write(
                            inode.id, run_start * bs,
                            min(run_len * bs,
                                inode.size - run_start * bs))
            else:
                # Settle each run: a failed/timed-out flush keeps its
                # pages dirty so the next flusher pass retries them.
                failed_pages = 0
                for ev, (run_start, run_len) in zip(events, cleaned):
                    ok = yield from self._settle_one(ev)
                    if ok:
                        cache.clean_range(run_start, run_len)
                        if durable is not None:
                            # Ledger sees exact file bytes (not the
                            # amplified device bytes): the write reached
                            # the device cache, volatile until a
                            # barrier.  Failed runs stay dirty and are
                            # never reported.
                            durable.note_write(
                                inode.id, run_start * bs,
                                min(run_len * bs,
                                    inode.size - run_start * bs))
                    else:
                        failed_pages += run_len
                        flushed -= run_len
                if failed_pages:
                    self.registry.count("writeback.failed_pages",
                                        failed_pages)
            if cache.dirty_pages == 0:
                self._dirty_inodes.discard(inode.id)
        if span is not None:
            span.end(pages=flushed)
        self.registry.count("writeback.pages", flushed)
        return flushed

    # -- maintenance ------------------------------------------------------------------

    def drop_caches(self) -> None:
        """Evict every clean cached page (experiment reset)."""
        for inode in self._inodes.values():
            if inode.cache.cached_pages:
                inode.cache.evict_range(0, inode.nblocks)

    def shutdown(self) -> None:
        if self._flusher_proc.is_alive:
            self._flusher_proc.interrupt("shutdown")
