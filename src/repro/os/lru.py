"""Active/inactive LRU lists at chunk granularity.

Linux reclaims page-cache memory from two LRU lists: pages enter the
inactive list, get promoted to the active list on a second reference, and
reclaim scans the inactive tail.  Tracking 4 KB pages individually would
dominate simulation cost, so this model tracks *chunks* (default 32
blocks = 128 KB) — the same granularity Linux effectively scans in — and
keeps the two-list promotion/demotion policy intact.

Each list is an ``OrderedDict`` mapping chunk key to its referenced
flag.  ``OrderedDict`` is backed by a C doubly-linked list, so insert,
``move_to_end``, tail pop, and delete are all O(1) intrusive-list
operations; storing the referenced bit as the *value* (rather than in a
per-chunk entry object) keeps the whole structure allocation-free on
the hot touch/insert paths.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

__all__ = ["ChunkKey", "ChunkLru"]

# (inode_id, chunk_index)
ChunkKey = tuple[int, int]


class ChunkLru:
    """Two-list LRU over (inode, chunk) keys."""

    __slots__ = ("_inactive", "_active")

    def __init__(self):
        # key -> referenced flag, MRU at the end.
        self._inactive: OrderedDict[ChunkKey, bool] = OrderedDict()
        self._active: OrderedDict[ChunkKey, bool] = OrderedDict()

    def __contains__(self, key: ChunkKey) -> bool:
        return key in self._inactive or key in self._active

    def __len__(self) -> int:
        return len(self._inactive) + len(self._active)

    @property
    def inactive_count(self) -> int:
        return len(self._inactive)

    @property
    def active_count(self) -> int:
        return len(self._active)

    def inserted(self, key: ChunkKey) -> None:
        """A chunk gained resident pages; new chunks enter inactive MRU."""
        active = self._active
        if key in active:
            active.move_to_end(key)
            return
        inactive = self._inactive
        if key in inactive:
            inactive.move_to_end(key)
            return
        inactive[key] = False

    def touched(self, key: ChunkKey) -> None:
        """A cache hit on the chunk: mark referenced / promote."""
        inactive = self._inactive
        referenced = inactive.get(key)
        if referenced is not None:
            if referenced:
                del inactive[key]
                self._active[key] = True
            else:
                inactive[key] = True
                inactive.move_to_end(key)
            return
        active = self._active
        if key in active:
            active.move_to_end(key)

    def removed(self, key: ChunkKey) -> None:
        """The chunk lost all resident pages (evicted or truncated)."""
        self._inactive.pop(key, None)
        self._active.pop(key, None)

    def pop_victim(self, exclude: Optional[set] = None) -> Optional[ChunkKey]:
        """Pick the reclaim victim: inactive tail, demoting from active
        when the inactive list runs low.

        ``exclude`` protects chunks that must not be evicted (the chunk
        an in-progress insert just populated — evicting it would livelock
        the filler, the way an unprotected kernel LRU would thrash).
        Linux's equivalent protections are page references held by the
        faulting path and inactive/active list balancing.
        """
        # Balance: keep a floor of demoted-active candidates so a lone
        # freshly-inserted chunk is never the only choice.
        inactive = self._inactive
        if len(inactive) <= len(exclude or ()) or not inactive:
            self._refill_inactive()
        skipped: list[tuple[ChunkKey, bool]] = []
        victim: Optional[ChunkKey] = None
        while inactive:
            key, referenced = inactive.popitem(last=False)
            if exclude and key in exclude:
                skipped.append((key, referenced))
                continue
            victim = key
            break
        # Restore protected chunks to the LRU head in their original
        # order: protection must not rejuvenate them, or every reclaim
        # scan would reset the age of whatever chunk an insert is
        # touching and cold chunks would survive indefinitely.
        for key, referenced in reversed(skipped):
            inactive[key] = referenced
            inactive.move_to_end(key, last=False)
        return victim

    def _refill_inactive(self, batch: int = 32) -> None:
        active = self._active
        inactive = self._inactive
        for _ in range(min(batch, len(active))):
            key, _referenced = active.popitem(last=False)
            inactive[key] = False

    def iter_inactive_oldest(self) -> Iterator[ChunkKey]:
        """Oldest-first view of the inactive list (for targeted eviction)."""
        return iter(list(self._inactive.keys()))

    def keys(self) -> Iterator[ChunkKey]:
        """Every tracked chunk key (both lists; audit membership check)."""
        yield from self._inactive.keys()
        yield from self._active.keys()


class PerInodeLru:
    """Per-inode LRU lists with round-robin reclaim (paper §4.6:
    "our future work will explore fine-grained (per-inode) LRUs within
    the OS to expedite memory reclamation").

    Keeps one :class:`ChunkLru` per inode and picks reclaim victims
    round-robin across inodes, so one huge streaming file cannot
    monopolise eviction decisions the way it can on a single global
    list.  Drop-in replacement for :class:`ChunkLru`.
    """

    __slots__ = ("_per_inode",)

    def __init__(self):
        self._per_inode: OrderedDict[int, ChunkLru] = OrderedDict()

    def _lru_for(self, inode_id: int, create: bool = False
                 ) -> Optional[ChunkLru]:
        lru = self._per_inode.get(inode_id)
        if lru is None and create:
            lru = ChunkLru()
            self._per_inode[inode_id] = lru
        return lru

    def __contains__(self, key: ChunkKey) -> bool:
        lru = self._per_inode.get(key[0])
        return lru is not None and key in lru

    def __len__(self) -> int:
        return sum(len(lru) for lru in self._per_inode.values())

    @property
    def inactive_count(self) -> int:
        return sum(lru.inactive_count for lru in self._per_inode.values())

    @property
    def active_count(self) -> int:
        return sum(lru.active_count for lru in self._per_inode.values())

    def inserted(self, key: ChunkKey) -> None:
        self._lru_for(key[0], create=True).inserted(key)

    def touched(self, key: ChunkKey) -> None:
        lru = self._per_inode.get(key[0])
        if lru is not None:
            lru.touched(key)

    def removed(self, key: ChunkKey) -> None:
        lru = self._per_inode.get(key[0])
        if lru is not None:
            lru.removed(key)
            if len(lru) == 0:
                self._per_inode.pop(key[0], None)

    def pop_victim(self, exclude: Optional[set] = None
                   ) -> Optional[ChunkKey]:
        """Round-robin across inodes: take from the least-recently
        rotated inode's inactive tail."""
        for _ in range(len(self._per_inode)):
            inode_id, lru = next(iter(self._per_inode.items()))
            self._per_inode.move_to_end(inode_id)
            victim = lru.pop_victim(exclude=exclude)
            if victim is not None:
                if len(lru) == 0:
                    self._per_inode.pop(inode_id, None)
                return victim
            if len(lru) == 0:
                self._per_inode.pop(inode_id, None)
        return None

    def iter_inactive_oldest(self) -> Iterator[ChunkKey]:
        for lru in self._per_inode.values():
            yield from lru.iter_inactive_oldest()

    def keys(self) -> Iterator[ChunkKey]:
        for lru in self._per_inode.values():
            yield from lru.keys()
