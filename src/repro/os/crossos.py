"""Cross-OS: exported cache state and the ``readahead_info`` syscall.

This is the kernel half of CrossPrefetch (§4.4, §4.7):

* a per-inode **cache-state bitmap**, mirrored from the page cache on
  every insert/evict, guarded by its own rw-lock so prefetch lookups do
  not touch the cache-tree lock (the *delineated path*);
* the multi-purpose **readahead_info** system call, which in one trip
  (1) checks the bitmap fast path for the requested range, (2) issues
  prefetch I/O for the missing runs only, (3) exports a bitmap window to
  user space, and (4) exports telemetry: per-file cached pages, demand
  hits/misses, and free memory;
* **relaxed prefetch limits** — requests up to ``cross_max_request_bytes``
  (64 MB), split into 2 MB device I/Os by the VFS chunking rule.

Unlike ``readahead(2)``, the call *reports what actually happened*, which
is the visibility that lets CROSS-LIB skip redundant prefetch syscalls.

Public entry points
-------------------

* :meth:`CrossOS.attach` / :meth:`CrossOS.detach` — wire a
  :class:`CrossState` (bitmap + rw-lock, mirror hooks into the page
  cache) onto an inode;
* :meth:`CrossOS.readahead_info` — the syscall itself (a simulation
  process: drive with ``yield from`` or ``sim.process``);
* :meth:`CrossOS.evict_range` — ``fadvise(DONTNEED)`` through Cross-OS
  accounting, used by CROSS-LIB aggressive reclaim.

Admission control
-----------------

``readahead_info`` is also where degradation and multi-tenant QoS
admission act on the prefetch stream:

* with no QoS manager, the *global* device
  :class:`~repro.sim.faults.DegradeController` clamps relaxed requests
  to ``cross_degraded_request_bytes`` (level 1) or skips submission
  entirely (level 2);
* with a QoS manager attached (``kernel.qos``), the clamp is
  **per-tenant** — only streams of the degraded tenant are clamped or
  paused — and the missing runs are additionally trimmed to the
  tenant's token-bucket byte budget
  (:meth:`repro.sim.qos.QosManager.trim_runs`).

Invariants the auditor checks here (``repro.sim.audit``): the exported
bitmap must mirror page-cache residency exactly (``check_mirror`` on
every insert/evict hook), and every block counted in
``cross.prefetch_blocks`` is attributed to exactly one tenant when QoS
is on (Σ per-tenant ``admitted_blocks`` equals that counter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.os.bitmap import BlockBitmap
from repro.os.inode import Inode
from repro.os.vfs import VFS, File
from repro.sim.sync import RwLock

__all__ = ["CacheInfo", "CrossOS", "CrossState"]


@dataclass
class CacheInfo:
    """The ``info`` structure passed to/from ``readahead_info``.

    Request fields are set by the caller; reply fields by the kernel.
    """

    # -- request ------------------------------------------------------------
    offset: int = 0                 # bytes
    nbytes: int = 0
    fetch_bitmap_only: bool = False  # control plane: no prefetch, just state
    # Control plane (§4.4): mark the file so the kernel ignores further
    # prefetch submissions for it (None = leave as is).
    set_prefetch_disabled: Optional[bool] = None
    max_request_bytes: Optional[int] = None  # relax the per-call cap (§4.7)
    # Selective bitmap copy (§4.4): (block_start, block_count); defaults
    # to the requested range.
    bitmap_window: Optional[tuple[int, int]] = None

    # -- reply ---------------------------------------------------------------
    bitmap_bits: int = 0
    bitmap_start: int = 0
    bitmap_count: int = 0
    cached_pages: int = 0            # resident/in-flight pages in range
    prefetch_submitted: int = 0      # blocks this call sent to the device
    truncated: bool = False          # request exceeded the per-call cap
    prefetch_disabled: bool = False  # the file's current control state
    file_cached_pages: int = 0       # telemetry: whole-file residency
    free_pages: int = 0
    total_pages: int = 0
    hit_pages: int = 0               # per-inode demand hits to date
    miss_pages: int = 0
    # Fires when the prefetch submitted by this call has fully landed
    # (kernel-internal convenience for worker pacing; already triggered
    # when nothing was submitted).
    completion: object = None


class CrossState:
    """Per-inode Cross-OS state: the exported bitmap and its lock."""

    def __init__(self, vfs: VFS, inode: Inode, shift: int):
        self.inode = inode
        self.prefetch_disabled = False
        self.bitmap = BlockBitmap(inode.nblocks, shift=shift)
        self.lock = RwLock(vfs.sim, name=f"inode_bitmap[{inode.id}]",
                           stats=vfs.registry.lock_stats("inode_bitmap"))
        # Seed from current residency, then mirror via hooks.
        for start, count in inode.cache.present.set_runs(0, inode.nblocks):
            self.bitmap.set_range(start, count)
        inode.cache.insert_hooks.append(self._on_insert)
        inode.cache.evict_hooks.append(self._on_evict)

    def _on_insert(self, start: int, count: int) -> None:
        if self.bitmap.nblocks < self.inode.nblocks:
            self.bitmap.resize(self.inode.nblocks)
        self.bitmap.set_range(start, count)
        aud = self.inode.cache.sim.auditor
        if aud is not None:
            aud.check_mirror(self, start, count)

    def _on_evict(self, start: int, count: int) -> None:
        self.bitmap.clear_range(start, count)
        aud = self.inode.cache.sim.auditor
        if aud is not None:
            aud.check_mirror(self, start, count)


class CrossOS:
    """The kernel-side CrossPrefetch component, attached to a VFS."""

    def __init__(self, vfs: VFS):
        self.vfs = vfs
        self.config = vfs.config
        self._states: dict[int, CrossState] = {}

    def attach(self, inode: Inode) -> CrossState:
        state = self._states.get(inode.id)
        if state is None:
            state = CrossState(self.vfs, inode,
                               self.config.cross_bitmap_shift)
            self._states[inode.id] = state
            inode.cross = state
        return state

    def state(self, inode: Inode) -> CrossState:
        return self.attach(inode)

    def detach(self, inode: Inode) -> None:
        self._states.pop(inode.id, None)
        inode.cross = None

    # -- the system call ----------------------------------------------------

    def readahead_info(self, file: File, info: CacheInfo) -> Generator:
        """The multi-purpose prefetch + cache-state-export syscall.

        Prefetch I/O is *submitted* (on the delineated prefetch path) but
        not waited for; the exported bitmap counts submitted blocks as
        present so the caller will not re-request them.
        """
        cfg = self.config
        vfs = self.vfs
        sim = vfs.sim
        inode = file.inode
        state = self.state(inode)
        obs = vfs._observer
        span = obs.begin("crossos", "readahead_info", inode=inode.id,
                         offset=info.offset, nbytes=info.nbytes,
                         bitmap_only=info.fetch_bitmap_only) \
            if obs is not None else None
        yield sim.timeout(cfg.syscall_overhead)
        vfs.registry.count("syscalls.readahead_info")

        if info.set_prefetch_disabled is not None:
            state.prefetch_disabled = info.set_prefetch_disabled

        cap = info.max_request_bytes or cfg.cross_max_request_bytes
        cap = min(cap, cfg.cross_max_request_bytes)
        # Graceful degradation under fault pressure: while throttled,
        # relaxed multi-MB requests shrink to the conservative window;
        # while paused, the syscall still serves bitmap + telemetry but
        # submits no prefetch at all.  With a QoS manager the level is
        # the *stream's tenant's* — co-tenants on healthy regions keep
        # their relaxed windows (the global clamp was the unfairness
        # this fixes); otherwise the device-global controller decides.
        degrade_paused = False
        qos = vfs.device.qos
        if qos is not None:
            level = qos.level_of(inode.id, sim.now)
            if level >= 2:
                degrade_paused = True
                vfs.registry.count("cross.degraded_skips")
            elif level == 1 and cap > cfg.cross_degraded_request_bytes:
                cap = cfg.cross_degraded_request_bytes
                vfs.registry.count("cross.degraded_clamps")
        else:
            degrade = vfs.device.degrade
            if degrade is not None:
                level = degrade.current_level(sim.now)
                if level >= 2:
                    degrade_paused = True
                    vfs.registry.count("cross.degraded_skips")
                elif level == 1 and cap > cfg.cross_degraded_request_bytes:
                    cap = cfg.cross_degraded_request_bytes
                    vfs.registry.count("cross.degraded_clamps")
        adaptive = vfs.device.adaptive
        if adaptive is not None:
            # Learned policy layer: the per-call cap becomes per-stream
            # — temporal/random-classified streams are clamped to their
            # pattern-class budget while sequential streams keep the
            # full relaxed cap (repro.crosslib.adaptive).
            cap = adaptive.request_cap(inode.id, cap, cfg.block_size,
                                       sim.now)
        nbytes = min(info.nbytes, max(0, inode.size - info.offset))
        if nbytes > cap:
            nbytes = cap
            info.truncated = True
        b0 = info.offset // cfg.block_size
        count = inode.blocks_of(info.offset + nbytes) - b0
        count = max(0, min(count, inode.nblocks - b0))

        # Fast path: bitmap lookup under the bitmap rw-lock; the cache
        # tree lock is never taken for the lookup (delineated path).
        ev = state.lock.acquire_read()
        if ev is not None:
            yield ev
        yield sim.timeout(cfg.bitmap_op)
        inflight = inode.inflight
        planned = inode.planned
        missing: list[tuple[int, int]] = []
        if count > 0:
            missing = state.bitmap.missing_runs(b0, count)
            # Subtract in-flight and planned blocks only when either
            # bitmap has bits at all — both empty is the common case,
            # and the nested subtraction is O(runs^2) in the worst case.
            if missing and (inflight.count_set() or planned.count_set()):
                subtracted: list[tuple[int, int]] = []
                for run_start, run_len in missing:
                    for mid_start, mid_len in inflight.missing_runs(
                            run_start, run_len):
                        subtracted.extend(planned.missing_runs(mid_start,
                                                               mid_len))
                missing = subtracted
        state.lock.release_read()

        # cached_pages reports residency, so it is computed from the
        # pre-admission miss total: blocks the token bucket trims away
        # below are still absent from the cache.
        missing_total = sum(n for _s, n in missing)
        submitted = 0
        if missing and not info.fetch_bitmap_only \
                and not state.prefetch_disabled and not degrade_paused:
            if qos is not None:
                # Token-bucket admission: trim this submission to the
                # tenant's remaining byte budget (block-granular).
                missing = qos.trim_runs(inode.id, missing,
                                        cfg.block_size, sim.now)
            submitted = sum(n for _s, n in missing)
        if submitted:
            vfs.registry.count("cross.prefetch_blocks", submitted)
            # Claim the runs before yielding so a concurrent caller in
            # the same instant cannot double-submit the same blocks.
            vfs.plan_runs(inode, missing)
            info.completion = sim.process(
                self._prefetch(inode, missing, parent=span),
                name=f"cross_prefetch[{inode.id}:{b0}+{count}]")
        else:
            done = sim.event()
            done.succeed()
            info.completion = done

        # Export the bitmap window (selective copy) and telemetry.
        win_start, win_count = info.bitmap_window or (b0, count)
        win_count = max(0, min(win_count, inode.nblocks - win_start))
        window = state.bitmap.window(win_start, win_count)
        window |= inflight.window(win_start, win_count)
        window |= planned.window(win_start, win_count)
        if submitted:
            sub_bm = BlockBitmap(inode.nblocks, shift=state.bitmap.shift)
            for run_start, run_len in missing:
                sub_bm.set_range(run_start, run_len)
            window |= sub_bm.window(win_start, win_count)
        copy_bytes = state.bitmap.export_nbytes(win_start, win_count)
        yield sim.timeout(cfg.bitmap_op + copy_bytes * cfg.bitmap_copy_per_byte)

        info.bitmap_bits = window
        info.bitmap_start = win_start
        info.bitmap_count = win_count
        info.cached_pages = count - missing_total if count > 0 else 0
        info.prefetch_submitted = submitted
        info.file_cached_pages = inode.cache.cached_pages
        info.free_pages = vfs.mem.free_pages
        info.total_pages = vfs.mem.total_pages
        info.hit_pages = inode.hit_pages
        info.miss_pages = inode.miss_pages
        info.prefetch_disabled = state.prefetch_disabled
        if span is not None:
            span.end(submitted=submitted, cached=info.cached_pages)
        if vfs.tracer is not None:
            vfs.tracer.record(sim.now, "readahead_info",
                              inode=inode.id, block=b0, count=count,
                              submitted=submitted,
                              cached=info.cached_pages)
        return info

    def _prefetch(self, inode: Inode,
                  runs: list[tuple[int, int]],
                  parent=None) -> Generator:
        """Delineated prefetch path: PREFETCH-priority device reads, one
        batched cache insert, one batched bitmap update."""
        cfg = self.config
        state = self.state(inode)
        obs = self.vfs.registry.observer
        span = obs.begin("crossos", "prefetch", parent=parent,
                         inode=inode.id,
                         blocks=sum(n for _s, n in runs)) \
            if obs is not None else None
        pages = yield from self.vfs.prefetch_runs(inode, runs, parent=span)
        # Bitmap updated once after completing the entire walk (§4.4);
        # the mirror hooks did the state change, this charges the cost.
        yield state.lock.acquire_write()
        yield self.vfs.sim.timeout(cfg.bitmap_op)
        state.lock.release_write()
        if span is not None:
            span.end(pages=pages)
        self.vfs.registry.count("cross.prefetched_pages", pages)
        return pages

    # -- eviction helper (used by CROSS-LIB aggressive reclaim) ----------------

    def evict_range(self, file: File, offset: int,
                    nbytes: int) -> Generator:
        """fadvise(DONTNEED) through the Cross-OS accounting."""
        result = yield from self.vfs.fadvise(
            file, "dontneed", offset, nbytes)
        return result
