"""The kernel bundle: one simulated machine.

A :class:`Kernel` ties together a simulator, a storage device, the
memory manager, the VFS, and (optionally) Cross-OS, mirroring the
evaluation machine in §5.1.  Experiments construct one kernel per run so
every run starts with a cold cache, like the paper's ``drop_caches``
before each experiment.

A kernel normally owns its :class:`~repro.sim.engine.Simulator` and
:class:`~repro.sim.stats.StatsRegistry`; the cluster subsystem
(``repro.cluster``) instead passes a *shared* simulator so many kernels
— one per simulated host — interleave in a single deterministic event
order and contend for shared backend devices.  The single-host default
(``sim=None``) constructs exactly what it always did, in the same
order, so every existing experiment's event sequence is byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.os.config import KernelConfig
from repro.os.crossos import CrossOS
from repro.os.inode import Inode
from repro.os.memory import MemoryManager
from repro.os.mmap import MmapRegion
from repro.os.vfs import VFS, File
from repro.sim.audit import Auditor
from repro.sim.engine import Simulator
from repro.sim.faults import FaultEngine, FaultSpec
from repro.sim.observe import Observer
from repro.sim.qos import QosManager, QosSpec
from repro.sim.stats import StatsRegistry
from repro.storage.device import StorageDevice
from repro.storage.nvme import NVMeDevice

if TYPE_CHECKING:  # pragma: no cover - import cycle guard: the
    # crosslib package imports this module (runtime needs Kernel), so
    # the reverse import is type-only; the constructor defers it.
    from repro.crosslib.adaptive import AdaptivePolicy, AdaptiveSpec

__all__ = ["Kernel", "KernelConfig"]

GB = 1 << 30

DeviceFactory = Callable[[Simulator, StatsRegistry], StorageDevice]


def _default_device(sim: Simulator,
                    registry: StatsRegistry) -> StorageDevice:
    return NVMeDevice(sim, stats_registry=registry)


class Kernel:
    """One simulated machine: sim + device + memory + VFS (+ Cross-OS)."""

    def __init__(self, *,
                 memory_bytes: int = 8 * GB,
                 config: Optional[KernelConfig] = None,
                 device_factory: DeviceFactory = _default_device,
                 cross_enabled: bool = False,
                 tracer=None,
                 emit_lock_holds: bool = False,
                 audit: bool = False,
                 faults: Optional[FaultSpec] = None,
                 qos: Optional[QosSpec] = None,
                 adaptive: "Optional[AdaptiveSpec]" = None,
                 sim: Optional[Simulator] = None,
                 registry: Optional[StatsRegistry] = None,
                 inode_id_start: int = 1):
        self.config = config or KernelConfig()
        # ``sim``/``registry`` are None for a standalone machine (the
        # single-host case every paper experiment runs); a fleet passes
        # its shared engine plus a per-host registry, and a disjoint
        # ``inode_id_start`` namespace so stream ids never collide on a
        # shared backend device.
        self.sim = sim if sim is not None else Simulator()
        self.registry = registry if registry is not None \
            else StatsRegistry()
        self.tracer = tracer
        # The invariant auditor must exist before any lock is built so
        # every primitive registers with it; ``shutdown`` runs its final
        # cross-layer check.  Off (None) it costs nothing.
        self.auditor: Optional[Auditor] = None
        if audit:
            self.auditor = Auditor(self.sim)
        # Passing a tracer turns on the span layer: an Observer is wired
        # into the registry (and thus every lock category) and the
        # memory manager before any subsystem is built, so span-derived
        # lock-wait totals match the registry's exactly.
        self.observer: Optional[Observer] = None
        if tracer is not None:
            self.observer = Observer(self.sim, tracer,
                                     emit_holds=emit_lock_holds)
            self.registry.attach_observer(self.observer)
        total_pages = max(1, memory_bytes // self.config.page_size)
        self.mem = MemoryManager(total_pages,
                                 chunk_blocks=self.config.chunk_blocks,
                                 per_inode_lru=self.config.per_inode_lru)
        self.mem.observer = self.observer
        self.device = device_factory(self.sim, self.registry)
        # Fault injection attaches between device and VFS so the VFS
        # sees the resilient submit path from its first request.  A
        # disabled spec attaches nothing — byte-identical healthy run.
        self.fault_engine: Optional[FaultEngine] = None
        if faults is not None and faults.enabled:
            self.fault_engine = FaultEngine(self.sim, faults)
            self.device.set_fault_engine(self.fault_engine)
        # Durable-damage scenarios additionally attach the persistence
        # ledger (pure bookkeeping; no events), which the VFS write
        # paths and ``repro.sim.crash`` consume.
        self.durable = None
        if faults is not None and faults.durable:
            from repro.storage.durable import DurableState
            self.durable = DurableState(faults.seed, torn=faults.torn)
            self.device.set_durable(self.durable)
        # Multi-tenant QoS attaches after the fault engine (it reuses
        # the spec's degrade policy per tenant) and before the VFS so
        # the read path sees device.qos from its first request.  A spec
        # with no tenants attaches nothing — byte-identical run.
        self.qos: Optional[QosManager] = None
        if qos is not None and qos.enabled:
            policy = faults.degrade \
                if faults is not None and faults.enabled else None
            self.qos = QosManager(self.sim, qos, policy=policy,
                                  registry=self.registry)
            self.device.set_qos(self.qos)
        # The learned adaptive prefetch policy attaches last of the
        # optional subsystems: it links into the device (retry/fault
        # feeds), the fault engine (fault-class attribution), and the
        # QoS manager (SLO-driven weight boosts).  None attaches
        # nothing — byte-identical run (the fig5 fingerprint contract).
        self.adaptive: "Optional[AdaptivePolicy]" = None
        if adaptive is not None and adaptive.enabled:
            from repro.crosslib.adaptive import AdaptivePolicy
            self.adaptive = AdaptivePolicy(self.sim, adaptive,
                                           registry=self.registry)
            self.device.set_adaptive(self.adaptive)
            if self.fault_engine is not None:
                self.fault_engine.adaptive = self.adaptive
            if self.qos is not None:
                self.qos.adaptive = self.adaptive
        self.vfs = VFS(self.sim, self.device, self.mem, self.config,
                       self.registry, inode_id_start=inode_id_start)
        self.vfs.tracer = tracer
        self.cross: Optional[CrossOS] = CrossOS(self.vfs) \
            if cross_enabled else None
        if self.auditor is not None:
            self.auditor.attach_kernel(self)

    # -- conveniences ----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def create_file(self, path: str, size: int, *,
                    tenant: Optional[str] = None,
                    region: Optional[int] = None) -> Inode:
        """Create a file; optionally tag its stream with a QoS tenant
        and pin it to a device region for region-scoped faults."""
        inode = self.vfs.create(path, size)
        if self.durable is not None:
            # Pre-populated contents already exist on media.
            self.durable.seed_file(inode.id, size)
        if self.cross is not None:
            self.cross.attach(inode)
        if self.qos is not None:
            self.qos.register_stream(inode.id, tenant)
        if region is not None:
            self.device.place_stream(inode.id, region)
        return inode

    def mmap(self, file: File) -> MmapRegion:
        return MmapRegion(self.vfs, file)

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until)

    def shutdown(self) -> None:
        self.vfs.shutdown()
        if self.auditor is not None:
            # The flusher interrupt above is delivered through the event
            # heap; drain it so the final audit sees a quiescent machine.
            self.sim.run()
            self.auditor.final_check(self)
