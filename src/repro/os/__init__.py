"""Simulated OS substrate: page cache, VFS, readahead, memory, Cross-OS.

This package rebuilds, in simulation, every kernel component CrossPrefetch
touches in the paper's Linux 5.14 implementation:

* :mod:`repro.os.bitmap` — block bitmaps (the per-inode cache-state bitmap
  Cross-OS exports to user space).
* :mod:`repro.os.pagecache` — the per-inode cache tree (Xarray stand-in)
  guarded by a tree-wide rw-lock, the source of the contention the paper
  measures.
* :mod:`repro.os.lru` / :mod:`repro.os.memory` — active/inactive LRU lists
  and the global memory manager with watermark-driven reclaim.
* :mod:`repro.os.readahead` — Linux-style incremental readahead (128 KB
  cap, 32-block batches, window grow/shrink).
* :mod:`repro.os.vfs` — open/read/write/fsync plus the prefetch syscall
  surface (readahead(2), fadvise, fincore, mincore, mmap).
* :mod:`repro.os.crossos` — the paper's OS component: per-inode cache
  bitmaps, the ``readahead_info`` system call, the delineated prefetch
  path, and exported telemetry.
"""

from repro.os.bitmap import BlockBitmap
from repro.os.inode import Inode
from repro.os.kernel import Kernel, KernelConfig
from repro.os.memory import MemoryManager
from repro.os.pagecache import PageCache
from repro.os.vfs import FADV_DONTNEED # noqa: F401  (re-exported constants)
from repro.os.vfs import (
    FADV_NORMAL,
    FADV_RANDOM,
    FADV_SEQUENTIAL,
    FADV_WILLNEED,
    File,
    VFS,
)
from repro.os.crossos import CacheInfo, CrossOS

__all__ = [
    "BlockBitmap",
    "CacheInfo",
    "CrossOS",
    "FADV_DONTNEED",
    "FADV_NORMAL",
    "FADV_RANDOM",
    "FADV_SEQUENTIAL",
    "FADV_WILLNEED",
    "File",
    "Inode",
    "Kernel",
    "KernelConfig",
    "MemoryManager",
    "PageCache",
    "VFS",
]
