"""Global memory manager: page accounting and watermark reclaim.

The paper's motivation §3.3 is that Linux prefetches conservatively no
matter how much memory is free, and its key mechanism (§4.6) needs the
OS to expose *free memory* so CROSS-LIB can throttle aggressive
prefetching.  This manager is that source of truth: it charges page-cache
insertions, reclaims from the chunk LRU when the total would be
exceeded, and exposes free-page telemetry to ``readahead_info``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.os.lru import ChunkKey, ChunkLru, PerInodeLru

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.os.pagecache import PageCache

__all__ = ["MemoryManager"]


class MemoryManager:
    """Tracks page-cache memory for the whole simulated machine."""

    def __init__(self, total_pages: int, chunk_blocks: int = 32,
                 per_inode_lru: bool = False):
        if total_pages <= 0:
            raise ValueError(f"total_pages must be positive: {total_pages}")
        if chunk_blocks <= 0:
            raise ValueError(f"chunk_blocks must be positive: {chunk_blocks}")
        self.total_pages = total_pages
        self.chunk_blocks = chunk_blocks
        self.used_pages = 0
        self.lru = PerInodeLru() if per_inode_lru else ChunkLru()
        self._caches: dict[int, "PageCache"] = {}
        self.reclaimed_pages = 0
        self.reclaim_passes = 0
        # Span observer (repro.sim.observe.Observer) or None; reclaim
        # passes surface as instant events on the "memory" track.
        self.observer = None
        # Optional hook fired as (inode_id, block_start, nblocks) whenever
        # reclaim evicts pages — Cross-OS uses it to clear bitmap bits.
        self.evict_hooks: list[Callable[[int, int, int], None]] = []

    # -- registration ------------------------------------------------------

    def register_cache(self, cache: "PageCache") -> None:
        self._caches[cache.inode_id] = cache

    def forget_cache(self, inode_id: int) -> None:
        cache = self._caches.pop(inode_id, None)
        if cache is not None:
            for chunk in cache.resident_chunks():
                self.lru.removed((inode_id, chunk))

    # -- telemetry ---------------------------------------------------------

    @property
    def free_pages(self) -> int:
        return max(0, self.total_pages - self.used_pages)

    @property
    def free_fraction(self) -> float:
        return self.free_pages / self.total_pages

    # -- accounting (called by PageCache) ------------------------------------

    def charge(self, npages: int,
               exclude: Optional[set] = None) -> None:
        """Account freshly inserted pages, reclaiming if needed.

        ``exclude`` lists chunk keys the triggering insert just
        populated; reclaim must not pick them or the filler livelocks.
        """
        self.used_pages += npages
        if self.used_pages > self.total_pages:
            self.reclaim(self.used_pages - self.total_pages,
                         exclude=exclude)

    def uncharge(self, npages: int) -> None:
        self.used_pages -= npages
        if self.used_pages < 0:
            raise RuntimeError("page accounting went negative")

    def chunk_inserted(self, key: ChunkKey) -> None:
        self.lru.inserted(key)

    def chunk_touched(self, key: ChunkKey) -> None:
        self.lru.touched(key)

    def chunk_removed(self, key: ChunkKey) -> None:
        self.lru.removed(key)

    # -- reclaim -------------------------------------------------------------

    def reclaim(self, npages: int,
                exclude: Optional[set] = None) -> int:
        """Evict at least ``npages`` pages from the LRU; returns freed."""
        freed = 0
        self.reclaim_passes += 1
        while freed < npages:
            victim = self.lru.pop_victim(exclude=exclude)
            if victim is None:
                break  # nothing evictable; allow temporary overshoot
            inode_id, chunk = victim
            cache = self._caches.get(inode_id)
            if cache is None:
                continue
            freed += cache.evict_chunk(chunk)
        self.reclaimed_pages += freed
        if self.observer is not None:
            self.observer.instant("memory", "reclaim",
                                  requested=npages, freed=freed,
                                  used_pages=self.used_pages)
        return freed

    def cache_for(self, inode_id: int) -> Optional["PageCache"]:
        return self._caches.get(inode_id)

    def notify_evicted(self, inode_id: int, start: int, nblocks: int) -> None:
        for hook in self.evict_hooks:
            hook(inode_id, start, nblocks)
