"""CrossPrefetch (ASPLOS 2024) — full-system reproduction in simulation.

Packages:

* :mod:`repro.sim` — deterministic discrete-event kernel.
* :mod:`repro.storage` — NVMe / NVMe-oF device models, FS profiles.
* :mod:`repro.os` — simulated kernel: page cache, readahead, memory
  reclaim, VFS + prefetch syscalls, and Cross-OS (``readahead_info``).
* :mod:`repro.crosslib` — CROSS-LIB, the user-level runtime.
* :mod:`repro.runtimes` — the paper's comparison approaches.
* :mod:`repro.workloads` — microbench, LSM/db_bench, YCSB, Snappy,
  Filebench, mmap benchmarks.
* :mod:`repro.harness` — experiment runners and paper-style reports.

See ``README.md`` for a quickstart, ``DESIGN.md`` for the architecture
and substitution map, and ``EXPERIMENTS.md`` for paper-vs-measured
results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
