"""APPonly: application-tailored prefetching (Table 2 row 1).

This reproduces how production applications like RocksDB drive the
stock interfaces (§3.1):

* files the application believes are **random** get
  ``fadvise(RANDOM)`` — OS readahead off, no application prefetching
  (RocksDB "proactively deactivates prefetching ... mistrusting the
  OS");
* files the application believes are **sequential** get
  ``fadvise(SEQUENTIAL)`` plus explicit ``readahead(2)`` calls issued
  ahead of the stream.  The application asks for ``app_window_bytes``
  (2 MB) per call and *assumes* the whole window arrived — but the
  kernel silently clamps each call to 128 KB, which is exactly the
  Fig. 1 under-prefetch pathology;
* mmap regions the application believes are random get
  ``madvise(RANDOM)`` (Table 4's collapsing APPonly row).
"""

from __future__ import annotations

from typing import Generator

from repro.os.kernel import Kernel
from repro.os.vfs import FADV_RANDOM, FADV_SEQUENTIAL
from repro.runtimes.base import (
    HINT_RANDOM,
    HINT_SEQUENTIAL,
    Handle,
    IORuntime,
    MmapHandle,
)

__all__ = ["AppOnlyRuntime"]

MB = 1 << 20


class AppOnlyRuntime(IORuntime):
    name = "APPonly"

    def __init__(self, kernel: Kernel, app_window_bytes: int = 2 * MB,
                 lookahead_bytes: int = 1 * MB):
        super().__init__(kernel)
        self.app_window_bytes = app_window_bytes
        self.lookahead_bytes = lookahead_bytes

    def _on_open(self, handle: Handle) -> Generator:
        if handle.hint == HINT_RANDOM:
            yield from self.vfs.fadvise(handle.file, FADV_RANDOM)
        elif handle.hint == HINT_SEQUENTIAL:
            yield from self.vfs.fadvise(handle.file, FADV_SEQUENTIAL)
            yield from self._app_readahead(handle, 0)

    def _on_mmap_open(self, mh: MmapHandle) -> Generator:
        if mh.hint == HINT_RANDOM:
            mh.region.madvise_random()
        return
        yield  # pragma: no cover - generator marker

    def pread(self, handle: Handle, offset: int,
              nbytes: int) -> Generator:
        if handle.hint == HINT_SEQUENTIAL:
            yield from self._maybe_readahead(handle, offset + nbytes)
        result = yield from self.vfs.read(handle.file, offset, nbytes)
        return result

    # -- application prefetch logic ---------------------------------------------

    def _maybe_readahead(self, handle: Handle, upto: int) -> Generator:
        """Keep the believed-prefetched frontier ``lookahead`` ahead."""
        bs = self.kernel.config.block_size
        frontier = handle.next_prefetch_block * bs
        if frontier < min(upto + self.lookahead_bytes, handle.size):
            yield from self._app_readahead(handle, frontier)

    def _app_readahead(self, handle: Handle, offset: int) -> Generator:
        """One application readahead: asks for the full window, then
        *assumes* it all arrived (the return value is ignored, as real
        applications must — readahead(2) reports nothing)."""
        bs = self.kernel.config.block_size
        yield from self.vfs.readahead(handle.file, offset,
                                      self.app_window_bytes)
        believed = min(offset + self.app_window_bytes, handle.size)
        handle.next_prefetch_block = (believed + bs - 1) // bs
