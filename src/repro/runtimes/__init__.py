"""I/O runtimes: the comparison approaches of Table 2.

Every workload drives an :class:`~repro.runtimes.base.IORuntime`; the
factory builds the paper's comparison configurations by name:

========================  =====================================================
``APPonly``               application-tailored readahead calls; prefetch
                          disabled for random access (stock RocksDB behaviour)
``APPonly[fincore]``      APPonly plus a background thread polling fincore
``OSonly``                everything delegated to Linux readahead
``CrossP[+predict]``      cross-layered prediction, OS limits kept
``CrossP[+predict+opt]``  + relaxed limits + aggressive prefetch/eviction
``CrossP[+fetchall+opt]`` prefetch whole files, memory-insensitive
``CrossP[+visibility]``             Table-5 ablation step 1
``CrossP[+visibility+rangetree]``   Table-5 ablation step 2
========================  =====================================================
"""

from repro.runtimes.apponly import AppOnlyRuntime
from repro.runtimes.base import (
    HINT_NORMAL,
    HINT_RANDOM,
    HINT_SEQUENTIAL,
    Handle,
    IORuntime,
    MmapHandle,
)
from repro.runtimes.factory import APPROACHES, build_runtime
from repro.runtimes.fincore import FincoreRuntime
from repro.runtimes.osonly import OsOnlyRuntime

__all__ = [
    "APPROACHES",
    "AppOnlyRuntime",
    "FincoreRuntime",
    "HINT_NORMAL",
    "HINT_RANDOM",
    "HINT_SEQUENTIAL",
    "Handle",
    "IORuntime",
    "MmapHandle",
    "OsOnlyRuntime",
    "build_runtime",
]
