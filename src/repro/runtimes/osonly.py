"""OSonly: prefetching fully delegated to the kernel (Table 2 row 2).

The application gives no hints and issues no prefetch syscalls; the
stock incremental readahead engine does whatever its heuristics decide,
capped at 128 KB per window.
"""

from __future__ import annotations

from repro.runtimes.base import IORuntime

__all__ = ["OsOnlyRuntime"]


class OsOnlyRuntime(IORuntime):
    name = "OSonly"
