"""The runtime interface every workload programs against.

A runtime owns the prefetching *policy*; the kernel owns the mechanism.
Workloads pass access hints at open (what the application believes its
pattern is — e.g. RocksDB marks database files random), then issue
pread/pwrite.  What each runtime does with the hint is the experiment.

All I/O methods are simulation generators: call them with ``yield from``
inside a simulated process.
"""

from __future__ import annotations

from typing import Generator

from repro.os.kernel import Kernel
from repro.os.mmap import MmapRegion
from repro.os.vfs import File

__all__ = [
    "HINT_NORMAL",
    "HINT_RANDOM",
    "HINT_SEQUENTIAL",
    "Handle",
    "IORuntime",
    "MmapHandle",
]

HINT_NORMAL = "normal"
HINT_SEQUENTIAL = "seq"
HINT_RANDOM = "rand"


class Handle:
    """An application-visible open file."""

    def __init__(self, file: File, hint: str):
        self.file = file
        self.hint = hint
        # Policy scratch space (e.g. APPonly's next readahead offset).
        self.next_prefetch_block = 0

    @property
    def size(self) -> int:
        return self.file.inode.size

    @property
    def pos(self) -> int:
        return self.file.pos

    @pos.setter
    def pos(self, value: int) -> None:
        self.file.pos = value


class MmapHandle:
    """An application-visible memory mapping."""

    def __init__(self, region: MmapRegion, hint: str):
        self.region = region
        self.hint = hint

    @property
    def size(self) -> int:
        return self.region.inode.size


class IORuntime:
    """Base class: direct pass-through to the kernel (no policy)."""

    name = "base"

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.vfs = kernel.vfs
        self.sim = kernel.sim

    # -- file I/O -----------------------------------------------------------

    def open(self, path: str, hint: str = HINT_NORMAL) -> Generator:
        file = yield from self.vfs.open(path)
        handle = Handle(file, hint)
        yield from self._on_open(handle)
        return handle

    def close(self, handle: Handle) -> Generator:
        yield from self._on_close(handle)
        yield from self.vfs.close(handle.file)

    def pread(self, handle: Handle, offset: int,
              nbytes: int) -> Generator:
        # Return the VFS generator directly instead of delegating with
        # ``yield from``: a wrapper frame here would be re-entered on
        # every event resume of every read.
        return self.vfs.read(handle.file, offset, nbytes)

    def read_seq(self, handle: Handle, nbytes: int) -> Generator:
        result = yield from self.pread(handle, handle.pos, nbytes)
        handle.pos += result.nbytes
        return result

    def pwrite(self, handle: Handle, offset: int,
               nbytes: int) -> Generator:
        return self.vfs.write(handle.file, offset, nbytes)

    def write_seq(self, handle: Handle, nbytes: int) -> Generator:
        written = yield from self.pwrite(handle, handle.pos, nbytes)
        handle.pos += written
        return written

    def fsync(self, handle: Handle) -> Generator:
        yield from self.vfs.fsync(handle.file)

    # -- mmap ------------------------------------------------------------------

    def mmap_open(self, path: str, hint: str = HINT_NORMAL) -> Generator:
        file = yield from self.vfs.open(path)
        region = self.kernel.mmap(file)
        mh = MmapHandle(region, hint)
        yield from self._on_mmap_open(mh)
        return mh

    def mmap_access(self, mh: MmapHandle, offset: int,
                    nbytes: int) -> Generator:
        return mh.region.access(offset, nbytes)

    # -- policy hooks ---------------------------------------------------------------

    def _on_open(self, handle: Handle) -> Generator:
        return
        yield  # pragma: no cover - generator marker

    def _on_close(self, handle: Handle) -> Generator:
        return
        yield  # pragma: no cover - generator marker

    def _on_mmap_open(self, mh: MmapHandle) -> Generator:
        return
        yield  # pragma: no cover - generator marker

    # -- lifecycle -----------------------------------------------------------------

    def teardown(self) -> None:
        """Stop any background threads the runtime started."""
