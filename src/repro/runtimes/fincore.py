"""APPonly[fincore]: cache-aware prefetching the pre-CrossPrefetch way.

The Fig. 2 motivation baseline: application prefetching guided by the
``fincore`` residency syscall, run from a background prefetch thread.
Each poll locks the process mm lock and walks the cache tree, so the
visibility itself interferes with the I/O it is trying to help — the
concurrency pathology §3.2 quantifies (34% lock time in Table 1).
"""

from __future__ import annotations

from typing import Generator

from repro.os.kernel import Kernel
from repro.os.vfs import FADV_RANDOM
from repro.runtimes.base import HINT_RANDOM, Handle, IORuntime
from repro.sim.sync import Condition

__all__ = ["FincoreRuntime"]

MB = 1 << 20


class FincoreRuntime(IORuntime):
    name = "APPonly[fincore]"

    def __init__(self, kernel: Kernel, window_bytes: int = 1 * MB,
                 batch_files: int = 4):
        super().__init__(kernel)
        self.window_bytes = window_bytes
        self.batch_files = batch_files
        self._watched: list[Handle] = []
        self._rr = 0  # round-robin cursor
        self._kick = Condition(self.sim, "fincore_kick")
        self._worker = self.sim.process(self._prefetch_thread(),
                                        name="fincore_worker")

    def _on_open(self, handle: Handle) -> Generator:
        if handle.hint == HINT_RANDOM:
            # Like APPonly, distrust OS heuristics for random files...
            yield from self.vfs.fadvise(handle.file, FADV_RANDOM)
        # ...but watch every file for background prefetching.
        handle.last_offset = 0
        self._watched.append(handle)

    def _on_close(self, handle: Handle) -> Generator:
        if handle in self._watched:
            self._watched.remove(handle)
        return
        yield  # pragma: no cover - generator marker

    def pread(self, handle: Handle, offset: int,
              nbytes: int) -> Generator:
        # Synchronous pre-work, then hand back the VFS generator; no
        # wrapper frame on the per-event resume path.
        handle.last_offset = offset + nbytes
        self._kick.notify_all()
        return self.vfs.read(handle.file, offset, nbytes)

    # -- the background prefetch thread ----------------------------------------

    def _prefetch_thread(self) -> Generator:
        cfg = self.kernel.config
        bs = cfg.block_size
        cap_bytes = cfg.ra_syscall_cap_blocks * bs
        while True:
            yield self._kick.wait()
            if not self._watched:
                continue
            # Serve a round-robin batch of watched files.
            for _ in range(min(self.batch_files, len(self._watched))):
                if not self._watched:
                    break
                self._rr = (self._rr + 1) % len(self._watched)
                handle = self._watched[self._rr]
                # The expensive part: fincore walks the cache tree under
                # the mm lock to learn what is resident.
                snapshot = yield from self.vfs.fincore(handle.file)
                b0 = handle.last_offset // bs
                want = min(self.window_bytes // bs,
                           max(0, handle.file.inode.nblocks - b0))
                if want <= 0:
                    continue
                for run_start, run_len in snapshot.missing_runs(b0, want):
                    pos = run_start
                    remaining = run_len
                    while remaining > 0:
                        n = min(remaining, cap_bytes // bs)
                        yield from self.vfs.readahead(
                            handle.file, pos * bs, n * bs)
                        pos += n
                        remaining -= n

    def teardown(self) -> None:
        if self._worker.is_alive:
            self._worker.interrupt("teardown")
