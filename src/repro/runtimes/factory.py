"""Build the paper's comparison approaches (Table 2) by name."""

from __future__ import annotations

from typing import Callable, Optional

from repro.crosslib.config import CrossLibConfig
from repro.os.kernel import Kernel
from repro.runtimes.apponly import AppOnlyRuntime
from repro.runtimes.base import IORuntime
from repro.runtimes.fincore import FincoreRuntime
from repro.runtimes.osonly import OsOnlyRuntime

__all__ = ["APPROACHES", "build_runtime", "needs_cross"]


def _cross(name: str, **flags) -> Callable[[Kernel], IORuntime]:
    def make(kernel: Kernel,
             config: Optional[CrossLibConfig] = None) -> IORuntime:
        # Imported lazily: crosslib.runtime itself imports runtimes.base,
        # so a module-level import here would be circular.
        from repro.crosslib.runtime import CrossLibRuntime
        cfg = config or CrossLibConfig()
        for key, value in flags.items():
            setattr(cfg, key, value)
        runtime = CrossLibRuntime(kernel, cfg)
        runtime.name = name
        return runtime
    return make


_BUILDERS: dict[str, Callable] = {
    "APPonly": lambda kernel, config=None: AppOnlyRuntime(kernel),
    "APPonly[fincore]": lambda kernel, config=None: FincoreRuntime(kernel),
    "OSonly": lambda kernel, config=None: OsOnlyRuntime(kernel),
    # Table 2 CrossPrefetch rows.
    "CrossP[+predict]": _cross(
        "CrossP[+predict]",
        predict=True, fetchall=False, range_tree=True,
        relax_limits=False, aggressive=False),
    "CrossP[+predict+opt]": _cross(
        "CrossP[+predict+opt]",
        predict=True, fetchall=False, range_tree=True,
        relax_limits=True, aggressive=True),
    "CrossP[+fetchall+opt]": _cross(
        "CrossP[+fetchall+opt]",
        predict=False, fetchall=True, range_tree=True,
        relax_limits=True, aggressive=False),
    # Table 5 ablation steps.
    "CrossP[+visibility]": _cross(
        "CrossP[+visibility]",
        predict=True, fetchall=False, range_tree=False,
        relax_limits=False, aggressive=False),
    "CrossP[+visibility+rangetree]": _cross(
        "CrossP[+visibility+rangetree]",
        predict=True, fetchall=False, range_tree=True,
        relax_limits=False, aggressive=False),
    "CrossP[+visibility+rangetree+aggr]": _cross(
        "CrossP[+visibility+rangetree+aggr]",
        predict=True, fetchall=False, range_tree=True,
        relax_limits=True, aggressive=True),
}

APPROACHES = tuple(_BUILDERS)

_CROSS_NAMES = frozenset(
    name for name in _BUILDERS if name.startswith("CrossP"))


def needs_cross(approach: str) -> bool:
    """Whether the approach requires a Cross-OS-enabled kernel."""
    return approach in _CROSS_NAMES


def build_runtime(approach: str, kernel: Kernel,
                  config: Optional[CrossLibConfig] = None) -> IORuntime:
    """Construct the named Table-2 approach on ``kernel``."""
    builder = _BUILDERS.get(approach)
    if builder is None:
        raise ValueError(
            f"unknown approach {approach!r}; choose from {APPROACHES}")
    return builder(kernel, config)
