"""Leap-style trend prefetching (extra baseline from related work).

Leap (Al Maruf & Chowdhury, ATC '20 — [6] in the paper) prefetches
remote memory by finding the *majority access-stride trend* in a window
of recent accesses and prefetching along it.  The paper cites it as a
state-of-the-art OS technique that still "fails to address the mismatch
between application requests and OS prefetching".

This runtime reproduces the algorithm at the file level: a per-file
sliding window of recent block deltas; if a majority delta exists, a
prefetch of ``window_scale`` strides along that delta is issued through
the plain readahead path (no cache-state visibility, no user bitmap —
deliberately, since that is what CrossPrefetch adds on top).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Generator

from repro.os.kernel import Kernel
from repro.runtimes.base import Handle, IORuntime
from repro.storage.device import PREFETCH

__all__ = ["LeapRuntime"]


class _TrendState:
    """Per-inode sliding access-delta window."""

    def __init__(self, window: int):
        self.deltas: deque[int] = deque(maxlen=window)
        self.last_block: int | None = None

    def observe(self, block: int) -> None:
        if self.last_block is not None:
            self.deltas.append(block - self.last_block)
        self.last_block = block

    def majority_delta(self) -> int | None:
        """The majority trend, if one exists (Boyer-Moore style check)."""
        if len(self.deltas) < 2:
            return None
        delta, count = Counter(self.deltas).most_common(1)[0]
        if delta == 0 or count * 2 <= len(self.deltas):
            return None
        return delta


class LeapRuntime(IORuntime):
    name = "Leap"

    def __init__(self, kernel: Kernel, window: int = 8,
                 window_scale: int = 8):
        super().__init__(kernel)
        self.window = window
        self.window_scale = window_scale
        self._trends: dict[int, _TrendState] = {}
        self.trend_prefetches = 0

    def _on_open(self, handle: Handle) -> Generator:
        # Leap replaces the stock readahead heuristics entirely.
        handle.file.ra.enabled = False
        self._trends.setdefault(handle.file.inode.id,
                                _TrendState(self.window))
        return
        yield  # pragma: no cover - generator marker

    def pread(self, handle: Handle, offset: int,
              nbytes: int) -> Generator:
        inode = handle.file.inode
        bs = self.kernel.config.block_size
        block = offset // bs
        trend = self._trends.setdefault(inode.id,
                                        _TrendState(self.window))
        trend.observe(block)
        delta = trend.majority_delta()
        if delta is not None:
            self._prefetch_trend(inode, block, delta)
        result = yield from self.vfs.read(handle.file, offset, nbytes)
        return result

    def _prefetch_trend(self, inode, block: int, delta: int) -> None:
        """Prefetch the next ``window_scale`` strides along the trend."""
        nblocks = inode.nblocks
        targets: list[tuple[int, int]] = []
        pos = block
        span = max(1, abs(delta))
        for _ in range(self.window_scale):
            pos += delta
            if pos < 0 or pos >= nblocks:
                break
            start = min(pos, pos + delta + 1) if delta < 0 else pos
            start = max(0, min(start, nblocks - 1))
            count = min(span, nblocks - start)
            if count > 0:
                targets.append((start, count))
        if not targets:
            return
        self.trend_prefetches += 1
        lo = min(s for s, _c in targets)
        hi = max(s + c for s, c in targets)
        self.vfs._spawn_fill(inode, lo, hi - lo, priority=PREFETCH,
                             tag="leap_trend")
