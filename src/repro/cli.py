"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show the available comparison approaches and experiments.
``experiment <name>``
    Run one paper experiment (e.g. ``fig7b``) and print its table.
``workload``
    Run a single workload under chosen approaches with custom knobs —
    the quick way to poke at the system without writing a script.
``trace <experiment>``
    Run an experiment with span tracing on and export one Chrome
    ``trace_event`` JSON plus one lock-contention profile per
    (workload, approach) run.  Open the ``.trace.json`` files in
    https://ui.perfetto.dev or ``chrome://tracing``.
``check [names...]``
    Run experiment presets at quick scale with the invariant auditor
    attached (conservation, deadlock, leak checks), plus a randomized
    concurrent stress harness.  Non-zero exit on any violation.
    ``--jobs N`` fans the presets out across worker processes with
    output identical to a serial run.
``chaos``
    Run the resilience experiment: sweep a fault preset across
    intensities and report throughput, p99 latency, and fault counters
    for vanilla-OS readahead vs CrossPrefetch.  ``--audit`` attaches
    the invariant auditor to every chaotic run.
``bench [names...]``
    Run the simulation-core performance suite (wall seconds and
    simulated events/sec per benchmark); ``--baseline`` gates against
    a committed BENCH_sim_core.json.
``recover``
    Crash-point fuzz smoke sweep: crash a seeded LSM write workload at
    several points under the durable-damage fault preset, recover each
    crash on a fresh audited kernel, and check the recovery invariants
    (recovered DB ≡ committed WAL prefix, no acknowledged-durable
    bytes lost).  On a violation the smallest failing crash ordinal is
    reported.  Non-zero exit on any violation.
``scale``
    Cluster-scale sweep: simulate a fleet of hosts sharing remote-NVMe
    backends under open-loop (arrival-driven) load and report how the
    CrossPrefetch-vs-OSonly throughput gap and p99 latency move with
    host count × tenant count.  ``--audit`` attaches the fleet-wide
    invariant auditor; ``--jobs N`` fans sweep points across worker
    processes with output identical to a serial run.

Multi-tenant QoS: ``--tenants name[:weight[:slo_us]],...`` on
``experiment``/``workload``/``chaos`` attaches a per-tenant QoS manager
(token buckets, fair-share prefetch slots, per-tenant degradation);
``--fault-region N`` scopes a fault preset to one device region.  The
``fairness`` experiment demonstrates both (see ``docs/qos.md``).

Examples::

    python -m repro list
    python -m repro experiment fig2
    python -m repro check fig2 fig5 --stress 5 --jobs 8
    python -m repro chaos --preset storm --quick --audit
    python -m repro check fig5 --faults flaky --stress 2
    python -m repro bench --baseline BENCH_sim_core.json
    python -m repro recover --seeds 11 --seeds 23 --points 4
    python -m repro experiment recovery --seed 1
    python -m repro trace fig2 --quick --out traces
    python -m repro experiment fairness --seed 1
    python -m repro scale --hosts 1 --hosts 4 --tenant-counts 2 \
        --audit --jobs 4 --fingerprints
    python -m repro workload --kind microbench --pattern rand \
        --approach OSonly --approach "CrossP[+predict+opt]" \
        --tenants "A:2,B:1" --faults storm --fault-region 0
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Optional, Sequence

from repro.harness import experiments as exp
from repro.harness import runner
from repro.harness.metrics import ApproachMetrics
from repro.harness.report import format_table
from repro.crosslib.adaptive import AdaptiveSpec
from repro.harness.runner import (
    TraceSpec,
    adapting,
    auditing,
    faulting,
    tenancy,
    tracing,
)
from repro.os.kernel import Kernel
from repro.runtimes.factory import APPROACHES, build_runtime, needs_cross
from repro.sim.faults import PRESETS, FaultSpec, make_preset
from repro.sim.qos import QosSpec
from repro.sim.trace import Tracer

__all__ = ["main"]

MB = 1 << 20

EXPERIMENTS: dict[str, Callable] = {
    "fig2": exp.run_fig2_motivation,
    "fig5": exp.run_fig5_microbench,
    "fig6": exp.run_fig6_shared_rw,
    "tab4": exp.run_tab4_mmap,
    "fig7a": exp.run_fig7a_threads,
    "fig7b": exp.run_fig7b_patterns,
    "fig7c": exp.run_fig7c_memory,
    "fig7d": exp.run_fig7d_f2fs,
    "tab5": exp.run_tab5_breakdown,
    "fig10": exp.run_fig10_prefetch_limit,
    "fig8a": exp.run_fig8a_remote,
    "fig8b": exp.run_fig8b_filebench,
    "fig9a": exp.run_fig9a_ycsb,
    "fig9b": exp.run_fig9b_snappy,
    "resilience": exp.run_resilience,
    "fairness": exp.run_fairness,
    "recovery": exp.run_recovery,
    "scale": exp.run_scale,
    "adaptive": exp.run_adaptive,
}


def _fault_spec(args: argparse.Namespace) -> Optional[FaultSpec]:
    """Build the fault spec requested by ``--faults`` (None if absent)."""
    preset = getattr(args, "faults", None)
    if not preset or preset == "none":
        return None
    return make_preset(preset, seed=getattr(args, "seed", 0),
                       intensity=getattr(args, "fault_intensity", 1.0),
                       region=getattr(args, "fault_region", None))


def _adaptive_spec(args: argparse.Namespace) -> Optional[AdaptiveSpec]:
    """Build the adaptive-policy spec for ``--adaptive`` (None if off)."""
    if not getattr(args, "adaptive", False):
        return None
    return AdaptiveSpec(seed=getattr(args, "seed", 0))


def _qos_spec(args: argparse.Namespace) -> Optional[QosSpec]:
    """Build the QoS spec requested by ``--tenants`` (None if absent)."""
    text = getattr(args, "tenants", None)
    if not text:
        return None
    return QosSpec.parse(text)


def _add_seed_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=0,
                   help="base random seed (default 0); echoed in the "
                        "output so runs are reproducible")


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--faults", default=None, choices=PRESETS,
                   metavar="PRESET",
                   help="inject storage faults from a named preset "
                        f"({', '.join(PRESETS)})")
    p.add_argument("--fault-intensity", type=float, default=1.0,
                   metavar="X",
                   help="scale the fault preset's probabilities and "
                        "window frequency (default 1.0)")
    p.add_argument("--fault-region", type=int, default=None, metavar="N",
                   help="scope per-request faults to streams placed in "
                        "device region N (default: device-wide)")


def _add_adaptive_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--adaptive", action="store_true",
                   help="attach the learned pattern-adaptive prefetch "
                        "policy (per-stream classifier + perceptron "
                        "admission; see docs/prefetching.md)")


def _add_tenant_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--tenants", default=None, metavar="SPEC",
                   help="enable multi-tenant QoS: comma-separated "
                        "name[:weight[:slo_us]] entries, e.g. "
                        "'A:2,B:1' or 'latency:1:2500,batch:3'")


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Approaches (Table 2 + ablations):")
    for name in APPROACHES:
        print(f"  {name}")
    print("\nExperiments:")
    for name in EXPERIMENTS:
        print(f"  {name:<8} -> {EXPERIMENTS[name].__name__}")
    return 0


# Scaled-down knobs for quick smoke runs (CI, laptops, and the
# ``repro check`` invariant sweep): small enough that each experiment
# finishes in a couple of seconds while still exercising the
# demand-read, prefetch, reclaim, and lock paths.  Every experiment has
# a preset so ``repro check`` covers all of them.
QUICK_ARGS: dict[str, dict] = {
    "fig2": dict(nthreads=4, ops_per_thread=50, num_keys=20_000),
    "fig5": dict(nthreads=4, memory_bytes=48 * MB,
                 cells=("shared-seq", "shared-rand")),
    "fig6": dict(reader_counts=(2, 4), nwriters=2, file_bytes=48 * MB,
                 memory_bytes=32 * MB, ops_per_thread=128),
    "tab4": dict(nthreads=2, bytes_per_thread=16 * MB,
                 memory_bytes=96 * MB),
    "fig7a": dict(thread_counts=(2, 4), ops_per_thread=50,
                  num_keys=20_000, memory_bytes=32 * MB),
    "fig7b": dict(nthreads=2, num_keys=20_000, memory_bytes=32 * MB,
                  ops_scale=0.05),
    "fig7c": dict(ratios=("1:3", "1:1"), nthreads=2, ops_per_thread=60,
                  num_keys=20_000),
    "fig7d": dict(nthreads=2, num_keys=20_000, memory_bytes=32 * MB,
                  ops_scale=0.05),
    "tab5": dict(nthreads=4, ops_per_thread=50, num_keys=20_000,
                 memory_bytes=32 * MB),
    "fig10": dict(limits_kb=(32, 512), nthreads=2, ops_per_thread=50,
                  num_keys=20_000, memory_bytes=32 * MB),
    "fig8a": dict(nthreads=2, num_keys=20_000, memory_bytes=32 * MB,
                  ops_scale=0.05),
    "fig8b": dict(instances=2, threads_per_instance=2,
                  bytes_per_instance=8 * MB, memory_bytes=32 * MB,
                  personalities=("seqread", "randread")),
    "fig9a": dict(workloads=("A", "C"), nthreads=2, ops_per_thread=100,
                  num_keys=20_000, memory_bytes=32 * MB),
    "fig9b": dict(ratios=("1:3", "1:1"), nthreads=2,
                  total_bytes=64 * MB),
    "resilience": dict(intensities=(0.0, 1.0), nthreads=2,
                       memory_bytes=24 * MB, oversubscription=1.5),
    "fairness": dict(memory_bytes=24 * MB, oversubscription=1.5),
    "recovery": dict(nseeds=1, puts=220, num_keys=8192, memory_mb=64),
    "scale": dict(hosts=(1, 2), tenant_counts=(2,), rate_per_s=1200.0,
                  horizon_us=80_000.0, file_mb=4),
    "adaptive": dict(memory_bytes=32 * MB, oversubscription=2.0,
                     hot_ops=240),
}


def _print_trace_summaries(spec: TraceSpec) -> None:
    for summary in spec.results:
        span_us = summary["span_lock_wait_us"]
        reg_us = summary["registry_lock_wait_us"]
        busy = summary["busy_time_us"]
        parity = ""
        if reg_us > 0:
            parity = f", parity {100.0 * span_us / reg_us:.2f}%"
        lockpct = f", lock {100.0 * span_us / busy:.2f}%" if busy else ""
        print(f"  {summary['label']}: {summary['spans']} spans, "
              f"{summary['instants']} instants, "
              f"{summary['dropped']} dropped -> {summary['trace']}\n"
              f"    lock wait {span_us:.1f} us (spans) vs "
              f"{reg_us:.1f} us (registry){parity}{lockpct}")


def _cmd_experiment(args: argparse.Namespace) -> int:
    fn = EXPERIMENTS.get(args.name)
    if fn is None:
        print(f"unknown experiment {args.name!r}; "
              f"choose from {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    spec: Optional[TraceSpec] = None
    if getattr(args, "trace_out", None):
        spec = TraceSpec(out_dir=args.trace_out)
    kwargs: dict = {}
    if "seed" in inspect.signature(fn).parameters:
        kwargs["seed"] = args.seed
    print(f"seed: {args.seed}")
    with tracing(spec), auditing(bool(getattr(args, "audit", False))), \
            faulting(_fault_spec(args)), tenancy(_qos_spec(args)), \
            adapting(_adaptive_spec(args)):
        _results, report = fn(**kwargs)
    print(report)
    if spec is not None and spec.results:
        print(f"\nTraces written to {spec.out_dir}/:")
        _print_trace_summaries(spec)
    return 0


def _check_task(item: tuple) -> tuple:
    """One ``repro check`` unit, runnable in a worker process.

    Returns ``(line, failed, warning_count)``; the caller prints the
    lines in input order, so serial and ``--jobs N`` output match
    byte for byte.
    """
    from repro.sim.audit import AuditError, run_stress

    kind, payload = item
    if kind == "experiment":
        name, kwargs, preset, seed = payload
        spec = make_preset(preset, seed=seed) if preset else None
        try:
            with auditing(), faulting(spec):
                EXPERIMENTS[name](**kwargs)
        except AuditError as exc:
            return (f"  FAIL {name}: {exc}", True, 0)
        return (f"  ok   {name}", False, 0)
    seed, preset = payload
    spec = make_preset(preset, seed=seed) if preset else None
    try:
        summary = run_stress(seed, faults=spec)
    except AuditError as exc:
        return (f"  FAIL stress(seed={seed}): {exc}", True, 0)
    return (f"  ok   stress(seed={seed}): "
            f"{summary['read_bytes'] >> 20} MB read, "
            f"{summary['mirror_checks']} mirror checks",
            False, len(summary["warnings"]))


def _cmd_check(args: argparse.Namespace) -> int:
    """Run experiment presets + the stress harness under the auditor."""
    from repro.harness.parallel import run_parallel

    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"choose from {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.faults:
        print(f"fault preset: {args.faults} (seed={args.seed})")
    items: list[tuple] = [
        ("experiment",
         (name, QUICK_ARGS.get(name, {}) if not args.full else {},
          args.faults, args.seed))
        for name in names
    ]
    items.extend(("stress", (args.seed + i, args.faults))
                 for i in range(args.stress))
    outcomes = run_parallel(_check_task, items, jobs=args.jobs)
    failures = 0
    warnings = 0
    for line, failed, nwarnings in outcomes:
        print(line)
        failures += int(failed)
        warnings += nwarnings
    if warnings:
        print(f"{warnings} lock-order warning(s) recorded (non-fatal)")
    if failures:
        print(f"{failures} check(s) FAILED", file=sys.stderr)
        return 1
    print("all invariant checks passed")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the simulation-core perf suite; optional regression gate."""
    import json

    from repro.harness import bench as benchmod

    if args.profile:
        if len(args.names) != 1:
            print("--profile takes exactly one bench name",
                  file=sys.stderr)
            return 2
        name = args.names[0]
        if name not in benchmod.BENCHES:
            print(f"unknown bench {name!r}; choose from "
                  f"{', '.join(benchmod.BENCHES)}", file=sys.stderr)
            return 2
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = benchmod.BENCHES[name](args.scale)
        profiler.disable()
        events = result.get("events", 0)
        print(f"{name}: {result['wall_s']:.3f}s wall, "
              f"{events:,} events "
              f"({events / result['wall_s']:,.0f} events/s)")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(20)
        return 0

    try:
        doc = benchmod.run_suite(args.names or None, scale=args.scale,
                                 repeat=args.repeat, jobs=args.jobs)
    except KeyError as exc:
        print(f"{exc.args[0]}; choose from "
              f"{', '.join(benchmod.BENCHES)}", file=sys.stderr)
        return 2
    print(benchmod.format_suite(doc))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"results written to {args.out}")
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = benchmod.compare_to_baseline(
            doc, baseline, max_regression=args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"regression gate passed "
              f"(budget {100 * args.max_regression:.0f}% vs "
              f"{args.baseline})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    fn = EXPERIMENTS.get(args.name)
    if fn is None:
        print(f"unknown experiment {args.name!r}; "
              f"choose from {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.capacity <= 0:
        print(f"--capacity must be positive: {args.capacity}",
              file=sys.stderr)
        return 2
    kwargs: dict = {}
    if args.quick:
        kwargs = QUICK_ARGS.get(args.name, {})
        if not kwargs:
            print(f"note: no quick preset for {args.name!r}; "
                  f"running at full scale", file=sys.stderr)
    if "seed" in inspect.signature(fn).parameters:
        kwargs["seed"] = args.seed
    spec = TraceSpec(out_dir=args.out, capacity=args.capacity,
                     emit_holds=args.holds)
    print(f"seed: {args.seed}")
    with tracing(spec), faulting(_fault_spec(args)):
        _results, report = fn(**kwargs)
    print(report)
    print(f"\nTraces written to {spec.out_dir}/:")
    _print_trace_summaries(spec)
    return 0


def _run_workload(kind: str, approach: str, *, nthreads: int,
                  memory_mb: int, data_mb: int,
                  pattern: str, seed: int = 0) -> ApproachMetrics:
    spec = runner.active_trace_spec()
    tracer = Tracer(capacity=spec.capacity) if spec is not None else None
    kernel = Kernel(memory_bytes=memory_mb * MB,
                    cross_enabled=needs_cross(approach),
                    tracer=tracer,
                    emit_lock_holds=spec.emit_holds
                    if spec is not None else False,
                    audit=runner.audit_enabled(),
                    faults=runner.active_fault_spec(),
                    qos=runner.active_qos_spec(),
                    adaptive=runner.active_adaptive_spec())
    runtime = build_runtime(approach, kernel)

    def _finish(metrics: ApproachMetrics) -> ApproachMetrics:
        if spec is not None:
            metrics.extra["trace"] = runner.finish_trace(
                spec, kernel, f"{kind}-{pattern}-{approach}",
                thread_time_us=metrics.thread_time_us)
        return metrics

    try:
        if kind == "microbench":
            from repro.workloads.microbench import (
                MicrobenchConfig,
                run_microbench,
            )
            cfg = MicrobenchConfig(nthreads=nthreads,
                                   total_bytes=data_mb * MB,
                                   pattern=pattern, sharing="shared",
                                   seed=42 + seed)
            return _finish(run_microbench(kernel, runtime, cfg))
        if kind == "dbbench":
            from repro.workloads.dbbench import (
                DbBenchConfig,
                run_dbbench,
            )
            from repro.workloads.lsm import DbConfig
            cfg = DbBenchConfig(
                pattern=pattern if pattern != "rand" else "readrandom",
                nthreads=nthreads, ops_per_thread=500,
                seed=11 + seed,
                db=DbConfig(num_keys=data_mb * MB // 1024))
            return _finish(run_dbbench(kernel, runtime, cfg))
        if kind == "snappy":
            from repro.workloads.snappy import SnappyConfig, run_snappy
            cfg = SnappyConfig(nthreads=nthreads,
                               total_bytes=data_mb * MB,
                               seed=5 + seed)
            return _finish(run_snappy(kernel, runtime, cfg))
        raise ValueError(f"unknown workload kind {kind!r}")
    finally:
        runtime.teardown()
        kernel.shutdown()


def _cmd_workload(args: argparse.Namespace) -> int:
    approaches = args.approach or ["OSonly", "CrossP[+predict+opt]"]
    spec: Optional[TraceSpec] = None
    if getattr(args, "trace_out", None):
        spec = TraceSpec(out_dir=args.trace_out)
    results = {}
    print(f"seed: {args.seed}")
    with tracing(spec), auditing(bool(getattr(args, "audit", False))), \
            faulting(_fault_spec(args)), tenancy(_qos_spec(args)), \
            adapting(_adaptive_spec(args)):
        for approach in approaches:
            if approach not in APPROACHES:
                print(f"unknown approach {approach!r}", file=sys.stderr)
                return 2
            results[approach] = _run_workload(
                args.kind, approach, nthreads=args.threads,
                memory_mb=args.memory_mb, data_mb=args.data_mb,
                pattern=args.pattern, seed=args.seed)
    print(format_table(
        f"{args.kind} ({args.pattern}, {args.threads} threads, "
        f"{args.memory_mb} MB RAM, {args.data_mb} MB data)", results))
    if spec is not None and spec.results:
        print(f"\nTraces written to {spec.out_dir}/:")
        _print_trace_summaries(spec)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-intensity sweep: the resilience experiment, front and
    center, with optional per-run invariant auditing."""
    from repro.sim.audit import AuditError

    intensities = (tuple(args.intensity) if args.intensity
                   else (0.0, 0.5, 1.0, 2.0))
    kwargs: dict = dict(intensities=intensities, preset=args.preset,
                        seed=args.seed, remote=args.remote)
    if args.quick:
        kwargs.update(QUICK_ARGS["resilience"])
        kwargs["intensities"] = (tuple(args.intensity) if args.intensity
                                 else QUICK_ARGS["resilience"]["intensities"])
    if args.approach:
        unknown = [a for a in args.approach if a not in APPROACHES]
        if unknown:
            print(f"unknown approach(es): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        kwargs["approaches"] = tuple(args.approach)
    print(f"seed: {args.seed}")
    try:
        with auditing(bool(args.audit)), tenancy(_qos_spec(args)), \
                adapting(_adaptive_spec(args)):
            _results, report = exp.run_resilience(**kwargs)
    except AuditError as exc:
        print(f"AUDIT FAIL under chaos: {exc}", file=sys.stderr)
        return 1
    print(report)
    if args.audit:
        print("invariant audit passed for every chaotic run")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    """Cluster-scale sweep: host count x tenant count over shared
    backends, open-loop load, optional fleet-wide invariant audit."""
    from repro.sim.audit import AuditError

    hosts = tuple(args.hosts) if args.hosts else (1, 2, 4)
    tenant_counts = (tuple(args.tenant_counts) if args.tenant_counts
                     else (1, 4))
    approaches = (tuple(args.approach) if args.approach
                  else ("OSonly", "CrossP[+predict+opt]"))
    unknown = [a for a in approaches if a not in APPROACHES]
    if unknown:
        print(f"unknown approach(es): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    kwargs: dict = dict(
        hosts=hosts, tenant_counts=tenant_counts,
        backends=args.backends, approaches=approaches,
        seed=args.seed, rate_per_s=args.rate,
        horizon_us=args.horizon_ms * 1e3, file_mb=args.file_mb,
        memory_mb=args.memory_mb, arrivals=args.arrivals,
        audit=args.audit, jobs=args.jobs, out=args.out)
    if args.quick:
        quick = dict(QUICK_ARGS["scale"])
        if args.hosts:
            quick.pop("hosts", None)
        if args.tenant_counts:
            quick.pop("tenant_counts", None)
        kwargs.update(quick)
    print(f"seed: {args.seed}")
    try:
        results, report = exp.run_scale(**kwargs)
    except AuditError as exc:
        print(f"AUDIT FAIL in fleet run: {exc}", file=sys.stderr)
        return 1
    print(report)
    if args.audit:
        print("fleet invariant audit passed for every sweep point")
    if args.fingerprints:
        print("\nper-run determinism fingerprints (sha256):")
        for key in sorted(results):
            for approach, metrics in results[key].items():
                print(f"  {key} {approach}: "
                      f"{metrics.extra.get('fingerprint', '?')}")
    if args.out:
        print(f"results written to {args.out}")
    return 0


DURABLE_PRESETS = ("torn", "wbdrop", "crash")


def _cmd_recover(args: argparse.Namespace) -> int:
    """Crash-point fuzz smoke sweep with recovery-invariant checks."""
    from repro.harness.crashfuzz import (
        FuzzConfig,
        find_minimal_failure,
        sweep,
    )
    from repro.sim.audit import AuditError

    seeds = args.seeds or [11, 23, 47]
    approach = args.approach or "CrossP[+predict+opt]"
    if approach not in APPROACHES:
        print(f"unknown approach {approach!r}; choose from "
              f"{', '.join(APPROACHES)}", file=sys.stderr)
        return 2
    cfg = FuzzConfig(puts=args.puts, preset=args.preset,
                     intensity=args.fault_intensity)
    print(f"preset: {args.preset} (intensity {args.fault_intensity:g}), "
          f"{args.puts} puts, {args.points} crash points per seed, "
          f"approach {approach}")
    failures = 0
    for seed in seeds:
        try:
            results = sweep(seed, points=args.points, cfg=cfg,
                            approach=approach)
        except AuditError as exc:
            print(f"  FAIL crash(seed={seed}): {exc}", file=sys.stderr)
            failures += 1
            continue
        bad = [(o, r) for o, r in results if not r.ok]
        for ordinal, report in results:
            status = "ok  " if report.ok else "FAIL"
            print(f"  {status} crash(seed={seed}, ordinal={ordinal}): "
                  f"{report.describe()}")
            for violation in report.violations:
                print(f"         {violation}", file=sys.stderr)
        if bad:
            failures += len(bad)
            first_bad = bad[0][0]
            minimal = find_minimal_failure(
                seed, range(1, first_bad + 1), cfg, approach)
            if minimal is not None:
                print(f"  minimal failing crash ordinal for seed "
                      f"{seed}: {minimal[0]}", file=sys.stderr)
    if failures:
        print(f"{failures} crash-recovery check(s) FAILED",
              file=sys.stderr)
        return 1
    print("all crash-recovery invariants held")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CrossPrefetch (ASPLOS'24) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list approaches and experiments") \
        .set_defaults(fn=_cmd_list)

    p_exp = sub.add_parser("experiment",
                           help="run one paper experiment")
    p_exp.add_argument("name", help="e.g. fig2, fig7b, tab5")
    p_exp.add_argument("--trace-out", default=None, metavar="DIR",
                       help="also export Chrome traces + lock profiles "
                            "into DIR")
    p_exp.add_argument("--audit", action="store_true",
                       help="run with the invariant auditor attached "
                            "(fails on any conservation/deadlock/leak "
                            "violation)")
    _add_seed_arg(p_exp)
    _add_fault_args(p_exp)
    _add_tenant_args(p_exp)
    _add_adaptive_arg(p_exp)
    p_exp.set_defaults(fn=_cmd_experiment)

    p_chk = sub.add_parser(
        "check",
        help="audit every experiment preset + a randomized stress run")
    p_chk.add_argument("names", nargs="*",
                       help="experiments to check (default: all)")
    p_chk.add_argument("--full", action="store_true",
                       help="run at full scale instead of the quick "
                            "presets")
    p_chk.add_argument("--stress", type=int, default=3, metavar="N",
                       help="randomized stress-harness runs (default 3)")
    p_chk.add_argument("--seed", type=int, default=0,
                       help="base random seed (default 0); echoed in "
                            "the stress lines so runs are reproducible")
    p_chk.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run presets across N worker processes "
                            "(results are merged in order, identical "
                            "to a serial run)")
    p_chk.add_argument("--faults", default=None, choices=PRESETS,
                       metavar="PRESET",
                       help="audit every preset + stress run under a "
                            "fault-injection preset")
    p_chk.set_defaults(fn=_cmd_check)

    p_bn = sub.add_parser(
        "bench",
        help="run the simulation-core perf suite (events/sec)")
    p_bn.add_argument("names", nargs="*",
                      help="benchmarks to run (default: all)")
    p_bn.add_argument("--scale", type=int, default=1,
                      help="work multiplier for the engine "
                           "microbenchmarks (default 1)")
    p_bn.add_argument("--repeat", type=int, default=3, metavar="N",
                      help="best-of-N timing per bench (default 3)")
    p_bn.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="fan benches out across N worker processes")
    p_bn.add_argument("--out", default=None, metavar="FILE",
                      help="write the suite results as JSON")
    p_bn.add_argument("--baseline", default=None, metavar="FILE",
                      help="compare events/sec against a committed "
                           "BENCH_sim_core.json; non-zero exit on "
                           "regression")
    p_bn.add_argument("--max-regression", type=float, default=0.3,
                      metavar="FRAC",
                      help="allowed events/sec drop vs baseline "
                           "(default 0.3 = 30%%)")
    p_bn.add_argument("--profile", action="store_true",
                      help="run one named bench under cProfile and "
                           "print the top 20 functions by cumulative "
                           "time")
    p_bn.set_defaults(fn=_cmd_bench)

    p_rc = sub.add_parser(
        "recover",
        help="crash-point fuzz sweep: crash, recover, check invariants")
    p_rc.add_argument("--seeds", type=int, action="append", metavar="N",
                      help="repeatable workload seed (default 11 23 47)")
    p_rc.add_argument("--points", type=int, default=4, metavar="N",
                      help="crash ordinals per seed, spread across the "
                           "run (default 4)")
    p_rc.add_argument("--puts", type=int, default=160, metavar="N",
                      help="puts in the fuzzed LSM write workload "
                           "(default 160)")
    p_rc.add_argument("--preset", default="crash",
                      choices=DURABLE_PRESETS,
                      help="durable-damage fault preset for the crashed "
                           "run (default crash)")
    p_rc.add_argument("--fault-intensity", type=float, default=1.0,
                      metavar="X",
                      help="scale the preset's damage probabilities "
                           "(default 1.0)")
    p_rc.add_argument("--approach", default=None,
                      help="recovery approach (default "
                           "CrossP[+predict+opt])")
    p_rc.set_defaults(fn=_cmd_recover)

    p_sc = sub.add_parser(
        "scale",
        help="cluster sweep: hosts x tenants over shared backends")
    p_sc.add_argument("--hosts", type=int, action="append", metavar="N",
                      help="repeatable host count (default 1 2 4)")
    p_sc.add_argument("--tenant-counts", type=int, action="append",
                      metavar="N",
                      help="repeatable tenant count per host "
                           "(default 1 4)")
    p_sc.add_argument("--backends", type=int, default=1, metavar="N",
                      help="shared remote-NVMe backends (default 1; "
                           "hosts round-robin onto them)")
    p_sc.add_argument("--rate", type=float, default=2000.0, metavar="R",
                      help="open-loop arrival rate per (host, tenant) "
                           "stream, requests/s (default 2000)")
    p_sc.add_argument("--horizon-ms", type=float, default=400.0,
                      metavar="MS",
                      help="simulated traffic horizon (default 400 ms)")
    p_sc.add_argument("--file-mb", type=int, default=8, metavar="MB",
                      help="dataset per (host, tenant) stream "
                           "(default 8 MB)")
    p_sc.add_argument("--memory-mb", type=int, default=None,
                      metavar="MB",
                      help="per-host memory (default: machine preset)")
    p_sc.add_argument("--arrivals", default="poisson",
                      choices=["poisson", "burst"],
                      help="arrival process (default poisson)")
    p_sc.add_argument("--approach", action="append",
                      help="repeatable; defaults to OSonly + "
                           "CrossP[+predict+opt]")
    p_sc.add_argument("--audit", action="store_true",
                      help="attach the fleet-wide invariant auditor to "
                           "every sweep point")
    p_sc.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="fan sweep points out across N worker "
                           "processes (merged output identical to "
                           "serial)")
    p_sc.add_argument("--out", default=None, metavar="FILE",
                      help="persist the merged matrix as JSON via the "
                           "results store")
    p_sc.add_argument("--fingerprints", action="store_true",
                      help="print each run's sha256 determinism "
                           "fingerprint (equal seeds must match)")
    p_sc.add_argument("--quick", action="store_true",
                      help="scaled-down knobs (CI smoke)")
    _add_seed_arg(p_sc)
    p_sc.set_defaults(fn=_cmd_scale)

    p_tr = sub.add_parser(
        "trace", help="run an experiment with span tracing on")
    p_tr.add_argument("name", help="experiment to trace, e.g. fig2")
    p_tr.add_argument("--out", default="traces", metavar="DIR",
                      help="output directory (default: traces)")
    p_tr.add_argument("--capacity", type=int, default=1_000_000,
                      help="tracer ring-buffer capacity (events)")
    p_tr.add_argument("--holds", action="store_true",
                      help="also emit lock *hold* spans to the timeline")
    p_tr.add_argument("--quick", action="store_true",
                      help="use scaled-down knobs where available")
    _add_seed_arg(p_tr)
    _add_fault_args(p_tr)
    p_tr.set_defaults(fn=_cmd_trace)

    p_ch = sub.add_parser(
        "chaos",
        help="fault-intensity sweep: vanilla OS vs CrossPrefetch")
    p_ch.add_argument("--preset", default="storm", choices=PRESETS,
                      help="fault model preset to sweep (default storm)")
    p_ch.add_argument("--intensity", type=float, action="append",
                      metavar="X",
                      help="repeatable sweep point (default "
                           "0.0 0.5 1.0 2.0; 0 = healthy control)")
    p_ch.add_argument("--quick", action="store_true",
                      help="scaled-down knobs (CI smoke)")
    p_ch.add_argument("--remote", action="store_true",
                      help="run against the NVMe-oF machine (fabric "
                           "faults bite hardest there)")
    p_ch.add_argument("--audit", action="store_true",
                      help="attach the invariant auditor to every "
                           "chaotic run; non-zero exit on violation")
    p_ch.add_argument("--approach", action="append",
                      help="repeatable; defaults to OSonly + "
                           "CrossP[+predict+opt]")
    _add_seed_arg(p_ch)
    _add_tenant_args(p_ch)
    _add_adaptive_arg(p_ch)
    p_ch.set_defaults(fn=_cmd_chaos)

    p_wl = sub.add_parser("workload", help="run one workload ad hoc")
    p_wl.add_argument("--kind", default="microbench",
                      choices=["microbench", "dbbench", "snappy"])
    p_wl.add_argument("--pattern", default="rand",
                      help="workload pattern (seq/rand or a db_bench "
                           "pattern name)")
    p_wl.add_argument("--threads", type=int, default=8)
    p_wl.add_argument("--memory-mb", type=int, default=192)
    p_wl.add_argument("--data-mb", type=int, default=384)
    p_wl.add_argument("--approach", action="append",
                      help="repeatable; defaults to OSonly + "
                           "CrossP[+predict+opt]")
    p_wl.add_argument("--trace-out", default=None, metavar="DIR",
                      help="also export Chrome traces + lock profiles "
                            "into DIR")
    p_wl.add_argument("--audit", action="store_true",
                      help="run with the invariant auditor attached")
    _add_seed_arg(p_wl)
    _add_fault_args(p_wl)
    _add_tenant_args(p_wl)
    _add_adaptive_arg(p_wl)
    p_wl.set_defaults(fn=_cmd_workload)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
