"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show the available comparison approaches and experiments.
``experiment <name>``
    Run one paper experiment (e.g. ``fig7b``) and print its table.
``workload``
    Run a single workload under chosen approaches with custom knobs —
    the quick way to poke at the system without writing a script.

Examples::

    python -m repro list
    python -m repro experiment fig2
    python -m repro workload --kind microbench --pattern rand \
        --approach OSonly --approach "CrossP[+predict+opt]"
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from repro.harness import experiments as exp
from repro.harness.metrics import ApproachMetrics
from repro.harness.report import format_table
from repro.os.kernel import Kernel
from repro.runtimes.factory import APPROACHES, build_runtime, needs_cross

__all__ = ["main"]

MB = 1 << 20

EXPERIMENTS: dict[str, Callable] = {
    "fig2": exp.run_fig2_motivation,
    "fig5": exp.run_fig5_microbench,
    "fig6": exp.run_fig6_shared_rw,
    "tab4": exp.run_tab4_mmap,
    "fig7a": exp.run_fig7a_threads,
    "fig7b": exp.run_fig7b_patterns,
    "fig7c": exp.run_fig7c_memory,
    "fig7d": exp.run_fig7d_f2fs,
    "tab5": exp.run_tab5_breakdown,
    "fig10": exp.run_fig10_prefetch_limit,
    "fig8a": exp.run_fig8a_remote,
    "fig8b": exp.run_fig8b_filebench,
    "fig9a": exp.run_fig9a_ycsb,
    "fig9b": exp.run_fig9b_snappy,
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Approaches (Table 2 + ablations):")
    for name in APPROACHES:
        print(f"  {name}")
    print("\nExperiments:")
    for name in EXPERIMENTS:
        print(f"  {name:<8} -> {EXPERIMENTS[name].__name__}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    fn = EXPERIMENTS.get(args.name)
    if fn is None:
        print(f"unknown experiment {args.name!r}; "
              f"choose from {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    _results, report = fn()
    print(report)
    return 0


def _run_workload(kind: str, approach: str, *, nthreads: int,
                  memory_mb: int, data_mb: int,
                  pattern: str) -> ApproachMetrics:
    kernel = Kernel(memory_bytes=memory_mb * MB,
                    cross_enabled=needs_cross(approach))
    runtime = build_runtime(approach, kernel)
    try:
        if kind == "microbench":
            from repro.workloads.microbench import (
                MicrobenchConfig,
                run_microbench,
            )
            cfg = MicrobenchConfig(nthreads=nthreads,
                                   total_bytes=data_mb * MB,
                                   pattern=pattern, sharing="shared")
            return run_microbench(kernel, runtime, cfg)
        if kind == "dbbench":
            from repro.workloads.dbbench import (
                DbBenchConfig,
                run_dbbench,
            )
            from repro.workloads.lsm import DbConfig
            cfg = DbBenchConfig(
                pattern=pattern if pattern != "rand" else "readrandom",
                nthreads=nthreads, ops_per_thread=500,
                db=DbConfig(num_keys=data_mb * MB // 1024))
            return run_dbbench(kernel, runtime, cfg)
        if kind == "snappy":
            from repro.workloads.snappy import SnappyConfig, run_snappy
            cfg = SnappyConfig(nthreads=nthreads,
                               total_bytes=data_mb * MB)
            return run_snappy(kernel, runtime, cfg)
        raise ValueError(f"unknown workload kind {kind!r}")
    finally:
        runtime.teardown()
        kernel.shutdown()


def _cmd_workload(args: argparse.Namespace) -> int:
    approaches = args.approach or ["OSonly", "CrossP[+predict+opt]"]
    results = {}
    for approach in approaches:
        if approach not in APPROACHES:
            print(f"unknown approach {approach!r}", file=sys.stderr)
            return 2
        results[approach] = _run_workload(
            args.kind, approach, nthreads=args.threads,
            memory_mb=args.memory_mb, data_mb=args.data_mb,
            pattern=args.pattern)
    print(format_table(
        f"{args.kind} ({args.pattern}, {args.threads} threads, "
        f"{args.memory_mb} MB RAM, {args.data_mb} MB data)", results))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CrossPrefetch (ASPLOS'24) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list approaches and experiments") \
        .set_defaults(fn=_cmd_list)

    p_exp = sub.add_parser("experiment",
                           help="run one paper experiment")
    p_exp.add_argument("name", help="e.g. fig2, fig7b, tab5")
    p_exp.set_defaults(fn=_cmd_experiment)

    p_wl = sub.add_parser("workload", help="run one workload ad hoc")
    p_wl.add_argument("--kind", default="microbench",
                      choices=["microbench", "dbbench", "snappy"])
    p_wl.add_argument("--pattern", default="rand",
                      help="workload pattern (seq/rand or a db_bench "
                           "pattern name)")
    p_wl.add_argument("--threads", type=int, default=8)
    p_wl.add_argument("--memory-mb", type=int, default=192)
    p_wl.add_argument("--data-mb", type=int, default=384)
    p_wl.add_argument("--approach", action="append",
                      help="repeatable; defaults to OSonly + "
                           "CrossP[+predict+opt]")
    p_wl.set_defaults(fn=_cmd_workload)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
