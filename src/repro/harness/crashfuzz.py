"""Crash-point fuzzing: crash an LSM write workload anywhere, recover,
and check the recovery invariants.

The trick that makes "crash after exactly the k-th put" well defined in
a discrete-event world is a **probe run**: the write workload runs to
completion under the *same* fault spec and seed, recording the
simulated completion time of every put.  Determinism guarantees the
damage run replays an identical event prefix, so cutting it at the
midpoint between put ``k`` and put ``k+1`` (``Simulator.run(until=t)``)
lands between exactly those two acknowledgements — including any
background flush or compaction that happened to be mid-write.

Pipeline per scenario::

    probe(seed)  ->  put completion times
    damage(seed, crash at ordinal k)  ->  CrashSnapshot + manifest + WAL
    recover(snapshot, approach)  ->  RecoveryReport  (fresh audited kernel)

Invariants asserted (the fuzz property): the crash snapshot itself
raises if acknowledged-durable bytes are lost; the recovery report must
come back with zero violations (recovered DB ≡ committed prefix); and
the recovery kernel must shut down audit-green.

:func:`sweep` spreads crash ordinals across the run;
:func:`find_minimal_failure` re-scans ascending to the smallest failing
ordinal (the deterministic shrink the stress harness reports).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro.os.kernel import Kernel
from repro.runtimes.factory import build_runtime, needs_cross
from repro.sim.crash import CrashSnapshot, restore_into, take_snapshot
from repro.sim.faults import make_preset
from repro.workloads.lsm.db import DbConfig, LsmDb
from repro.workloads.lsm.recovery import LsmRecovery, RecoveryReport
from repro.workloads.lsm.sstable import SSTable
from repro.workloads.lsm.wal import WalLog

__all__ = ["CrashScenario", "FuzzConfig", "build_scenario",
           "find_minimal_failure", "probe_put_times", "recover", "sweep"]

MB = 1 << 20
KB = 1 << 10


@dataclass
class FuzzConfig:
    """Shape of the fuzzed write workload (small on purpose)."""

    puts: int = 160
    num_keys: int = 2048
    value_size: int = 512
    sst_bytes: int = 128 * KB
    memtable_bytes: int = 32 * KB
    l0_compaction_trigger: int = 3
    write_buffer_io: int = 32 * KB
    wal_sync_ops: int = 7           # group commit: committed prefix exists
    preset: str = "crash"
    intensity: float = 1.0
    memory_mb: int = 64

    def db_config(self, seed: int) -> DbConfig:
        return DbConfig(num_keys=self.num_keys,
                        value_size=self.value_size,
                        sst_bytes=self.sst_bytes,
                        memtable_bytes=self.memtable_bytes,
                        l0_compaction_trigger=self.l0_compaction_trigger,
                        write_buffer_io=self.write_buffer_io,
                        wal_sync_ops=self.wal_sync_ops,
                        seed=seed)


@dataclass
class CrashScenario:
    """Everything recovery needs, detached from the crashed kernel."""

    seed: int
    ordinal: int
    crash_time_us: float
    snapshot: CrashSnapshot
    manifest: list[SSTable]
    wal: WalLog
    db_config: DbConfig
    puts_completed: int = 0
    put_times: list[float] = field(default_factory=list)

    def describe(self) -> str:
        return (f"seed={self.seed} ordinal={self.ordinal} "
                f"({self.puts_completed} puts acked) "
                f"{self.snapshot.describe()}")


def _writer(db: LsmDb, cfg: FuzzConfig, seed: int,
            put_times: list[float]) -> Generator:
    """Single sequential writer: keeps WAL append order == seq order."""
    rng = random.Random(seed ^ 0x5EED_C0DE)
    ctx = db.new_thread()
    for _ in range(cfg.puts):
        key = rng.randrange(cfg.num_keys)
        yield from db.put(ctx, key)
        put_times.append(db.kernel.sim.now)
    yield from ctx.close_all()
    yield from db.close()


def _build_damage_kernel(seed: int, cfg: FuzzConfig
                         ) -> tuple[Kernel, LsmDb, list[float]]:
    faults = make_preset(cfg.preset, seed=seed, intensity=cfg.intensity)
    if not faults.durable:
        raise ValueError(
            f"preset {cfg.preset!r} has no durable-damage model; "
            f"crash fuzzing needs torn/wbdrop/crash faults")
    kernel = Kernel(memory_bytes=cfg.memory_mb * MB, faults=faults)
    runtime = build_runtime("OSonly", kernel)
    db = LsmDb(kernel, runtime, cfg.db_config(seed))
    db.populate()
    put_times: list[float] = []
    kernel.sim.process(_writer(db, cfg, seed, put_times),
                       name="crashfuzz_writer")
    return kernel, db, put_times


def probe_put_times(seed: int, cfg: Optional[FuzzConfig] = None
                    ) -> list[float]:
    """Run the write workload to completion; per-put completion times."""
    cfg = cfg or FuzzConfig()
    kernel, _db, put_times = _build_damage_kernel(seed, cfg)
    kernel.sim.run()
    return put_times


def crash_time_for(put_times: Sequence[float], ordinal: int) -> float:
    """The instant that falls after put ``ordinal`` acks and before the
    next — midpoints keep the cut stable under float jitter."""
    if not put_times:
        raise ValueError("probe recorded no puts")
    if ordinal <= 0:
        return put_times[0] * 0.5
    if ordinal >= len(put_times):
        return put_times[-1] + 1.0
    return (put_times[ordinal - 1] + put_times[ordinal]) * 0.5


def build_scenario(seed: int, ordinal: int,
                   cfg: Optional[FuzzConfig] = None, *,
                   put_times: Optional[Sequence[float]] = None
                   ) -> CrashScenario:
    """Probe (unless ``put_times`` given), then damage at ``ordinal``.

    The damage run replays the probe's event stream and is cut at the
    crash instant; the crashed kernel is snapshotted and abandoned
    (never audited — it is mid-flight by construction).
    """
    cfg = cfg or FuzzConfig()
    if put_times is None:
        put_times = probe_put_times(seed, cfg)
    crash_t = crash_time_for(put_times, ordinal)
    kernel, db, damage_times = _build_damage_kernel(seed, cfg)
    kernel.sim.run(until=crash_t)
    snapshot = take_snapshot(kernel)
    return CrashScenario(seed=seed, ordinal=ordinal,
                         crash_time_us=crash_t, snapshot=snapshot,
                         manifest=db.manifest(), wal=db.wal,
                         db_config=db.config,
                         puts_completed=len(damage_times),
                         put_times=list(put_times))


def recover(scenario: CrashScenario, approach: str = "CrossP[+predict+opt]", *,
            memory_mb: int = 64, audit: bool = True,
            verify_cpu_us_per_block: float = 0.5,
            lookahead_files: int = 3) -> RecoveryReport:
    """Restore the snapshot into a fresh kernel and run recovery.

    The fresh kernel is healthy (no faults) and fully audited: the
    recovery workload itself must hold every cross-layer invariant.
    Raises :class:`~repro.sim.audit.AuditError` on audit violations;
    recovery-invariant violations come back in ``report.violations``.
    """
    kernel = Kernel(memory_bytes=memory_mb * MB,
                    cross_enabled=needs_cross(approach), audit=audit)
    runtime = build_runtime(approach, kernel)
    restore_into(kernel, scenario.snapshot)
    recovery = LsmRecovery(
        kernel, runtime, scenario.snapshot, scenario.manifest,
        scenario.wal, scenario.db_config,
        lookahead_files=lookahead_files,
        verify_cpu_us_per_block=verify_cpu_us_per_block)
    result: list[RecoveryReport] = []

    def driver() -> Generator:
        report = yield from recovery.run()
        result.append(report)

    kernel.sim.process(driver(), name="recovery_driver")
    kernel.sim.run()
    runtime.teardown()
    kernel.shutdown()
    return result[0]


def sweep(seed: int, points: int = 8,
          cfg: Optional[FuzzConfig] = None,
          approach: str = "CrossP[+predict+opt]") -> list[tuple[int, RecoveryReport]]:
    """Crash at ``points`` ordinals spread across the run; recover each.

    One probe serves every point (same seed, same event stream).
    """
    cfg = cfg or FuzzConfig()
    put_times = probe_put_times(seed, cfg)
    n = len(put_times)
    ordinals = sorted({max(1, (i + 1) * n // (points + 1))
                       for i in range(points)})
    out: list[tuple[int, RecoveryReport]] = []
    for ordinal in ordinals:
        scenario = build_scenario(seed, ordinal, cfg,
                                  put_times=put_times)
        out.append((ordinal, recover(scenario, approach)))
    return out


def find_minimal_failure(seed: int,
                         ordinals: Sequence[int],
                         cfg: Optional[FuzzConfig] = None,
                         approach: str = "CrossP[+predict+opt]"
                         ) -> Optional[tuple[int, RecoveryReport]]:
    """Deterministic shrink: smallest crash ordinal whose recovery
    violates an invariant, or None if all pass."""
    cfg = cfg or FuzzConfig()
    put_times = probe_put_times(seed, cfg)
    for ordinal in sorted(set(ordinals)):
        scenario = build_scenario(seed, ordinal, cfg,
                                  put_times=put_times)
        report = recover(scenario, approach)
        if not report.ok:
            return ordinal, report
    return None
