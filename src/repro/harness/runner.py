"""Run a workload under each comparison approach.

A *workload function* has the signature::

    def workload(kernel, runtime) -> ApproachMetrics

It creates files, spawns simulated threads, runs the kernel, and returns
metrics.  :func:`run_approaches` builds a fresh kernel (cold cache, like
the paper's drop_caches) and a fresh runtime per approach, so approaches
never share state.
"""

from __future__ import annotations

import json
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.cluster.host import Host, build_host_kernel
from repro.crosslib.config import CrossLibConfig
from repro.harness.configs import MachineConfig
from repro.harness.metrics import ApproachMetrics
from repro.harness.parallel import ParallelTaskError, run_parallel
from repro.os.kernel import Kernel
from repro.runtimes.base import IORuntime
from repro.sim.observe import export_chrome_trace
from repro.sim.trace import Tracer

__all__ = ["ParallelTaskError", "TraceSpec", "active_adaptive_spec",
           "active_fault_spec", "active_qos_spec", "active_trace_spec",
           "adapting", "audit_enabled", "auditing", "faulting",
           "finish_trace", "make_kernel", "run_approaches", "run_one",
           "run_parallel", "tenancy", "tracing"]

WorkloadFn = Callable[[Kernel, IORuntime], ApproachMetrics]


@dataclass
class TraceSpec:
    """Tracing request for the runs inside a :func:`tracing` block.

    The harness keeps one module-global active spec so ``repro trace``
    can wrap any experiment function without changing its signature:
    every :func:`run_one` inside the block builds a tracer, wires the
    kernel's observer, and exports one Chrome trace plus one lock
    profile per (workload, approach) run into ``out_dir``.
    """

    out_dir: str
    capacity: int = 1_000_000
    emit_holds: bool = False
    pretty: bool = False
    # One summary dict per traced run, in execution order.
    results: list = field(default_factory=list)


_active_spec: Optional[TraceSpec] = None


def active_trace_spec() -> Optional[TraceSpec]:
    return _active_spec


@contextmanager
def tracing(spec: Optional[TraceSpec]) -> Iterator[Optional[TraceSpec]]:
    """Make ``spec`` the active trace spec for runs inside the block."""
    global _active_spec
    previous = _active_spec
    _active_spec = spec
    try:
        yield spec
    finally:
        _active_spec = previous


_active_faults = None


def active_fault_spec():
    return _active_faults


@contextmanager
def faulting(spec) -> Iterator[None]:
    """Run every kernel built inside the block under fault injection.

    ``spec`` is a :class:`repro.sim.faults.FaultSpec` (or None / a
    disabled spec for a no-op).  Mirrors :func:`tracing` /
    :func:`auditing`: a module-global lets ``repro chaos`` and the
    ``--faults`` flags wrap any experiment function without changing
    its signature.
    """
    global _active_faults
    previous = _active_faults
    _active_faults = spec if spec is not None and spec.enabled else None
    try:
        yield
    finally:
        _active_faults = previous


_active_qos = None


def active_qos_spec():
    return _active_qos


@contextmanager
def tenancy(spec) -> Iterator[None]:
    """Run every kernel built inside the block with a multi-tenant QoS
    manager attached.

    ``spec`` is a :class:`repro.sim.qos.QosSpec` (or None / a spec with
    no tenants for a no-op).  Mirrors :func:`faulting`: a module-global
    lets the ``--tenants`` flags wrap any experiment function without
    changing its signature.
    """
    global _active_qos
    previous = _active_qos
    _active_qos = spec if spec is not None and spec.enabled else None
    try:
        yield
    finally:
        _active_qos = previous


_active_adaptive = None


def active_adaptive_spec():
    return _active_adaptive


@contextmanager
def adapting(spec) -> Iterator[None]:
    """Run every kernel built inside the block with the learned
    adaptive prefetch policy attached.

    ``spec`` is a :class:`repro.crosslib.adaptive.AdaptiveSpec` (or
    None for a no-op).  Mirrors :func:`faulting` / :func:`tenancy`: a
    module-global lets the ``--adaptive`` flags wrap any experiment
    function without changing its signature.
    """
    global _active_adaptive
    previous = _active_adaptive
    _active_adaptive = spec if spec is not None and spec.enabled else None
    try:
        yield
    finally:
        _active_adaptive = previous


_audit_active = False


def audit_enabled() -> bool:
    return _audit_active


@contextmanager
def auditing(enabled: bool = True) -> Iterator[None]:
    """Run every kernel built inside the block with the invariant
    auditor attached (``repro check`` / ``--audit``).

    Mirrors :func:`tracing`: a module-global flag lets the CLI wrap any
    experiment function without changing its signature.  Each kernel's
    ``shutdown`` then drains the simulation and runs the final audit,
    raising :class:`repro.sim.audit.AuditError` on any violation.
    """
    global _audit_active
    previous = _audit_active
    _audit_active = enabled
    try:
        yield
    finally:
        _audit_active = previous


def _slug(label: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", label).strip("-")
    return slug or "run"


def finish_trace(spec: TraceSpec, kernel: Kernel, label: str, *,
                 thread_time_us: float = 0.0) -> dict:
    """Export one traced run: Chrome JSON + lock-contention profile.

    Returns (and appends to ``spec.results``) a summary comparing the
    span-derived lock-wait total against the registry's — the two are
    charged at the same grant instants, so they must agree (the Table-1
    parity check).
    """
    os.makedirs(spec.out_dir, exist_ok=True)
    base = os.path.join(spec.out_dir, _slug(label))
    tracer = kernel.tracer
    observer = kernel.observer
    export = export_chrome_trace(tracer, base + ".trace.json",
                                 pretty=spec.pretty)
    span_wait = observer.profile.total_wait if observer is not None else 0.0
    registry_wait = kernel.registry.total_lock_wait
    busy = thread_time_us
    profile_doc = {
        "label": label,
        "busy_time_us": busy,
        "span_lock_wait_us": span_wait,
        "registry_lock_wait_us": registry_wait,
        "span_lock_wait_fraction":
            observer.profile.lock_wait_fraction(busy)
            if observer is not None else 0.0,
        "registry_lock_wait_fraction":
            kernel.registry.lock_wait_fraction(busy),
        "events": {
            "recorded": tracer.recorded,
            "dropped": tracer.dropped,
            "spans": export["spans"],
            "instants": export["instants"],
        },
        "categories": observer.profile.to_dict()
        if observer is not None else {},
    }
    with open(base + ".lockprof.json", "w") as fh:
        json.dump(profile_doc, fh, indent=2)
    summary = {
        "label": label,
        "trace": export["path"],
        "lockprof": base + ".lockprof.json",
        "spans": export["spans"],
        "instants": export["instants"],
        "dropped": export["dropped"],
        "span_lock_wait_us": span_wait,
        "registry_lock_wait_us": registry_wait,
        "busy_time_us": busy,
    }
    spec.results.append(summary)
    return summary


def make_kernel(machine: MachineConfig, approach: str,
                memory_bytes: Optional[int] = None, *,
                tracer: Optional[Tracer] = None,
                emit_lock_holds: bool = False) -> Kernel:
    """A cold kernel configured for ``machine`` and ``approach``."""
    return build_host_kernel(
        machine, approach, memory_bytes,
        tracer=tracer,
        emit_lock_holds=emit_lock_holds,
        audit=_audit_active,
        faults=_active_faults,
        qos=_active_qos,
        adaptive=_active_adaptive,
    )


def run_one(machine: MachineConfig, approach: str,
            workload: WorkloadFn, *,
            memory_bytes: Optional[int] = None,
            crosslib_config: Optional[CrossLibConfig] = None
            ) -> ApproachMetrics:
    spec = _active_spec
    tracer = Tracer(capacity=spec.capacity) if spec is not None else None
    host = Host.single(machine, approach, memory_bytes, tracer=tracer,
                       emit_lock_holds=spec.emit_holds
                       if spec is not None else False,
                       audit=_audit_active,
                       faults=_active_faults,
                       qos=_active_qos,
                       adaptive=_active_adaptive,
                       crosslib_config=crosslib_config)
    kernel, runtime = host.kernel, host.runtime
    try:
        metrics = workload(kernel, runtime)
    finally:
        host.teardown()
    metrics.approach = approach
    # Engine throughput telemetry for the perf suite (repro bench).
    metrics.extra["sim_events"] = kernel.sim.events_processed
    metrics.extra["sim_time_us"] = kernel.sim.now
    if spec is not None:
        label = getattr(workload, "__name__", "workload")
        summary = finish_trace(spec, kernel, f"{label}-{approach}",
                               thread_time_us=metrics.thread_time_us)
        metrics.extra["trace"] = summary
    return metrics


def run_approaches(machine: MachineConfig, approaches: Iterable[str],
                   workload: WorkloadFn, *,
                   memory_bytes: Optional[int] = None,
                   crosslib_config: Optional[CrossLibConfig] = None
                   ) -> dict[str, ApproachMetrics]:
    """Run ``workload`` once per approach on fresh kernels."""
    results: dict[str, ApproachMetrics] = {}
    for approach in approaches:
        results[approach] = run_one(
            machine, approach, workload,
            memory_bytes=memory_bytes, crosslib_config=crosslib_config)
    return results
