"""Run a workload under each comparison approach.

A *workload function* has the signature::

    def workload(kernel, runtime) -> ApproachMetrics

It creates files, spawns simulated threads, runs the kernel, and returns
metrics.  :func:`run_approaches` builds a fresh kernel (cold cache, like
the paper's drop_caches) and a fresh runtime per approach, so approaches
never share state.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.crosslib.config import CrossLibConfig
from repro.harness.configs import MachineConfig
from repro.harness.metrics import ApproachMetrics
from repro.os.kernel import Kernel
from repro.runtimes.base import IORuntime
from repro.runtimes.factory import build_runtime, needs_cross

__all__ = ["make_kernel", "run_approaches", "run_one"]

WorkloadFn = Callable[[Kernel, IORuntime], ApproachMetrics]


def make_kernel(machine: MachineConfig, approach: str,
                memory_bytes: Optional[int] = None) -> Kernel:
    """A cold kernel configured for ``machine`` and ``approach``."""
    return Kernel(
        memory_bytes=memory_bytes or machine.scaled_memory_bytes,
        config=machine.kernel_config,
        device_factory=machine.device_factory(),
        cross_enabled=needs_cross(approach),
    )


def run_one(machine: MachineConfig, approach: str,
            workload: WorkloadFn, *,
            memory_bytes: Optional[int] = None,
            crosslib_config: Optional[CrossLibConfig] = None
            ) -> ApproachMetrics:
    kernel = make_kernel(machine, approach, memory_bytes)
    runtime = build_runtime(approach, kernel, crosslib_config)
    try:
        metrics = workload(kernel, runtime)
    finally:
        runtime.teardown()
        kernel.shutdown()
    metrics.approach = approach
    return metrics


def run_approaches(machine: MachineConfig, approaches: Iterable[str],
                   workload: WorkloadFn, *,
                   memory_bytes: Optional[int] = None,
                   crosslib_config: Optional[CrossLibConfig] = None
                   ) -> dict[str, ApproachMetrics]:
    """Run ``workload`` once per approach on fresh kernels."""
    results: dict[str, ApproachMetrics] = {}
    for approach in approaches:
        results[approach] = run_one(
            machine, approach, workload,
            memory_bytes=memory_bytes, crosslib_config=crosslib_config)
    return results
