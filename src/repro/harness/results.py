"""Persist and compare experiment results.

``save_results`` writes one experiment's metrics to JSON;
``load_results`` reads them back; ``compare_results`` renders a
side-by-side delta table between two runs — the tool you want when
checking whether a change to the simulator moved any experiment's shape.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Mapping, Union

from repro.harness.metrics import ApproachMetrics

__all__ = ["compare_results", "load_results", "save_results"]

# Results may be flat {approach: metrics} or nested
# {sweep_point: {approach: metrics}}.
ResultsLike = Mapping[str, Union[ApproachMetrics, Mapping[str,
                                                          ApproachMetrics]]]


def _metrics_to_dict(metrics: ApproachMetrics) -> dict:
    return {
        "approach": metrics.approach,
        "duration_us": metrics.duration_us,
        "bytes_read": metrics.bytes_read,
        "bytes_written": metrics.bytes_written,
        "ops": metrics.ops,
        "hit_pages": metrics.hit_pages,
        "miss_pages": metrics.miss_pages,
        "lock_wait_us": metrics.lock_wait_us,
        "thread_time_us": metrics.thread_time_us,
        "throughput_mbps": metrics.throughput_mbps,
        "kops": metrics.kops,
        "miss_pct": metrics.miss_pct,
        "lock_pct": metrics.lock_pct,
        "syscalls": metrics.syscalls,
        "extra": {k: v for k, v in metrics.extra.items()
                  if isinstance(v, (int, float, str, bool))},
    }


def _flatten(results: ResultsLike) -> dict[str, ApproachMetrics]:
    flat: dict[str, ApproachMetrics] = {}
    for key, value in results.items():
        if isinstance(value, ApproachMetrics):
            flat[key] = value
        else:
            for approach, metrics in value.items():
                flat[f"{key}/{approach}"] = metrics
    return flat


def save_results(results: ResultsLike, path: Union[str, Path],
                 experiment: str = "") -> Path:
    """Write results as JSON; returns the path written.

    The write is atomic (temp file in the target directory, then
    ``os.replace``), so concurrent writers from the ``run_parallel``
    fork pool can all save to the same path and a reader never sees a
    torn or interleaved document — last completed writer wins.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": experiment,
        "cells": {key: _metrics_to_dict(metrics)
                  for key, metrics in _flatten(results).items()},
    }
    fd, tmp = tempfile.mkstemp(dir=path.parent,
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_results(path: Union[str, Path]) -> dict:
    """Read a results JSON back (as plain dicts)."""
    return json.loads(Path(path).read_text())


def compare_results(old: dict, new: dict,
                    metric: str = "throughput_mbps",
                    threshold_pct: float = 5.0) -> str:
    """Tabulate per-cell deltas of ``metric`` between two result files.

    Cells whose relative change exceeds ``threshold_pct`` are flagged.
    """
    old_cells = old.get("cells", {})
    new_cells = new.get("cells", {})
    keys = sorted(set(old_cells) | set(new_cells))
    width = max([12] + [len(k) for k in keys])
    lines = [
        f"comparison on {metric} (flag at ±{threshold_pct:.0f}%)",
        f"{'cell':<{width}}  {'old':>12}  {'new':>12}  {'delta%':>8}",
        "-" * (width + 40),
    ]
    flagged = 0
    for key in keys:
        old_val = old_cells.get(key, {}).get(metric)
        new_val = new_cells.get(key, {}).get(metric)
        if old_val is None or new_val is None:
            lines.append(f"{key:<{width}}  {'-':>12}  {'-':>12}  "
                         f"{'missing':>8}")
            continue
        if old_val:
            delta = 100.0 * (new_val - old_val) / old_val
        else:
            delta = 0.0 if not new_val else float("inf")
        flag = "  <<" if abs(delta) > threshold_pct else ""
        if flag:
            flagged += 1
        lines.append(f"{key:<{width}}  {old_val:>12.2f}  "
                     f"{new_val:>12.2f}  {delta:>7.1f}%{flag}")
    lines.append(f"{flagged} cell(s) changed beyond the threshold")
    return "\n".join(lines)
