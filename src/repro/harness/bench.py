"""Performance benchmark suite for the simulation core (``repro bench``).

The repo's value is running all 14 paper experiments at full scale, so
the simulator itself is a measured hot path.  This module defines a
small, stable set of benchmarks that report **wall-clock seconds** and
**simulated events per second** (heap pops per second of real time,
from :attr:`Simulator.events_processed`):

* ``engine_timeout`` — raw engine throughput: processes yielding pooled
  timeouts, nothing else.  Isolates layer-1 (engine) optimizations.
* ``engine_locks`` — engine + sync primitives: contended Lock/RwLock
  round-trips.  Isolates the fast/slow lock dispatch.
* ``fig5_quick`` — the Fig. 5 microbenchmark at the ``repro check``
  quick preset.  The representative end-to-end number; the regression
  gate in CI tracks this one hardest.
* ``fig2_quick`` — the Fig. 2 db_bench motivation preset: LSM reads,
  a different mix of cache hits and prefetch traffic.
* ``chaos_quick`` — the resilience sweep at a small preset: the same
  microbenchmark mix with the ``storm`` fault engine attached, so the
  fault-injection hooks and retry paths stay on the perf radar.
* ``qos_quick`` — the multi-tenant fairness experiment at a small
  preset: QoS accounting, token buckets, and the degrade clamp.
* ``cluster_quick`` — the fleet path at a small preset (2 hosts × 2
  tenants, one shared backend, open-loop arrivals): many kernels
  interleaving on one shared engine, so the ``repro scale`` sweep
  stays under the regression gate too.
* ``adaptive_quick`` — the learned-policy path at the ``repro check``
  quick preset: classifier + perceptron work on every ``pread``,
  adaptive caps in the readahead/Cross-OS paths, bulk gating and
  eviction bias (``docs/prefetching.md``), healthy and under storm.

Every bench reports ``sim_time_us`` (total simulated microseconds
across the kernels it ran) alongside ``events``, so events/µs-of-sim
drift is visible independently of wall clock; the document schema is
``bench_sim_core/v2`` (v1 lacked ``sim_time_us`` on the experiment
benches and is still accepted by the baseline reader).

Results are written as ``BENCH_sim_core.json``; the committed copy at
the repo root holds the **baseline** (captured before the PR-3 fast
path landed) and the **current** numbers, so every future PR can check
itself against the trajectory with::

    PYTHONPATH=src python -m repro bench \
        --baseline BENCH_sim_core.json --max-regression 0.3

Wall-clock numbers are machine-dependent; the regression gate compares
events/sec ratios, which moves the noise from absolute hardware speed
to scheduler jitter.  Use ``--repeat`` to take the best of N runs.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.sync import Lock, RwLock

__all__ = [
    "BENCHES",
    "compare_to_baseline",
    "run_bench",
    "run_suite",
]

MB = 1 << 20


# -- layer-1 microbenchmarks ---------------------------------------------------


def _bench_engine_timeout(scale: int = 1) -> dict:
    """Raw event-loop throughput: N processes × M pooled timeouts."""
    sim = Simulator()
    nprocs = 50
    nyields = 2_000 * scale

    def worker(tid: int):
        for _ in range(nyields):
            yield sim.timeout(1.0 + tid * 0.01)

    for tid in range(nprocs):
        sim.process(worker(tid), name=f"w{tid}")
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "events": sim.events_processed,
            "sim_time_us": sim.now}


def _bench_engine_locks(scale: int = 1) -> dict:
    """Sync-primitive round-trips: contended Lock + RwLock traffic."""
    sim = Simulator()
    lock = Lock(sim, "bench_lock")
    rw = RwLock(sim, "bench_rw")
    nprocs = 16
    rounds = 1_500 * scale

    def worker(tid: int):
        for i in range(rounds):
            yield lock.acquire()
            yield sim.timeout(0.1)
            lock.release()
            if (i + tid) % 4 == 0:
                yield rw.acquire_write()
                yield sim.timeout(0.1)
                rw.release_write()
            else:
                yield rw.acquire_read()
                yield sim.timeout(0.1)
                rw.release_read()

    for tid in range(nprocs):
        sim.process(worker(tid), name=f"w{tid}")
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "events": sim.events_processed,
            "sim_time_us": sim.now}


# -- experiment-preset benchmarks ----------------------------------------------


def _sum_extra(results, key: str) -> float:
    """Total a per-kernel ``metrics.extra`` telemetry value across an
    experiment's result tree (handles flat {approach: metrics}, nested
    {cell: {approach: metrics}}, and mixed shapes like the fairness
    result document)."""
    total = 0.0
    if hasattr(results, "extra"):
        return float(results.extra.get(key, 0))
    if isinstance(results, dict):
        for value in results.values():
            total += _sum_extra(value, key)
    return total


def _sum_events(results) -> int:
    """Total engine events across every kernel in a result tree."""
    return int(_sum_extra(results, "sim_events"))


def _experiment_result(t0: float, results) -> dict:
    return {"wall_s": time.perf_counter() - t0,
            "events": _sum_events(results),
            "sim_time_us": _sum_extra(results, "sim_time_us")}


def _bench_fig5_quick(scale: int = 1) -> dict:
    from repro.harness.experiments.micro import run_fig5_microbench
    t0 = time.perf_counter()
    results, _report = run_fig5_microbench(
        nthreads=4, memory_bytes=48 * MB,
        cells=("shared-seq", "shared-rand"))
    return _experiment_result(t0, results)


def _bench_fig2_quick(scale: int = 1) -> dict:
    from repro.harness.experiments.motivation import run_fig2_motivation
    t0 = time.perf_counter()
    results, _report = run_fig2_motivation(
        nthreads=4, ops_per_thread=50, num_keys=20_000)
    return _experiment_result(t0, results)


def _bench_chaos_quick(scale: int = 1) -> dict:
    from repro.harness.experiments.resilience import run_resilience
    t0 = time.perf_counter()
    results, _report = run_resilience(
        intensities=(0.0, 1.0), preset="storm", nthreads=4,
        memory_bytes=24 * MB)
    return _experiment_result(t0, results)


def _bench_qos_quick(scale: int = 1) -> dict:
    from repro.harness.experiments.fairness import run_fairness
    t0 = time.perf_counter()
    results, _report = run_fairness(memory_bytes=24 * MB)
    return _experiment_result(t0, results)


def _bench_cluster_quick(scale: int = 1) -> dict:
    """The fleet path: shared-engine multi-host run with open-loop
    traffic — many kernels interleaving on one heap, shared-backend
    contention, per-host registries (the ``repro scale`` hot path)."""
    from repro.harness.experiments.scale import run_scale
    t0 = time.perf_counter()
    results, _report = run_scale(
        hosts=(2,), tenant_counts=(2,), seed=0, rate_per_s=1500.0,
        horizon_us=120_000.0, file_mb=4)
    return _experiment_result(t0, results)


def _bench_adaptive_quick(scale: int = 1) -> dict:
    """The learned-policy path: classifier + perceptron on every
    ``pread``, adaptive caps in readahead/Cross-OS, bulk gating and
    victim bias, across the static-vs-adaptive sweep (the
    ``repro experiment adaptive`` hot path)."""
    from repro.harness.experiments.adaptive import run_adaptive
    t0 = time.perf_counter()
    results, _report = run_adaptive(
        memory_bytes=32 * MB, oversubscription=2.0, hot_ops=240)
    return _experiment_result(t0, results["rows"])


BENCHES: dict[str, Callable[[int], dict]] = {
    "engine_timeout": _bench_engine_timeout,
    "engine_locks": _bench_engine_locks,
    "fig5_quick": _bench_fig5_quick,
    "fig2_quick": _bench_fig2_quick,
    "chaos_quick": _bench_chaos_quick,
    "qos_quick": _bench_qos_quick,
    "cluster_quick": _bench_cluster_quick,
    "adaptive_quick": _bench_adaptive_quick,
}


# -- driver --------------------------------------------------------------------


def run_bench(name: str, *, scale: int = 1, repeat: int = 1) -> dict:
    """Run one benchmark; keeps the best (fastest) of ``repeat`` runs."""
    fn = BENCHES[name]
    best: Optional[dict] = None
    for _ in range(max(1, repeat)):
        result = fn(scale)
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    assert best is not None
    events = best.get("events", 0)
    best["events_per_sec"] = (events / best["wall_s"]
                              if best["wall_s"] > 0 else 0.0)
    best["name"] = name
    return best


def run_suite(names: Optional[list[str]] = None, *, scale: int = 1,
              repeat: int = 1, jobs: int = 1) -> dict:
    """Run the suite; returns ``{bench_name: result}`` plus totals.

    With ``jobs > 1`` the benchmarks fan out across worker processes
    (each bench still runs alone inside its process, so its own timing
    is undisturbed apart from CPU sharing); results merge in suite
    order, identical to serial.
    """
    chosen = names or list(BENCHES)
    unknown = [n for n in chosen if n not in BENCHES]
    if unknown:
        raise KeyError(f"unknown bench(es): {', '.join(unknown)}")
    if jobs > 1 and len(chosen) > 1:
        from repro.harness.parallel import run_parallel
        results = run_parallel(
            _bench_task, [(name, scale, repeat) for name in chosen],
            jobs=jobs)
        benches = {name: result for name, result in zip(chosen, results)}
    else:
        benches = {name: run_bench(name, scale=scale, repeat=repeat)
                   for name in chosen}
    return {
        "schema": "bench_sim_core/v2",
        "scale": scale,
        "repeat": repeat,
        "benches": benches,
    }


def _bench_task(args: tuple) -> dict:
    name, scale, repeat = args
    return run_bench(name, scale=scale, repeat=repeat)


_KNOWN_SCHEMAS = ("bench_sim_core/v1", "bench_sim_core/v2")


def _baseline_benches(baseline: dict) -> dict:
    """Extract ``{name: result}`` from a baseline document.

    Accepts both schema v1 (no ``sim_time_us`` on the experiment
    benches) and v2, and both document shapes (a bare suite or a
    committed BENCH_sim_core.json with ``baseline``/``current``
    sections — the ``current`` section is the comparison target).
    """
    doc = baseline.get("current") or baseline
    schema = doc.get("schema")
    if schema is not None and schema not in _KNOWN_SCHEMAS:
        raise ValueError(f"unknown bench schema: {schema}")
    return doc.get("benches", {})


def compare_to_baseline(current: dict, baseline: dict, *,
                        max_regression: float = 0.3) -> list[str]:
    """Regression check: events/sec must not drop more than the budget.

    ``baseline`` is a committed BENCH_sim_core.json document; the
    comparison runs against its ``current`` section (the numbers the
    last optimization PR achieved), falling back to top-level benches.
    Both v1 and v2 baselines are accepted.  Returns a list of
    human-readable failures (empty = pass).
    """
    base_benches = _baseline_benches(baseline)
    failures: list[str] = []
    for name, result in current.get("benches", {}).items():
        base = base_benches.get(name)
        if base is None:
            continue
        base_eps = base.get("events_per_sec", 0.0)
        cur_eps = result.get("events_per_sec", 0.0)
        if base_eps <= 0:
            continue
        ratio = cur_eps / base_eps
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{name}: {cur_eps:,.0f} events/s is "
                f"{100 * (1 - ratio):.1f}% below baseline "
                f"{base_eps:,.0f} (budget {100 * max_regression:.0f}%)")
    return failures


def format_suite(doc: dict) -> str:
    lines = [f"{'bench':<16} {'wall s':>9} {'events':>12} "
             f"{'events/s':>12} {'sim s':>9}"]
    for name, result in doc.get("benches", {}).items():
        lines.append(
            f"{name:<16} {result['wall_s']:>9.3f} "
            f"{result.get('events', 0):>12,} "
            f"{result.get('events_per_sec', 0.0):>12,.0f} "
            f"{result.get('sim_time_us', 0.0) / 1e6:>9.3f}")
    return "\n".join(lines)
