"""Parallel experiment fan-out (``--jobs N``).

Experiments are single-threaded, deterministic simulations, so a batch
of presets (``repro check``, ``repro bench``) parallelizes trivially:
one worker process per item, results merged back **in input order**.
Determinism is preserved because

* each item runs in its own forked process with its own simulator and
  its own fixed seeds — nothing is shared, and wall-clock never feeds
  back into simulated results;
* the merge is positional, so the combined output is byte-identical to
  a serial run regardless of which worker finished first.

Workers are forked (POSIX) when available so imported modules are not
re-imported per item; the stdlib falls back to spawn elsewhere.  The
callable and items must be module-level picklables either way.

Failures are captured per item (with the child's traceback text) and
re-raised in the parent as one :class:`ParallelTaskError` after every
item has finished — a crash in one preset does not hide the results of
the others.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Callable, Iterable, Optional, Sequence, TypeVar

__all__ = ["ParallelTaskError", "run_parallel"]

T = TypeVar("T")
R = TypeVar("R")


class ParallelTaskError(RuntimeError):
    """One or more parallel items raised; carries every failure."""

    def __init__(self, failures: Sequence[tuple[int, str]]):
        self.failures = list(failures)
        lines = [f"{len(self.failures)} parallel task(s) failed:"]
        for index, tb_text in self.failures:
            lines.append(f"--- item {index} ---\n{tb_text.rstrip()}")
        super().__init__("\n".join(lines))


def _invoke(payload: tuple) -> tuple:
    """Module-level worker shim: run one item, never raise."""
    fn, index, item = payload
    try:
        return (index, True, fn(item))
    except BaseException:  # noqa: BLE001 - reported in the parent
        return (index, False, traceback.format_exc())


def run_parallel(fn: Callable[[T], R], items: Iterable[T], *,
                 jobs: Optional[int] = None) -> list[R]:
    """Map ``fn`` over ``items`` across worker processes.

    Returns results in input order.  ``jobs <= 1`` (or a single item)
    degrades to a plain in-process loop, so callers can always route
    through this function and let the flag decide.
    """
    work = list(items)
    if jobs is None:
        jobs = multiprocessing.cpu_count()
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])
    payloads = [(fn, index, item) for index, item in enumerate(work)]
    with ctx.Pool(processes=min(jobs, len(work))) as pool:
        raw = pool.map(_invoke, payloads)
    raw.sort(key=lambda entry: entry[0])
    failures = [(index, result) for index, ok, result in raw if not ok]
    if failures:
        raise ParallelTaskError(failures)
    return [result for _index, _ok, result in raw]
