"""Experiment harness: machine presets, runners, and paper-style reports.

Each experiment module under :mod:`repro.harness.experiments` regenerates
one table or figure of the paper; :mod:`repro.harness.report` renders the
same rows/series the paper prints.  The benchmarks under ``benchmarks/``
are thin pytest wrappers over these experiment functions.
"""

from repro.harness.configs import MachineConfig, Scale
from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.harness.report import format_table
from repro.harness.runner import make_kernel, run_approaches

__all__ = [
    "ApproachMetrics",
    "MachineConfig",
    "Scale",
    "collect_metrics",
    "format_table",
    "make_kernel",
    "run_approaches",
]
