"""Per-run metrics in the same units the paper reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.os.kernel import Kernel

__all__ = ["ApproachMetrics", "collect_metrics"]

MB = 1 << 20


@dataclass
class ApproachMetrics:
    """One (approach, workload) cell of a paper table/figure."""

    approach: str
    duration_us: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    ops: int = 0
    hit_pages: int = 0
    miss_pages: int = 0
    lock_wait_us: float = 0.0
    thread_time_us: float = 0.0
    syscalls: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    # Optional per-operation latency samples (simulated µs).
    latencies_us: list = field(default_factory=list)

    # -- derived, matching the paper's axes --------------------------------------

    @property
    def duration_s(self) -> float:
        return self.duration_us / 1e6

    @property
    def throughput_mbps(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return (self.bytes_read + self.bytes_written) / MB / self.duration_s

    @property
    def kops(self) -> float:
        """Throughput in thousands of operations per second."""
        if self.duration_us <= 0:
            return 0.0
        return self.ops / 1e3 / self.duration_s

    @property
    def miss_pct(self) -> float:
        total = self.hit_pages + self.miss_pages
        if total == 0:
            return 0.0
        return 100.0 * self.miss_pages / total

    @property
    def lock_pct(self) -> float:
        if self.thread_time_us <= 0:
            return 0.0
        return min(100.0, 100.0 * self.lock_wait_us / self.thread_time_us)

    def speedup_over(self, other: "ApproachMetrics") -> float:
        if other.throughput_mbps <= 0:
            return float("inf")
        return self.throughput_mbps / other.throughput_mbps

    # -- latency percentiles (when the workload sampled latencies) -----------

    def latency_percentile(self, pct: float) -> float:
        """Interpolated percentile of per-op latency in µs (0 if none)."""
        samples = self.latencies_us
        if not samples:
            return 0.0
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile out of range: {pct}")
        ordered = sorted(samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = pct / 100 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    @property
    def p50_us(self) -> float:
        return self.latency_percentile(50)

    @property
    def p99_us(self) -> float:
        return self.latency_percentile(99)

    @property
    def mean_latency_us(self) -> float:
        if not self.latencies_us:
            return 0.0
        return sum(self.latencies_us) / len(self.latencies_us)


def collect_metrics(approach: str, kernel: Kernel, *,
                    duration_us: float,
                    bytes_read: int = 0,
                    bytes_written: int = 0,
                    ops: int = 0,
                    hit_pages: int = 0,
                    miss_pages: int = 0,
                    nthreads: int = 1,
                    extra: Optional[dict] = None,
                    latencies_us: Optional[list] = None
                    ) -> ApproachMetrics:
    """Bundle workload counters with kernel-side telemetry."""
    registry = kernel.registry
    syscalls = {
        name.split(".", 1)[1]: counter.value
        for name, counter in registry.counters.items()
        if name.startswith("syscalls.")
    }
    extra = dict(extra or {})
    if getattr(kernel, "fault_engine", None) is not None:
        faults = kernel.device.stats.fault_summary()
        faults["preset"] = kernel.fault_engine.spec.describe()
        degrade = kernel.device.degrade
        if degrade is not None:
            faults["degrade_transitions"] = degrade.transitions
        extra["faults"] = faults
    qos = getattr(kernel, "qos", None)
    if qos is not None:
        extra["qos"] = qos.snapshot()
        extra["qos"]["_spec"] = qos.spec.describe()
        extra["qos"]["_reroutes"] = kernel.device.stats.reroutes
    return ApproachMetrics(
        approach=approach,
        duration_us=duration_us,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        ops=ops,
        hit_pages=hit_pages,
        miss_pages=miss_pages,
        lock_wait_us=registry.total_lock_wait,
        thread_time_us=duration_us * max(1, nthreads),
        syscalls=syscalls,
        extra=extra,
        latencies_us=list(latencies_us or []),
    )
