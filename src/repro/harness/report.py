"""Paper-style text tables.

Every bench prints its results through :func:`format_table` so a run of
``pytest benchmarks/`` produces the same rows/series the paper's tables
and figures report.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from repro.harness.metrics import ApproachMetrics

__all__ = ["format_matrix", "format_table"]


def format_table(title: str,
                 results: Mapping[str, ApproachMetrics],
                 columns: Optional[Sequence[tuple[str, Callable]]] = None,
                 note: str = "") -> str:
    """One row per approach; default columns match the paper's axes."""
    if columns is None:
        columns = [
            ("MB/s", lambda m: f"{m.throughput_mbps:10.1f}"),
            ("kops/s", lambda m: f"{m.kops:10.2f}"),
            ("miss%", lambda m: f"{m.miss_pct:6.1f}"),
            ("lock%", lambda m: f"{m.lock_pct:6.1f}"),
        ]
    name_width = max(12, max((len(n) for n in results), default=12))
    header = f"{'approach':<{name_width}}" + "".join(
        f"  {name:>10}" for name, _fn in columns)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for approach, metrics in results.items():
        row = f"{approach:<{name_width}}" + "".join(
            f"  {fn(metrics):>10}" for _name, fn in columns)
        lines.append(row)
    lines.append("=" * len(header))
    if note:
        lines.append(note)
    return "\n".join(lines)


def format_matrix(title: str,
                  series: Mapping[str, Mapping[str, float]],
                  xlabel: str = "",
                  fmt: str = "{:>10.1f}") -> str:
    """Approaches as rows, sweep points as columns (figure-style data)."""
    xs: list[str] = []
    for row in series.values():
        for x in row:
            if x not in xs:
                xs.append(x)
    name_width = max(12, max((len(n) for n in series), default=12))
    header = f"{xlabel or 'approach':<{name_width}}" + "".join(
        f"  {x:>10}" for x in xs)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for name, row in series.items():
        cells = "".join(
            f"  {fmt.format(row[x]) if x in row else '-':>10}"
            for x in xs)
        lines.append(f"{name:<{name_width}}{cells}")
    lines.append("=" * len(header))
    return "\n".join(lines)
