"""Machine presets and scaling.

The paper's testbed (§5.1): 64-core AMD 7543, 80 GB RAM across two
sockets, 1.6 TB NVMe (1.4 GB/s read / 0.9 GB/s write), ext4 by default;
variants use F2FS and RDMA NVMe-oF remote storage.  The motivation
machine (Fig. 2) has 128 GB RAM.

Simulating paper-size datasets (100–200 GB) page-by-page in Python is
wasteful, so every experiment runs through a :class:`Scale` that divides
dataset *and* memory sizes by the same factor — preserving the
memory:data and prefetch-limit:file-size ratios that drive every result.
The default scale is 1/64; benches print the scale they ran at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.os.config import KernelConfig
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.storage.device import StorageDevice
from repro.storage.filesystem import EXT4, F2FS, FilesystemProfile
from repro.storage.nvme import NVMeDevice, NVMeParams
from repro.storage.remote import RemoteNVMeDevice, RemoteParams

__all__ = ["MachineConfig", "Scale"]

GB = 1 << 30


@dataclass(frozen=True)
class Scale:
    """Uniform divisor applied to dataset and memory sizes."""

    factor: int = 64

    def bytes(self, paper_bytes: int) -> int:
        return max(1 << 20, paper_bytes // self.factor)

    def count(self, paper_count: int) -> int:
        return max(1, paper_count // self.factor)

    def __str__(self) -> str:
        return f"1/{self.factor}"


@dataclass
class MachineConfig:
    """One evaluation machine."""

    name: str = "local-nvme-ext4"
    memory_bytes: int = 80 * GB          # paper testbed RAM
    fs: FilesystemProfile = EXT4
    remote: bool = False
    nvme: NVMeParams = field(default_factory=NVMeParams)
    remote_params: RemoteParams = field(default_factory=RemoteParams)
    kernel_config: KernelConfig = field(default_factory=KernelConfig)
    scale: Scale = field(default_factory=Scale)

    @property
    def scaled_memory_bytes(self) -> int:
        return self.scale.bytes(self.memory_bytes)

    def device_factory(self) -> Callable[[Simulator, StatsRegistry],
                                         StorageDevice]:
        if self.remote:
            return lambda sim, registry: RemoteNVMeDevice(
                sim, self.nvme, self.remote_params, fs=self.fs,
                stats_registry=registry)
        return lambda sim, registry: NVMeDevice(
            sim, self.nvme, fs=self.fs, stats_registry=registry)

    # -- presets matching §5.1 ------------------------------------------------

    @classmethod
    def local_ext4(cls, scale: Optional[Scale] = None,
                   memory_bytes: int = 80 * GB) -> "MachineConfig":
        return cls(name="local-nvme-ext4", memory_bytes=memory_bytes,
                   fs=EXT4, scale=scale or Scale())

    @classmethod
    def local_f2fs(cls, scale: Optional[Scale] = None,
                   memory_bytes: int = 80 * GB) -> "MachineConfig":
        return cls(name="local-nvme-f2fs", memory_bytes=memory_bytes,
                   fs=F2FS, scale=scale or Scale())

    @classmethod
    def remote_nvmeof(cls, scale: Optional[Scale] = None,
                      memory_bytes: int = 80 * GB) -> "MachineConfig":
        return cls(name="remote-nvmeof-ext4", memory_bytes=memory_bytes,
                   fs=EXT4, remote=True, scale=scale or Scale())

    @classmethod
    def motivation(cls, scale: Optional[Scale] = None) -> "MachineConfig":
        """The Fig. 2 machine: DB fits in its 128 GB of memory."""
        return cls(name="motivation-128g", memory_bytes=128 * GB,
                   scale=scale or Scale())
