"""Table 4: mmap sequential and random workloads."""

from __future__ import annotations

from typing import Sequence

from repro.harness.configs import MachineConfig, Scale
from repro.harness.report import format_matrix
from repro.harness.runner import run_approaches
from repro.workloads.mmapbench import MmapBenchConfig, run_mmapbench

__all__ = ["run_tab4_mmap"]

MB = 1 << 20

APPROACHES = ("APPonly", "OSonly", "CrossP[+predict+opt]")


def run_tab4_mmap(nthreads: int = 4,
                  bytes_per_thread: int = 48 * MB,
                  memory_bytes: int = 384 * MB,
                  approaches: Sequence[str] = APPROACHES
                  ) -> tuple[dict, str]:
    series: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results = {}
    for pattern in ("readseq", "readrandom"):
        machine = MachineConfig.local_ext4(Scale())

        def workload(kernel, runtime, pattern=pattern):
            cfg = MmapBenchConfig(pattern=pattern, nthreads=nthreads,
                                  bytes_per_thread=bytes_per_thread)
            return run_mmapbench(kernel, runtime, cfg)

        results = run_approaches(machine, approaches, workload,
                                 memory_bytes=memory_bytes)
        all_results[pattern] = results
        for approach, metrics in results.items():
            series[approach][pattern] = metrics.throughput_mbps
    report = format_matrix(
        "Table 4 — mmap throughput (MB/s)",
        series, xlabel="approach",
        fmt="{:>10.1f}")
    return all_results, report
